//! Quickstart: train a Joint-WB briefer on a small synthetic corpus and
//! brief a webpage, reproducing the paper's Fig. 1 scenario (a book
//! shopping page summarised as topic + key attributes).
//!
//! Run with: `cargo run --release --example quickstart`

use webpage_briefing::prelude::*;

fn main() {
    println!("Generating a small synthetic webpage corpus…");
    let dataset = Dataset::generate(&DatasetConfig::tiny());
    let (mean, std) = dataset.length_stats();
    println!(
        "  {} pages over {} topics, avg length {:.0} tokens (std {:.0})",
        dataset.examples.len(),
        dataset.taxonomy.len(),
        mean,
        std
    );

    println!("Training Joint-WB (takes a minute or two on one CPU)…");
    let mut cfg = TrainConfig::scaled(50);
    cfg.lr = 0.01;
    cfg.decay = 0.98;
    let briefer = Briefer::train(&dataset, cfg, 7);

    // Brief a held-out page from the corpus.
    let split = dataset.split(1);
    let ex = &dataset.examples[split.test[0]];
    let brief = briefer.brief_example(ex);
    println!("\n=== Webpage brief (held-out corpus page) ===");
    print!("{}", brief.render());
    println!("Ground truth topic: {}", dataset.taxonomy.topic(ex.topic).phrase_text());

    // Brief raw HTML straight from the wire.
    let html = r#"<html><head><title>shop</title></head><body>
        <nav><a>home</a> <a>cart</a></nav>
        <section><p>Discover the best velcro books and quality shipping today.</p>
        <p>featured item : brenlin maklin , bestseller.</p>
        <p>price : $ 40.13 .</p></section>
        <footer><p>copyright terms privacy.</p></footer>
        </body></html>"#;
    let brief = briefer.brief_html(html).expect("briefing should succeed");
    println!("\n=== Webpage brief (raw HTML) ===");
    print!("{}", brief.render());
}
