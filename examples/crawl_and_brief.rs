//! Crawl a synthetic website with the structure-driven crawler (the
//! dataset-construction pipeline of §IV-A1: skip index/media pages, keep
//! content-rich pages) and brief every collected page.
//!
//! Run with: `cargo run --release --example crawl_and_brief`

use rand::rngs::StdRng;
use rand::SeedableRng;
use webpage_briefing::corpus::{generate_page, PageConfig};
use webpage_briefing::html::{crawl, CrawlConfig, Node, Tag, Website};
use webpage_briefing::prelude::*;

fn index_page(links: usize) -> Node {
    let anchors: Vec<Node> =
        (0..links).map(|i| Node::elem(Tag::A, vec![Node::text(format!("page {i}"))])).collect();
    Node::elem(Tag::Body, vec![Node::elem(Tag::Ul, anchors)])
}

fn main() {
    let dataset = Dataset::generate(&DatasetConfig::tiny());

    // Assemble a website: an index root linking to content-rich pages from
    // one topic, plus a media page the crawler must skip.
    let topic = dataset.taxonomy.topics()[0].clone();
    let mut rng = StdRng::seed_from_u64(99);
    let mut site = Website::default();
    let root = site.add_page("/", index_page(30));
    let media = site.add_page(
        "/gallery",
        Node::elem(Tag::Body, (0..12).map(|_| Node::elem(Tag::Video, vec![])).collect()),
    );
    site.link(root, media).expect("link media page");
    let mut content_pages = Vec::new();
    for i in 0..5 {
        let page = generate_page(&topic, PageConfig::default(), &mut rng);
        let idx = site.add_page(&format!("/item/{i}"), page.dom.clone());
        site.link(root, idx).expect("link content page");
        content_pages.push(page);
    }

    let result = crawl(&site, CrawlConfig::default());
    println!(
        "Crawled {} pages: {} content-rich, {} index skipped, {} media skipped",
        result.visited,
        result.content_pages.len(),
        result.skipped_index,
        result.skipped_media
    );
    assert_eq!(result.content_pages.len(), 5);

    println!("Training a briefer…");
    let mut cfg = TrainConfig::scaled(40);
    cfg.lr = 0.01;
    cfg.decay = 0.98;
    let briefer = Briefer::train(&dataset, cfg, 7);

    for &page_idx in result.content_pages.iter().take(2) {
        let html = site.pages[page_idx].dom.to_html();
        match briefer.brief_html(&html) {
            Ok(brief) => {
                println!("\n--- {} ---", site.pages[page_idx].url);
                print!("{}", brief.render());
            }
            Err(e) => println!("could not brief {}: {e}", site.pages[page_idx].url),
        }
    }
    println!("\nGround truth topic for this site: {}", topic.phrase_text());
}
