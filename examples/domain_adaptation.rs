//! Domain adaptation with Dual-Distill (§III-A): a teacher pre-trained on
//! seen topics fails on webpages from unseen topics; a student distilled
//! with identification + understanding distillation adapts while keeping
//! the seen-domain knowledge — the core result of Table IV.
//!
//! Run with: `cargo run --release --example domain_adaptation`

use webpage_briefing::prelude::*;

fn phrase_ids(d: &Dataset, t: TopicId) -> Vec<u32> {
    d.taxonomy.topic(t).phrase.iter().flat_map(|w| d.tokenizer.encode(w)).collect()
}

fn eval_gen(
    gen: &dyn Fn(&Example) -> Vec<u32>,
    d: &Dataset,
    indices: &[usize],
) -> GenerationScores {
    let mut s = GenerationScores::default();
    for &i in indices {
        let ex = &d.examples[i];
        let out = gen(ex);
        s.update(&out, &ex.topic_target[..ex.topic_target.len() - 1]);
    }
    s
}

fn main() {
    let dataset = Dataset::generate(&DatasetConfig::tiny());
    let split = dataset.split(5);
    let (seen, unseen) = dataset.topic_partition(4, 11);
    println!("{} seen topics, {} unseen topics", seen.len(), unseen.len());

    let mc = ModelConfig::scaled(dataset.tokenizer.vocab().len());
    let mut tc = TrainConfig::scaled(30);
    tc.lr = 0.08;
    tc.decay = 0.97;

    // 1. Teacher: trained on seen-topic pages only.
    println!("Training the teacher on seen topics…");
    let seen_train = dataset.restrict(&split.train, &seen);
    let mut teacher = Generator::new(EmbedderKind::Static, false, mc, 1);
    webpage_briefing::core::train(&mut teacher, &dataset.examples, &seen_train, tc);

    // 2. Student: distilled on all topics with Dual-Distill.
    println!("Distilling the student with Dual-Distill…");
    let cache = TeacherCache::build(&teacher, &dataset.examples, &split.train, 2.0);
    let phrases: Vec<Vec<u32>> = seen.iter().map(|&t| phrase_ids(&dataset, t)).collect();
    let bank = PhraseBank::build(&teacher, &phrases);
    let student = Generator::new(EmbedderKind::Static, false, mc, 9);
    let mut dd = DualDistill::new(
        student,
        cache,
        bank,
        DistillConfig::default(),
        DistillParts::dual(),
        3,
    );
    let mut dtc = tc;
    dtc.epochs = 25;
    webpage_briefing::core::train(&mut dd, &dataset.examples, &split.train, dtc);
    let student = dd.into_student();

    // 3. Compare on unseen- and seen-topic test pages.
    let unseen_test = dataset.restrict(&split.test, &unseen);
    let seen_test = dataset.restrict(&split.test, &seen);
    let t_unseen = eval_gen(&|ex| teacher.generate(ex), &dataset, &unseen_test);
    let t_seen = eval_gen(&|ex| teacher.generate(ex), &dataset, &seen_test);
    let s_unseen = eval_gen(&|ex| student.generate(ex), &dataset, &unseen_test);
    let s_seen = eval_gen(&|ex| student.generate(ex), &dataset, &seen_test);

    let mut table = ResultTable::new(
        "Topic generation: No Distill vs Dual-Distill",
        &["Method", "Unseen EM", "Unseen RM", "Seen EM", "Seen RM"],
    );
    table.push_metrics(
        "No Distill (teacher)",
        &[Some(t_unseen.em()), Some(t_unseen.rm()), Some(t_seen.em()), Some(t_seen.rm())],
    );
    table.push_metrics(
        "Dual-Distill (student)",
        &[Some(s_unseen.em()), Some(s_unseen.rm()), Some(s_seen.em()), Some(s_seen.rm())],
    );
    println!("\n{}", table.render());
    println!(
        "Expected shape (paper Table IV): the student recovers unseen-domain EM \
         while staying close to the teacher on seen domains."
    );
}
