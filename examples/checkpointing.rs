//! Checkpointing: train a briefer once, save it to disk, restore it in a
//! fresh process-like context and verify identical behaviour — the workflow
//! a deployment (e.g. the browser-extension use case from the paper's
//! introduction) would use.
//!
//! Run with: `cargo run --release --example checkpointing`

use webpage_briefing::core::Checkpoint;
use webpage_briefing::prelude::*;

fn main() {
    let dataset = Dataset::generate(&DatasetConfig::tiny());
    println!("Training Joint-WB…");
    let mut cfg = TrainConfig::scaled(8);
    cfg.lr = 0.01;
    let briefer = Briefer::train(&dataset, cfg, 7);

    let path = std::env::temp_dir().join("webpage_briefing_demo.ckpt.json");
    briefer.checkpoint(&dataset.tokenizer).save(&path).expect("save checkpoint");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!("Saved checkpoint to {} ({:.1} KiB)", path.display(), bytes as f64 / 1024.0);

    let restored = Briefer::from_checkpoint(&Checkpoint::load(&path).expect("load checkpoint"))
        .expect("restore briefer");

    let split = dataset.split(1);
    let ex = &dataset.examples[split.test[0]];
    let before = briefer.brief_example(ex);
    let after = restored.brief_example(ex);
    assert_eq!(before, after, "restored model must behave identically");
    println!("\nRestored model reproduces the original brief exactly:");
    print!("{}", after.render());

    let _ = std::fs::remove_file(path);
}
