//! # webpage-briefing
//!
//! A Rust reproduction of **“Automatic Webpage Briefing”** (Dai, Zhang, Qi —
//! ICDE 2021): hierarchical webpage summaries combining a generated broad
//! topic with extracted key attributes, produced by the Joint-WB model and
//! adapted to unseen domains with Dual/Triple Distillation.
//!
//! ```no_run
//! use webpage_briefing::prelude::*;
//!
//! let dataset = Dataset::generate(&DatasetConfig::tiny());
//! let briefer = Briefer::train(&dataset, TrainConfig::scaled(10), 7);
//! let brief = briefer
//!     .brief_html("<html><body><section><p>Mystery novels, price : $ 12.99 .</p></section></body></html>")
//!     .unwrap();
//! println!("{}", brief.render());
//! ```
//!
//! The workspace crates are re-exported:
//!
//! * [`tensor`] — autograd engine, [`text`] — tokenizer/preprocessing,
//! * [`html`] — DOM/rendering/crawler, [`corpus`] — synthetic dataset,
//! * [`nn`] — neural layers, [`core`] — the paper's models,
//! * [`eval`] — metrics and statistical tests.

pub use wb_core as core;
pub use wb_corpus as corpus;
pub use wb_eval as eval;
pub use wb_html as html;
pub use wb_nn as nn;
pub use wb_tensor as tensor;
pub use wb_text as text;

/// One-stop imports for applications.
pub mod prelude {
    pub use wb_core::{
        Brief, BriefAttribute, Briefer, DistillConfig, DistillParts, DualDistill, Extractor,
        ExtractorPriors, Generator, JointModel, JointVariant, ModelConfig, PhraseBank,
        TeacherCache, TrainConfig, TriDistill,
    };
    pub use wb_corpus::{Dataset, DatasetConfig, Example, Taxonomy, TopicId};
    pub use wb_eval::{bio_to_spans, ExtractionScores, GenerationScores, ResultTable};
    pub use wb_html::{parse_document, visible_text};
    pub use wb_nn::EmbedderKind;
    pub use wb_text::{WordPiece, WordPieceConfig};
}
