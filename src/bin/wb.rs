//! `wb` — the Webpage Briefing command line.
//!
//! ```text
//! wb generate --out ./corpus --subjects 2 --pages 6     # export a corpus
//! wb train --out model.json --epochs 12                 # train a briefer
//! wb brief --model model.json page.html                 # brief webpages
//! wb stats                                              # corpus statistics
//! wb report metrics.json                                # render a snapshot
//! wb report --diff before.json after.json               # metric deltas
//! wb top 127.0.0.1:8080                                 # live server view
//! ```
//!
//! Argument parsing is hand-rolled (no external CLI crate): every
//! subcommand takes `--flag value` options plus positional file paths.
//! Unknown flags are rejected at parse time with a did-you-mean
//! suggestion, so a typo such as `--epoch 5` can never silently swallow
//! its value. All subcommands accept the observability globals
//! `--log-level LEVEL`, `--metrics-out FILE` and `--trace-out FILE`
//! (see docs/OBSERVABILITY.md).

use rand::rngs::StdRng;
use rand::SeedableRng;
use webpage_briefing::core::{
    crawl_brief, Briefer, Checkpoint, CheckpointPolicy, ModelConfig, PipelineConfig,
    PipelineError, TrainConfig, TrainState,
};
use webpage_briefing::corpus::{
    export_pages, export_site, generate_page, generate_site, Dataset, DatasetConfig,
    PageConfig, SiteScenario, SiteSpecConfig, Taxonomy,
};
use webpage_briefing::text::{coverage, FrequencyTable};

/// Every allocation in the binary flows through the counting wrapper so
/// span-level allocation attribution (`--alloc-track on`, the
/// `obs.alloc.*` columns in `wb report`) can see it. With tracking off —
/// the default — the wrapper adds one relaxed atomic load per allocation,
/// and under the `off` feature it forwards straight to the system
/// allocator.
#[global_allocator]
static ALLOC: wb_obs::alloc::Counting = wb_obs::alloc::Counting;

const USAGE: &str = "\
wb — Automatic Webpage Briefing (ICDE 2021): hierarchical webpage summaries

USAGE:
    wb generate [--out DIR] [--subjects N] [--pages N] [--seed N]
                [--site DIR [--scenario NAME] [--site-pages N]]
    wb train    [--out FILE] [--epochs N] [--subjects N] [--pages N] [--seed N]
                [--state FILE] [--checkpoint-every N] [--resume]
    wb brief    [--model FILE] [--json] FILES...
    wb crawl-brief --site DIR [--model FILE] [--out FILE]
                [--dead-letter FILE] [--journal FILE] [--snapshot FILE]
                [--snapshot-every N] [--queue N] [--batch N]
                [--max-pages N] [--max-visited N] [--error-budget PCT]
                [--resume]
    wb serve    [--model FILE] [--addr HOST:PORT] [--workers N]
                [--replicas N] [--queue-capacity N] [--cache-capacity N]
                [--max-body-bytes N] [--request-timeout-ms N]
                [--max-conns N] [--max-requests-per-conn N]
                [--idle-timeout-ms N] [--breaker-threshold N]
                [--breaker-window-ms N] [--breaker-cooldown-ms N]
                [--access-log-sample N] [--slow-request-ms N]
    wb loadgen  ADDR [--requests N] [--concurrency N] [--rate R]
                [--pages N] [--slo-ms N] [--close] [--compare]
                [--no-warmup] [--label NAME] [--out FILE]
                [--baseline FILE] [--tolerance PCT]
    wb top      ADDR [--interval-ms N] [--once]
    wb profile  ADDR [--seconds N] [--hz N] [--mode wall|cpu]
                [--format collapsed|svg] [--out FILE]
    wb flame    IN.collapsed [--out FILE] [--title NAME]
    wb stats    [--subjects N] [--pages N]
    wb report   FILE
    wb report   --diff BEFORE.json AFTER.json
    wb bench    [--quick] [--label NAME] [--out FILE]
                [--baseline FILE] [--tolerance PCT] [REPORT.json]

SUBCOMMANDS:
    generate    Generate a synthetic labelled corpus and export HTML + JSON.
                With --site DIR it instead exports a crawlable on-disk
                website for `wb crawl-brief`; --scenario picks the
                hostility mix (clean, malformed, boilerplate, near-dup,
                mixed) and --site-pages its size
    train       Train a Joint-WB briefer and save a checkpoint; with
                --state it checkpoints training itself, and --resume
                continues a killed run byte-identically (docs/ROBUSTNESS.md)
    brief       Brief one or more HTML files with a trained checkpoint
    crawl-brief Crawl an on-disk website and stream briefs to a JSONL
                file through a staged, bounded-queue pipeline: pages
                that fail to parse, chunk or brief are quarantined to a
                dead-letter file instead of killing the run; an
                append-only journal plus periodic snapshots make a
                killed run `--resume` to byte-identical output; and
                --error-budget PCT aborts cleanly when too many pages
                quarantine (docs/ROBUSTNESS.md)
    serve       Serve briefs over HTTP: POST /brief (HTML in, JSON out),
                GET /healthz, GET /metrics (JSON or ?format=prometheus),
                GET /varz (windowed live view), POST /shutdown for a
                graceful stop that flushes --metrics-out/--trace-out;
                SIGINT and SIGTERM drain the same way. Repeated model
                failures trip a circuit breaker into cache-only serving
                (--breaker-*). --access-log-sample N logs every Nth
                request as structured JSON; requests slower than
                --slow-request-ms always log their stage breakdown.
                Connections are served by a poll(2) event loop with
                HTTP/1.1 keep-alive and pipelining (--max-conns,
                --max-requests-per-conn, --idle-timeout-ms); briefing
                shards over --replicas lanes, each with its own cache,
                micro-batcher and breaker, consistent-hashed by page
    loadgen     Drive POST /brief load at a running server: closed loop
                (--concurrency connections back-to-back) or open loop
                (--rate req/s, latency from scheduled arrival), report
                throughput, p50/p90/p99 and --slo-ms attainment.
                --close disables keep-alive; --compare runs both modes
                and reports the keep-alive speedup. --out writes a
                wb-bench-v1 report (BENCH_serve.json) that
                --baseline/--tolerance diff like `wb bench`
    top         Poll a running server's /varz and render a live terminal
                dashboard: RPS, windowed percentiles, stage breakdown,
                queue depth, cache hit ratio and breaker state.
                --interval-ms sets the refresh (default 1000); --once
                prints a single frame and exits (scripts, CI smoke)
    profile     Capture a sampling profile from a running server's /pprof
                endpoint (wall-clock or on-CPU) and print or save it as
                collapsed stacks or a flamegraph SVG
    flame       Render a collapsed-stack file (from `wb profile` or
                /pprof?format=collapsed) into a standalone flamegraph SVG
    stats       Print statistics of a synthetic corpus
    report      Pretty-print a metrics snapshot written by --metrics-out;
                with --diff, print deltas and per-second rates between
                two snapshots of the same process
    bench       Run the perf-trajectory workloads, write BENCH_<label>.json
                and (with --baseline) fail on hard-metric regressions

Options take either `--flag value` or `--flag=value`.

GLOBAL OPTIONS (accepted by every subcommand):
    --log-level LEVEL    Stderr log verbosity: off, error, warn, info,
                         debug or trace; also takes a WB_LOG-style filter
                         spec such as `warn,wb_tensor=trace`
    --metrics-out FILE   Write a JSON metrics snapshot on exit
    --trace-out FILE     Record span/counter events and write a Chrome
                         trace (chrome://tracing, Perfetto) on exit
    --faults SPEC        Arm deterministic fault injection, e.g.
                         `train.step=panic@nth(6);core.checkpoint.write=
                         error@prob(0.2,42)`; also read from WB_FAULTS
                         (see docs/ROBUSTNESS.md)
    --alloc-track MODE   `on` attributes allocation bytes/counts to the
                         enclosing span (the obs.alloc.* columns in
                         `wb report`); default `off`
";

/// Observability options shared by every subcommand.
const GLOBAL_OPTS: &[&str] =
    &["log-level", "metrics-out", "trace-out", "faults", "alloc-track"];

/// Minimal `--flag value` / `--switch` / positional parser.
///
/// Flags are validated while parsing: an unrecognised `--name` is an
/// error immediately (with a near-miss suggestion when one of the known
/// flags is close), rather than being treated as an option that consumes
/// the next token. The observability globals in [`GLOBAL_OPTS`] are
/// accepted everywhere in addition to `option_names`.
#[derive(Debug)]
struct Args {
    options: Vec<(String, String)>,
    switches: Vec<String>,
    positional: Vec<String>,
}

impl Args {
    /// Splits raw arguments; `option_names` lists `--flag value` options
    /// and `switch_names` lists valueless flags.
    fn parse(
        raw: &[String],
        option_names: &[&str],
        switch_names: &[&str],
    ) -> Result<Args, String> {
        let mut args =
            Args { options: Vec::new(), switches: Vec::new(), positional: Vec::new() };
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(body) = a.strip_prefix("--") {
                // Both `--flag value` and `--flag=value` are accepted; the
                // flag name is validated either way.
                let (name, inline) = match body.split_once('=') {
                    Some((n, v)) => (n, Some(v)),
                    None => (body, None),
                };
                if switch_names.contains(&name) {
                    if inline.is_some() {
                        return Err(format!("switch --{name} takes no value"));
                    }
                    args.switches.push(name.to_string());
                } else if option_names.contains(&name) || GLOBAL_OPTS.contains(&name) {
                    let value = match inline {
                        Some(v) => v.to_string(),
                        None => raw
                            .get(i + 1)
                            .ok_or_else(|| format!("option --{name} expects a value"))?
                            .clone(),
                    };
                    args.options.push((name.to_string(), value));
                    if inline.is_none() {
                        i += 1;
                    }
                } else {
                    let known: Vec<&str> = option_names
                        .iter()
                        .chain(switch_names)
                        .chain(GLOBAL_OPTS)
                        .copied()
                        .collect();
                    let mut msg = format!("unknown option --{name}");
                    if let Some(best) = nearest_flag(name, &known) {
                        msg.push_str(&format!(" (did you mean --{best}?)"));
                    }
                    return Err(msg);
                }
            } else {
                args.positional.push(a.clone());
            }
            i += 1;
        }
        Ok(args)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.options.iter().rev().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    fn get_str(&self, name: &str, default: &str) -> String {
        self.get(name).unwrap_or(default).to_string()
    }

    fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| format!("option --{name} has invalid value `{v}`"))
            }
        }
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

/// The known flag closest to `typo`, if any is close enough to suggest.
///
/// "Close enough" is an edit distance of at most 2, or at most a third
/// of the typo's length for long names — tight enough that suggestions
/// stay plausible (`--epoch` → `--epochs`) without matching noise.
fn nearest_flag<'a>(typo: &str, known: &[&'a str]) -> Option<&'a str> {
    known
        .iter()
        .map(|k| (edit_distance(typo, k), *k))
        .min()
        .filter(|&(d, _)| d <= 2.max(typo.len() / 3))
        .map(|(_, k)| k)
}

/// Levenshtein edit distance over bytes (flag names are ASCII).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Exit-time observability outputs requested by the global flags.
struct Globals {
    metrics_out: Option<String>,
    trace_out: Option<String>,
}

/// Applies `--log-level`, arms trace collection when `--trace-out` was
/// given, and returns the output paths to flush on exit.
fn apply_globals(args: &Args) -> Result<Globals, String> {
    if let Some(spec) = args.get("log-level") {
        if let Some(level) = wb_obs::log::Level::parse(spec) {
            wb_obs::log::set_level(level);
        } else if spec.contains('=') || spec.contains(',') {
            wb_obs::log::set_filter(spec);
        } else {
            return Err(format!(
                "option --log-level has invalid value `{spec}` \
                 (expected off, error, warn, info, debug or trace)"
            ));
        }
    }
    if let Some(spec) = args.get("faults") {
        wb_chaos::arm_str(spec).map_err(|e| format!("option --faults: {e}"))?;
    } else {
        wb_chaos::arm_from_env().map_err(|e| format!("WB_FAULTS: {e}"))?;
    }
    match args.get("alloc-track") {
        None | Some("off") => {}
        Some("on") => wb_obs::alloc::set_tracking(true),
        Some(v) => {
            return Err(format!(
                "option --alloc-track has invalid value `{v}` (expected on or off)"
            ))
        }
    }
    let globals = Globals {
        metrics_out: args.get("metrics-out").map(str::to_string),
        trace_out: args.get("trace-out").map(str::to_string),
    };
    if globals.trace_out.is_some() {
        wb_obs::trace::start();
    }
    Ok(globals)
}

/// Writes the metrics snapshot and/or Chrome trace when requested.
///
/// Both writes get bounded retry with backoff: losing a whole run's
/// telemetry to one transient filesystem error is the wrong trade.
fn write_outputs(globals: &Globals) -> Result<(), String> {
    if let Some(path) = &globals.metrics_out {
        wb_obs::retry::retry(
            "metrics snapshot write",
            wb_obs::retry::BackoffConfig::default(),
            || {
                if let Some(f) = wb_chaos::fault_point!("cli.metrics.write") {
                    return Err(f.io_error("cli.metrics.write"));
                }
                // Snapshot inside the attempt so the written file includes
                // any retries this very write needed.
                std::fs::write(path, wb_obs::metrics::snapshot().to_json())
            },
        )
        .map_err(|e| format!("cannot write {path}: {e}"))?;
        wb_obs::info!("wrote metrics snapshot to {path}");
    }
    if let Some(path) = &globals.trace_out {
        wb_obs::retry::retry("trace write", wb_obs::retry::BackoffConfig::default(), || {
            if let Some(f) = wb_chaos::fault_point!("cli.trace.write") {
                return Err(f.io_error("cli.trace.write"));
            }
            wb_obs::trace::write_chrome(path)
        })
        .map_err(|e| format!("cannot write {path}: {e}"))?;
        wb_obs::info!("wrote Chrome trace to {path} (open in chrome://tracing or Perfetto)");
    }
    Ok(())
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") || raw.is_empty() {
        print!("{USAGE}");
        if raw.is_empty() {
            std::process::exit(2);
        }
        return;
    }
    let result = match raw[0].as_str() {
        "generate" => cmd_generate(&raw[1..]),
        "train" => cmd_train(&raw[1..]),
        "brief" => cmd_brief(&raw[1..]),
        "crawl-brief" => cmd_crawl_brief(&raw[1..]),
        "serve" => cmd_serve(&raw[1..]),
        "loadgen" => cmd_loadgen(&raw[1..]),
        "top" => cmd_top(&raw[1..]),
        "profile" => cmd_profile(&raw[1..]),
        "flame" => cmd_flame(&raw[1..]),
        "stats" => cmd_stats(&raw[1..]),
        "report" => cmd_report(&raw[1..]),
        "bench" => cmd_bench(&raw[1..]),
        other => Err(format!("unknown subcommand `{other}`")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}\n\n{USAGE}");
        std::process::exit(2);
    }
}

fn dataset_config(subjects: usize, pages: usize, seed: u64) -> DatasetConfig {
    let mut cfg = DatasetConfig::tiny();
    cfg.subjects_per_family = subjects;
    cfg.pages_per_topic = pages;
    cfg.seed = seed;
    cfg
}

fn cmd_generate(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &["out", "subjects", "pages", "seed", "site", "scenario", "site-pages"],
        &[],
    )?;
    let globals = apply_globals(&args)?;
    let out = args.get_str("out", "./wb-corpus");
    let subjects: usize = args.get_num("subjects", 2)?;
    let pages: usize = args.get_num("pages", 6)?;
    let seed: u64 = args.get_num("seed", 7)?;

    // `--site DIR` switches from corpus export to website export: a
    // crawlable on-disk site for `wb crawl-brief`, optionally hostile.
    if let Some(site_dir) = args.get("site") {
        let scenario_name = args.get_str("scenario", "clean");
        let scenario = SiteScenario::parse(&scenario_name).ok_or_else(|| {
            format!(
                "option --scenario has invalid value `{scenario_name}` (expected one of {})",
                SiteScenario::NAMES.join(", ")
            )
        })?;
        let mut cfg = SiteSpecConfig::default();
        cfg.pages = args.get_num("site-pages", cfg.pages)?;
        cfg.scenario = scenario;
        let taxonomy = Taxonomy::build(seed, subjects.max(1));
        let topic = taxonomy
            .topics()
            .first()
            .ok_or_else(|| "taxonomy produced no topics".to_string())?;
        let mut rng = StdRng::seed_from_u64(seed);
        let site = generate_site(topic, cfg, &mut rng);
        let files = export_site(site_dir, &site).map_err(|e| format!("export site: {e}"))?;
        println!(
            "Wrote {files} pages ({} hostile) of a {scenario_name} site to {site_dir}",
            site.hostile.len()
        );
        return write_outputs(&globals);
    }

    let taxonomy = Taxonomy::build(seed, subjects);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();
    for topic in taxonomy.topics() {
        for _ in 0..pages {
            records.push((
                generate_page(topic, PageConfig::default(), &mut rng),
                topic.phrase.clone(),
            ));
        }
    }
    export_pages(&out, &records).map_err(|e| format!("export corpus: {e}"))?;
    println!("Wrote {} labelled pages over {} topics to {out}", records.len(), taxonomy.len());
    write_outputs(&globals)
}

fn cmd_train(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &["out", "epochs", "subjects", "pages", "seed", "state", "checkpoint-every"],
        &["resume"],
    )?;
    let globals = apply_globals(&args)?;
    let out = args.get_str("out", "./wb-model.json");
    let epochs: usize = args.get_num("epochs", 15)?;
    let subjects: usize = args.get_num("subjects", 2)?;
    let pages: usize = args.get_num("pages", 8)?;
    let seed: u64 = args.get_num("seed", 7)?;
    let state = args.get("state").map(str::to_string);
    let every: usize = args.get_num("checkpoint-every", 0)?;
    let resume = args.has("resume");
    if resume && state.is_none() {
        return Err(
            "--resume needs --state FILE (where the run left its training state)".to_string()
        );
    }

    println!("Generating corpus ({} topics × {pages} pages)…", subjects * 8);
    let dataset = Dataset::generate(&dataset_config(subjects, pages, seed));
    println!("Training Joint-WB for {epochs} epochs…");
    let mut tc = TrainConfig::scaled(epochs);
    tc.lr = 0.01;
    tc.decay = 0.98;
    let model_cfg = ModelConfig::scaled(dataset.tokenizer.vocab().len());
    let briefer = match &state {
        None => Briefer::train_with(&dataset, model_cfg, tc, seed),
        Some(state_path) => {
            // Crash-safe path: checkpoint training state as we go and, on
            // --resume, continue exactly where the previous run stopped.
            let policy =
                CheckpointPolicy { state_path: state_path.into(), every_batches: every };
            let resume_state = if resume {
                let s =
                    TrainState::load(state_path).map_err(|e| format!("cannot resume: {e}"))?;
                println!(
                    "Resuming from {state_path} (epoch {}, batch {})…",
                    s.epoch, s.batches_done
                );
                Some(s)
            } else {
                None
            };
            let (briefer, _stats) = Briefer::train_resumable_with(
                &dataset,
                model_cfg,
                tc,
                seed,
                Some(&policy),
                resume_state,
            )
            .map_err(|e| format!("training failed: {e}"))?;
            briefer
        }
    };
    briefer
        .checkpoint(&dataset.tokenizer)
        .save(&out)
        .map_err(|e| format!("save checkpoint: {e}"))?;
    println!("Saved checkpoint to {out}");
    write_outputs(&globals)
}

fn cmd_brief(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["model"], &["json"])?;
    let globals = apply_globals(&args)?;
    let model = args.get_str("model", "./wb-model.json");
    let json = args.has("json");
    let files = &args.positional;
    if files.is_empty() {
        return Err("brief expects at least one HTML file".to_string());
    }

    let ckpt =
        Checkpoint::load(&model).map_err(|e| format!("cannot load checkpoint {model}: {e}"))?;
    let briefer = Briefer::from_checkpoint(&ckpt)
        .map_err(|e| format!("checkpoint holds no briefer: {e}"))?;
    let htmls: Vec<String> = files
        .iter()
        .map(|file| {
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    // Pages fan out over the rayon pool; output order matches input order.
    let mut briefed = 0usize;
    let mut failed = 0usize;
    for (file, result) in files.iter().zip(briefer.brief_corpus(&htmls)) {
        match result {
            Ok(b) => {
                briefed += 1;
                println!("=== {file} ===");
                if json {
                    println!("{}", serde_json::to_string_pretty(&b).expect("brief serialises"));
                } else {
                    print!("{}", b.render());
                }
            }
            Err(e) => {
                failed += 1;
                eprintln!("=== {file} ===\ncould not brief: {e}");
            }
        }
    }
    write_outputs(&globals)?;
    if briefed == 0 {
        // Every page failed: that is a diagnosed runtime failure, not a
        // usage error — exit 1 (like a bench regression), after the
        // observability outputs have been flushed.
        eprintln!("error: no page briefed successfully ({failed} failed)");
        std::process::exit(1);
    }
    Ok(())
}

fn cmd_crawl_brief(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &[
            "site",
            "model",
            "out",
            "dead-letter",
            "journal",
            "snapshot",
            "snapshot-every",
            "queue",
            "batch",
            "max-pages",
            "max-visited",
            "error-budget",
        ],
        &["resume"],
    )?;
    let globals = apply_globals(&args)?;
    if let Some(extra) = args.positional.first() {
        return Err(format!("crawl-brief takes no positional arguments (got `{extra}`)"));
    }
    let site = args.get("site").ok_or_else(|| {
        "crawl-brief needs --site DIR (an on-disk website, e.g. from \
         `wb generate --site`)"
            .to_string()
    })?;
    let model = args.get_str("model", "./wb-model.json");
    let out = args.get_str("out", "./briefs.jsonl");
    // The journal, snapshot and dead-letter files default to sidecars of
    // --out so one flag names the whole resumable run.
    let stem = out.strip_suffix(".jsonl").unwrap_or(&out);
    let defaults = PipelineConfig::default();
    let cfg = PipelineConfig {
        site_dir: site.into(),
        out_path: out.clone().into(),
        dead_letter_path: args.get_str("dead-letter", &format!("{stem}.dead.jsonl")).into(),
        journal_path: args.get_str("journal", &format!("{stem}.journal")).into(),
        snapshot_path: args.get_str("snapshot", &format!("{stem}.snapshot")).into(),
        snapshot_every: args.get_num("snapshot-every", defaults.snapshot_every)?,
        queue_depth: args.get_num("queue", defaults.queue_depth)?,
        batch: args.get_num("batch", defaults.batch)?,
        max_pages: args.get_num("max-pages", defaults.max_pages)?,
        max_visited: args.get_num("max-visited", defaults.max_visited)?,
        error_budget: args.get_num("error-budget", defaults.error_budget)?,
        resume: args.has("resume"),
    };

    let ckpt =
        Checkpoint::load(&model).map_err(|e| format!("cannot load checkpoint {model}: {e}"))?;
    let briefer = Briefer::from_checkpoint(&ckpt)
        .map_err(|e| format!("checkpoint holds no briefer: {e}"))?;
    match crawl_brief(&briefer, &cfg) {
        Ok(report) => {
            println!(
                "Briefed {} pages to {out} ({} replayed from the journal)",
                report.briefed, report.replayed
            );
            println!(
                "  visited {} · quarantined {} · skipped {} index / {} media · \
                 {} broken links",
                report.visited,
                report.quarantined,
                report.skipped_index,
                report.skipped_media,
                report.broken_links
            );
            write_outputs(&globals)
        }
        Err(e) => {
            // A diagnosed runtime failure (budget blown, site changed
            // under a resume, ...) is exit 1 — distinct from usage errors
            // (exit 2) — and still flushes the observability outputs:
            // the metrics of an aborted run are exactly the interesting
            // ones. The run stays resumable either way.
            write_outputs(&globals)?;
            eprintln!("error: {e}");
            if matches!(e, PipelineError::BudgetExceeded { .. }) {
                eprintln!(
                    "the run is resumable: rerun with --resume (and a higher --error-budget)"
                );
            }
            std::process::exit(1);
        }
    }
}

fn cmd_serve(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &[
            "model",
            "addr",
            "workers",
            "queue-capacity",
            "cache-capacity",
            "max-body-bytes",
            "request-timeout-ms",
            "breaker-threshold",
            "breaker-window-ms",
            "breaker-cooldown-ms",
            "access-log-sample",
            "slow-request-ms",
            "replicas",
            "max-conns",
            "max-requests-per-conn",
            "idle-timeout-ms",
            // Load-testing knob: stalls each briefing batch so overload
            // behaviour (503 shedding) is reproducible. Deliberately not
            // in the USAGE synopsis.
            "handler-delay-ms",
        ],
        &[],
    )?;
    let globals = apply_globals(&args)?;
    if let Some(extra) = args.positional.first() {
        return Err(format!("serve takes no positional arguments (got `{extra}`)"));
    }
    let model = args.get_str("model", "./wb-model.json");
    let defaults = wb_serve::ServeConfig::default();
    let cfg = wb_serve::ServeConfig {
        addr: args.get_str("addr", &defaults.addr),
        workers: args.get_num("workers", defaults.workers)?,
        queue_capacity: args.get_num("queue-capacity", defaults.queue_capacity)?,
        cache_capacity: args.get_num("cache-capacity", defaults.cache_capacity)?,
        max_body_bytes: args.get_num("max-body-bytes", defaults.max_body_bytes)?,
        request_timeout_ms: args.get_num("request-timeout-ms", defaults.request_timeout_ms)?,
        handler_delay_ms: args.get_num("handler-delay-ms", 0)?,
        breaker_threshold: args.get_num("breaker-threshold", defaults.breaker_threshold)?,
        breaker_window_ms: args.get_num("breaker-window-ms", defaults.breaker_window_ms)?,
        breaker_cooldown_ms: args
            .get_num("breaker-cooldown-ms", defaults.breaker_cooldown_ms)?,
        access_log_sample: args.get_num("access-log-sample", defaults.access_log_sample)?,
        slow_request_ms: args.get_num("slow-request-ms", defaults.slow_request_ms)?,
        replicas: args.get_num("replicas", defaults.replicas)?,
        max_conns: args.get_num("max-conns", defaults.max_conns)?,
        max_requests_per_conn: args
            .get_num("max-requests-per-conn", defaults.max_requests_per_conn)?,
        idle_timeout_ms: args.get_num("idle-timeout-ms", defaults.idle_timeout_ms)?,
    };

    let ckpt =
        Checkpoint::load(&model).map_err(|e| format!("cannot load checkpoint {model}: {e}"))?;
    let briefer = Briefer::from_checkpoint(&ckpt)
        .map_err(|e| format!("checkpoint holds no briefer: {e}"))?;
    // SIGINT/SIGTERM get the same graceful drain + flush as /shutdown;
    // install the handler before the listener so an early signal is not
    // lost.
    wb_serve::install_handler();
    let handle =
        wb_serve::start(briefer, cfg).map_err(|e| format!("cannot start server: {e}"))?;
    println!("wb serve listening on http://{}", handle.addr());
    println!("POST /brief · GET /healthz · GET /metrics · GET /varz · POST /shutdown");
    // Run until a client posts /shutdown or a signal arrives, then drain
    // in-flight requests and flush the observability outputs.
    loop {
        if handle.poll_shutdown_request(std::time::Duration::from_millis(100)) {
            break;
        }
        if wb_serve::shutdown_signalled() {
            println!("shutdown signal received; draining");
            break;
        }
    }
    handle.shutdown();
    write_outputs(&globals)
}

fn cmd_stats(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["subjects", "pages"], &[])?;
    let globals = apply_globals(&args)?;
    let subjects: usize = args.get_num("subjects", 2)?;
    let pages: usize = args.get_num("pages", 6)?;

    let dataset = Dataset::generate(&dataset_config(subjects, pages, 7));
    let (mean, std) = dataset.length_stats();
    println!("pages:           {}", dataset.examples.len());
    println!("topics:          {}", dataset.taxonomy.len());
    println!("avg length:      {mean:.1} tokens (std {std:.1})");
    println!("vocabulary:      {}", dataset.tokenizer.vocab().len());

    let mut freq = FrequencyTable::new();
    let n_specials = webpage_briefing::text::SPECIALS.len() as u32;
    let texts: Vec<String> = dataset
        .examples
        .iter()
        .take(200)
        .map(|e| {
            // Reconstruct the surface text without special tokens.
            let ids: Vec<u32> = e.tokens.iter().copied().filter(|&t| t >= n_specials).collect();
            dataset.tokenizer.decode_ids(&ids).join(" ")
        })
        .collect();
    for t in &texts {
        freq.add_text(t);
    }
    let cov = coverage(&dataset.tokenizer, texts.iter().map(String::as_str));
    println!("word types:      {}", freq.types());
    println!("head-100 mass:   {:.1}%", freq.head_coverage(100) * 100.0);
    println!("tokenizer UNK:   {:.2}%", cov.unk_rate() * 100.0);
    println!("whole words:     {:.1}%", cov.whole_word_rate() * 100.0);
    println!("fertility:       {:.2} pieces/word", cov.fertility());
    write_outputs(&globals)
}

fn cmd_report(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &[], &["diff"])?;
    apply_globals(&args)?;
    let load = |file: &str| -> Result<wb_obs::metrics::Snapshot, String> {
        let text =
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        wb_obs::metrics::Snapshot::from_json(&text)
            .map_err(|e| format!("{file} is not a metrics snapshot: {e}"))
    };
    if args.has("diff") {
        let (a, b) = match args.positional.as_slice() {
            [a, b] => (a, b),
            _ => {
                return Err(
                    "report --diff expects exactly two metrics JSON files (before, after)"
                        .to_string(),
                )
            }
        };
        print!("{}", wb_obs::report::render_diff(&load(a)?, &load(b)?));
        return Ok(());
    }
    let file = match args.positional.as_slice() {
        [f] => f,
        [] => return Err("report expects a metrics JSON file".to_string()),
        _ => {
            return Err(
                "report expects exactly one metrics JSON file (or --diff with two)".to_string()
            )
        }
    };
    print!("{}", wb_obs::report::render(&load(file)?));
    Ok(())
}

/// One HTTP/1.1 GET against `addr` over a fresh connection, returning the
/// response body. Sends `Connection: close` so the keep-alive server ends
/// the response with EOF and the read-to-EOF below terminates promptly.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    http_get_timeout(addr, path, std::time::Duration::from_secs(5))
}

/// [`http_get`] with an explicit timeout — `wb profile` holds the
/// connection open for the whole capture, so its read deadline must scale
/// with `--seconds` rather than the interactive 5 s default.
fn http_get_timeout(
    addr: &str,
    path: &str,
    timeout: std::time::Duration,
) -> Result<String, String> {
    use std::io::{Read, Write};
    let sock_addr: std::net::SocketAddr =
        addr.parse().map_err(|_| format!("invalid address `{addr}` (expected HOST:PORT)"))?;
    let mut stream = std::net::TcpStream::connect_timeout(&sock_addr, timeout)
        .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| e.to_string())?;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("cannot send request to {addr}: {e}"))?;
    let mut text = String::new();
    let mut buf = [0u8; 8192];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => text.push_str(&String::from_utf8_lossy(&buf[..n])),
            Err(_) if !text.is_empty() => break,
            Err(e) => return Err(format!("no response from {addr}: {e}")),
        }
    }
    let (head, body) =
        text.split_once("\r\n\r\n").ok_or_else(|| format!("malformed response from {addr}"))?;
    let status = head.split_whitespace().nth(1).unwrap_or("");
    if status != "200" {
        // Surface the server's own diagnosis (e.g. a 409 "capture already
        // in progress") instead of just the status code.
        let detail = body.lines().next().unwrap_or("").trim();
        let detail = if detail.is_empty() { String::new() } else { format!(": {detail}") };
        return Err(format!("{addr}{path} answered {status}{detail}"));
    }
    Ok(body.to_string())
}

/// The live terminal dashboard: polls `/varz` and renders one frame per
/// interval. Plain ANSI (clear + home) — no terminal library.
fn cmd_top(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["interval-ms"], &["once"])?;
    apply_globals(&args)?;
    let addr = match args.positional.as_slice() {
        [a] => a.clone(),
        _ => return Err("top expects exactly one server address (HOST:PORT)".to_string()),
    };
    let interval_ms: u64 = args.get_num("interval-ms", 1000)?;
    let once = args.has("once");
    loop {
        let body = http_get(&addr, "/varz")?;
        let v: serde_json::Value =
            serde_json::from_str(&body).map_err(|e| format!("{addr}/varz is not JSON: {e}"))?;
        let frame = render_top_frame(&addr, &v);
        if once {
            print!("{frame}");
            return Ok(());
        }
        // Clear screen + cursor home, then the frame — a flicker-free
        // enough redraw without terminal capabilities.
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(100)));
    }
}

/// Renders one `wb top` frame from a `/varz` document.
fn render_top_frame(addr: &str, v: &serde_json::Value) -> String {
    let num = |path: &[&str]| -> f64 {
        let mut cur = v;
        for key in path {
            match cur.get(key) {
                Some(next) => cur = next,
                None => return 0.0,
            }
        }
        cur.as_f64().unwrap_or(0.0)
    };
    let opt_num = |path: &[&str]| -> Option<f64> {
        let mut cur = v;
        for key in path {
            cur = cur.get(key)?;
        }
        cur.as_f64()
    };
    let fmt_us = |us: Option<f64>| match us {
        Some(us) if us >= 1e6 => format!("{:>8.2}s", us / 1e6),
        Some(us) if us >= 1e3 => format!("{:>7.1}ms", us / 1e3),
        Some(us) => format!("{:>7.0}us", us),
        None => format!("{:>9}", "-"),
    };
    let uptime_s = num(&["uptime_ms"]) / 1e3;
    let breaker = v.get("breaker").and_then(|b| b.as_str()).unwrap_or("?");
    let mut out = String::new();
    out.push_str(&format!(
        "wb top — {addr} · uptime {uptime_s:.0}s · workers {:.0} · breaker {breaker}\n\n",
        num(&["workers"])
    ));
    out.push_str(&format!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "window", "rps", "err%", "hit%", "p50", "p90", "p99"
    ));
    for w in ["10s", "60s"] {
        out.push_str(&format!(
            "{:<10} {:>9.1} {:>8.1}% {:>8.1}% {} {} {}\n",
            w,
            num(&["windows", w, "rps"]),
            num(&["windows", w, "error_rate"]) * 100.0,
            num(&["windows", w, "cache", "hit_ratio"]) * 100.0,
            fmt_us(opt_num(&["windows", w, "latency_us", "p50"])),
            fmt_us(opt_num(&["windows", w, "latency_us", "p90"])),
            fmt_us(opt_num(&["windows", w, "latency_us", "p99"])),
        ));
    }
    out.push_str(&format!(
        "\n{:<22} {:>9} {:>9} {:>9}\n",
        "stages (10s)", "count", "mean", "p99"
    ));
    for stage in ["queue_wait", "parse", "cache", "batch_wait", "model", "serialize", "write"] {
        let base = ["windows", "10s", "stages_us", stage];
        let count = num(&[&base[..], &["count"]].concat());
        out.push_str(&format!(
            "  {:<20} {:>9.0} {} {}\n",
            stage,
            count,
            fmt_us((count > 0.0).then(|| num(&[&base[..], &["mean"]].concat()))),
            fmt_us(opt_num(&[&base[..], &["p99"]].concat())),
        ));
    }
    out.push_str(&format!(
        "\nqueue depth {:.0} (peak {:.0}) · cache {:.0}/{:.0} · requests(60s) {:.0} · errors(60s) {:.0}\n",
        num(&["queue", "depth"]),
        num(&["queue", "peak"]),
        num(&["cache", "size"]),
        num(&["cache", "capacity"]),
        num(&["windows", "60s", "requests"]),
        num(&["windows", "60s", "errors"]),
    ));
    // The process gauges come from /proc/self and are absent off-Linux;
    // only render the line when the sampler has populated them.
    if num(&["proc", "threads"]) > 0.0 {
        out.push_str(&format!(
            "rss {:.1}MiB · threads {:.0} · open fds {:.0}\n",
            num(&["proc", "rss_bytes"]) / (1024.0 * 1024.0),
            num(&["proc", "threads"]),
            num(&["proc", "open_fds"]),
        ));
    }
    out
}

/// `wb profile` — capture a sampling profile from a live server over its
/// `/pprof` endpoint and print it (or write it with `--out`).
fn cmd_profile(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["seconds", "hz", "mode", "format", "out"], &[])?;
    let globals = apply_globals(&args)?;
    let addr = match args.positional.as_slice() {
        [a] => a.clone(),
        _ => return Err("profile expects exactly one server address (HOST:PORT)".to_string()),
    };
    let seconds: f64 = args.get_num("seconds", 2.0)?;
    if !(seconds > 0.0 && seconds <= 60.0) {
        return Err("option --seconds must be greater than 0 and at most 60".to_string());
    }
    let hz: u32 = args.get_num("hz", 99)?;
    if !(1..=1000).contains(&hz) {
        return Err("option --hz must be between 1 and 1000".to_string());
    }
    let mode = args.get_str("mode", "wall");
    if wb_obs::profile::Mode::parse(&mode).is_none() {
        return Err(format!("option --mode has invalid value `{mode}` (expected wall or cpu)"));
    }
    let format = args.get_str("format", "collapsed");
    if format != "collapsed" && format != "svg" {
        return Err(format!(
            "option --format has invalid value `{format}` (expected collapsed or svg)"
        ));
    }
    let path = format!("/pprof?seconds={seconds}&hz={hz}&mode={mode}&format={format}");
    // The server holds the response until the capture finishes; allow the
    // whole capture plus a generous margin before timing out the read.
    let timeout =
        std::time::Duration::from_secs_f64(seconds) + std::time::Duration::from_secs(10);
    eprintln!("profiling {addr} for {seconds}s at {hz} Hz ({mode} mode)…");
    let body = http_get_timeout(&addr, &path, timeout)?;
    match args.get("out") {
        Some(out) => {
            std::fs::write(out, &body).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("Wrote {format} profile to {out}");
        }
        None => print!("{body}"),
    }
    write_outputs(&globals)
}

/// `wb flame` — render a collapsed-stack capture into a flamegraph SVG.
fn cmd_flame(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["out", "title"], &[])?;
    let globals = apply_globals(&args)?;
    let input = match args.positional.as_slice() {
        [f] => f.clone(),
        _ => {
            return Err("flame expects exactly one collapsed-stack file (from `wb profile`)"
                .to_string())
        }
    };
    let text =
        std::fs::read_to_string(&input).map_err(|e| format!("cannot read {input}: {e}"))?;
    let title = args.get_str("title", &input);
    let svg = wb_obs::flame::render_svg(&text, &title).map_err(|e| format!("{input}: {e}"))?;
    let default_out = format!("{}.svg", input.trim_end_matches(".collapsed"));
    let out = args.get_str("out", &default_out);
    std::fs::write(&out, &svg).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("Wrote flamegraph to {out}");
    write_outputs(&globals)
}

fn cmd_bench(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["out", "label", "baseline", "tolerance"], &["quick"])?;
    let globals = apply_globals(&args)?;
    let opts = wb_bench::perf::CliOptions {
        quick: args.has("quick"),
        label: args.get_str("label", "local"),
        out: args.get("out").map(str::to_string),
        baseline: args.get("baseline").map(str::to_string),
        tolerance_pct: args.get_num("tolerance", 10.0)?,
        compare_only: match args.positional.as_slice() {
            [] => None,
            [f] => Some(f.clone()),
            _ => return Err("bench takes at most one REPORT.json to compare".to_string()),
        },
    };
    let code = wb_bench::perf::run_cli(&opts)?;
    write_outputs(&globals)?;
    if code != 0 {
        // A regression is a clean, diagnosed outcome: exit 1 directly
        // rather than routing through the usage-error path (exit 2).
        std::process::exit(code);
    }
    Ok(())
}

/// Drives load at a running `wb serve` and reports throughput, latency
/// percentiles and SLO attainment; with `--out` the run becomes a
/// `wb-bench-v1` report that `--baseline` diffs like `wb bench`.
fn cmd_loadgen(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(
        raw,
        &[
            "requests",
            "concurrency",
            "rate",
            "pages",
            "slo-ms",
            "timeout-ms",
            "label",
            "out",
            "baseline",
            "tolerance",
        ],
        &["close", "compare", "no-warmup"],
    )?;
    let globals = apply_globals(&args)?;
    let addr = match args.positional.as_slice() {
        [a] => a.clone(),
        _ => return Err("loadgen expects exactly one server address (HOST:PORT)".to_string()),
    };
    let base = wb_bench::loadgen::LoadConfig {
        addr,
        requests: args.get_num("requests", 1000u64)?,
        concurrency: args.get_num("concurrency", 8usize)?,
        keep_alive: !args.has("close"),
        rate: args.get_num("rate", 0.0f64)?,
        pages: args.get_num("pages", 8usize)?,
        slo_ms: args.get_num("slo-ms", 50.0f64)?,
        timeout: std::time::Duration::from_millis(args.get_num("timeout-ms", 10_000u64)?),
        warmup: !args.has("no-warmup"),
    };
    let modes: &[bool] = if args.has("compare") {
        &[true, false] // keep-alive first, then connect-per-request
    } else if args.has("close") {
        &[false]
    } else {
        &[true]
    };
    let mut summaries = Vec::new();
    for &keep_alive in modes {
        let cfg = wb_bench::loadgen::LoadConfig { keep_alive, ..base.clone() };
        let summary = wb_bench::loadgen::run(&cfg)?;
        print!("{}", summary.render());
        summaries.push(summary);
    }
    if let [ka, cl] = summaries.as_slice() {
        if cl.rps() > 0.0 {
            println!(
                "keep-alive speedup: {:.2}x over connect-per-request",
                ka.rps() / cl.rps()
            );
        }
    }
    let report =
        wb_bench::loadgen::to_bench_report(&args.get_str("label", "serve"), &summaries);
    if let Some(out) = args.get("out") {
        report.save(out)?;
        println!("wrote {out}");
    }
    let mut code = 0;
    if let Some(baseline_path) = args.get("baseline") {
        let baseline = wb_bench::perf::BenchReport::load(baseline_path)?;
        let cmp = wb_bench::perf::compare(&baseline, &report, args.get_num("tolerance", 10.0)?);
        for w in &cmp.warnings {
            println!("warn: {w}");
        }
        for f in &cmp.failures {
            println!("FAIL: {f}");
        }
        println!(
            "baseline {}: {} within tolerance, {} warnings, {} failures",
            baseline.label,
            cmp.within,
            cmp.warnings.len(),
            cmp.failures.len()
        );
        if !cmp.failures.is_empty() {
            code = 1;
        }
    }
    write_outputs(&globals)?;
    if code != 0 {
        // A regression is a clean, diagnosed outcome: exit 1 directly
        // rather than routing through the usage-error path (exit 2).
        std::process::exit(code);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("epoch", "epochs"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("same", "same"), 0);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }

    #[test]
    fn nearest_flag_suggests_plausible_typos_only() {
        let known = &["epochs", "subjects", "out"];
        assert_eq!(nearest_flag("epoch", known), Some("epochs"));
        assert_eq!(nearest_flag("subject", known), Some("subjects"));
        assert_eq!(nearest_flag("zzzzzzzz", known), None);
    }

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn unknown_flag_is_rejected_at_parse_time() {
        let err = Args::parse(&s(&["--epoch", "5"]), &["epochs"], &[]).unwrap_err();
        assert!(err.contains("unknown option --epoch"), "{err}");
        assert!(err.contains("did you mean --epochs?"), "{err}");
        // A trailing typo must not degrade into an `expects a value` error.
        let err = Args::parse(&s(&["--epoch"]), &["epochs"], &[]).unwrap_err();
        assert!(err.contains("unknown option --epoch"), "{err}");
    }

    #[test]
    fn equals_form_parses_options() {
        let args =
            Args::parse(&s(&["--out=x.json", "--epochs=5", "p.html"]), &["out", "epochs"], &[])
                .unwrap();
        assert_eq!(args.get("out"), Some("x.json"));
        assert_eq!(args.get("epochs"), Some("5"));
        assert_eq!(args.positional, vec!["p.html".to_string()]);
        // The value may itself contain `=` (split on the first one only).
        let args = Args::parse(&s(&["--log-level=warn,wb_tensor=trace"]), &[], &[]).unwrap();
        assert_eq!(args.get("log-level"), Some("warn,wb_tensor=trace"));
        // An empty value is allowed syntactically (validated downstream).
        let args = Args::parse(&s(&["--out="]), &["out"], &[]).unwrap();
        assert_eq!(args.get("out"), Some(""));
    }

    #[test]
    fn equals_form_validates_names() {
        // Unknown flags are still caught in the `=` form, with suggestions.
        let err = Args::parse(&s(&["--epoch=5"]), &["epochs"], &[]).unwrap_err();
        assert!(err.contains("unknown option --epoch"), "{err}");
        assert!(err.contains("did you mean --epochs?"), "{err}");
        // Switches take no value in either spelling.
        let err = Args::parse(&s(&["--json=yes"]), &[], &["json"]).unwrap_err();
        assert!(err.contains("switch --json takes no value"), "{err}");
    }

    #[test]
    fn globals_are_accepted_by_any_parse() {
        let args =
            Args::parse(&s(&["--log-level", "warn", "--metrics-out", "m.json"]), &[], &[])
                .unwrap();
        assert_eq!(args.get("log-level"), Some("warn"));
        assert_eq!(args.get("metrics-out"), Some("m.json"));
    }
}
