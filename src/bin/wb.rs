//! `wb` — the Webpage Briefing command line.
//!
//! ```text
//! wb generate --out ./corpus --subjects 2 --pages 6     # export a corpus
//! wb train --out model.json --epochs 12                 # train a briefer
//! wb brief --model model.json page.html                 # brief webpages
//! wb stats                                              # corpus statistics
//! ```

use clap::{Parser, Subcommand};
use rand::rngs::StdRng;
use rand::SeedableRng;
use webpage_briefing::core::{Briefer, Checkpoint, ModelConfig, TrainConfig};
use webpage_briefing::corpus::{
    export_pages, generate_page, Dataset, DatasetConfig, PageConfig, Taxonomy,
};
use webpage_briefing::text::{coverage, FrequencyTable};

#[derive(Parser)]
#[command(
    name = "wb",
    about = "Automatic Webpage Briefing (ICDE 2021): hierarchical webpage summaries",
    version
)]
struct Cli {
    #[command(subcommand)]
    command: Command,
}

#[derive(Subcommand)]
enum Command {
    /// Generate a synthetic labelled corpus and export it as HTML + JSON.
    Generate {
        /// Output directory.
        #[arg(long, default_value = "./wb-corpus")]
        out: String,
        /// Subjects per family (topics = 8 × this).
        #[arg(long, default_value_t = 2)]
        subjects: usize,
        /// Pages per topic.
        #[arg(long, default_value_t = 6)]
        pages: usize,
        /// RNG seed.
        #[arg(long, default_value_t = 7)]
        seed: u64,
    },
    /// Train a Joint-WB briefer on a synthetic corpus and save a checkpoint.
    Train {
        /// Checkpoint output path (JSON).
        #[arg(long, default_value = "./wb-model.json")]
        out: String,
        /// Training epochs.
        #[arg(long, default_value_t = 15)]
        epochs: usize,
        /// Subjects per family for the training corpus.
        #[arg(long, default_value_t = 2)]
        subjects: usize,
        /// Pages per topic.
        #[arg(long, default_value_t = 8)]
        pages: usize,
        /// RNG seed.
        #[arg(long, default_value_t = 7)]
        seed: u64,
    },
    /// Brief one or more HTML files with a trained checkpoint.
    Brief {
        /// Checkpoint path produced by `wb train`.
        #[arg(long, default_value = "./wb-model.json")]
        model: String,
        /// HTML files to brief.
        #[arg(required = true)]
        files: Vec<String>,
        /// Emit JSON instead of the rendered hierarchy.
        #[arg(long)]
        json: bool,
    },
    /// Print statistics of a synthetic corpus.
    Stats {
        /// Subjects per family.
        #[arg(long, default_value_t = 2)]
        subjects: usize,
        /// Pages per topic.
        #[arg(long, default_value_t = 6)]
        pages: usize,
    },
}

fn main() {
    match Cli::parse().command {
        Command::Generate { out, subjects, pages, seed } => generate(&out, subjects, pages, seed),
        Command::Train { out, epochs, subjects, pages, seed } => {
            train(&out, epochs, subjects, pages, seed)
        }
        Command::Brief { model, files, json } => brief(&model, &files, json),
        Command::Stats { subjects, pages } => stats(subjects, pages),
    }
}

fn dataset_config(subjects: usize, pages: usize, seed: u64) -> DatasetConfig {
    let mut cfg = DatasetConfig::tiny();
    cfg.subjects_per_family = subjects;
    cfg.pages_per_topic = pages;
    cfg.seed = seed;
    cfg
}

fn generate(out: &str, subjects: usize, pages: usize, seed: u64) {
    let taxonomy = Taxonomy::build(seed, subjects);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();
    for topic in taxonomy.topics() {
        for _ in 0..pages {
            records.push((
                generate_page(topic, PageConfig::default(), &mut rng),
                topic.phrase.clone(),
            ));
        }
    }
    export_pages(out, &records).expect("export corpus");
    println!(
        "Wrote {} labelled pages over {} topics to {out}",
        records.len(),
        taxonomy.len()
    );
}

fn train(out: &str, epochs: usize, subjects: usize, pages: usize, seed: u64) {
    println!("Generating corpus ({} topics × {pages} pages)…", subjects * 8);
    let dataset = Dataset::generate(&dataset_config(subjects, pages, seed));
    println!("Training Joint-WB for {epochs} epochs (one CPU — be patient)…");
    let mut tc = TrainConfig::scaled(epochs);
    tc.lr = 0.01;
    tc.decay = 0.98;
    let model_cfg = ModelConfig::scaled(dataset.tokenizer.vocab().len());
    let briefer = Briefer::train_with(&dataset, model_cfg, tc, seed);
    briefer
        .checkpoint(&dataset.tokenizer)
        .save(out)
        .expect("save checkpoint");
    println!("Saved checkpoint to {out}");
}

fn brief(model: &str, files: &[String], json: bool) {
    let ckpt = Checkpoint::load(model)
        .unwrap_or_else(|e| panic!("cannot load checkpoint {model}: {e}"));
    let briefer = Briefer::from_checkpoint(&ckpt).expect("checkpoint holds a briefer");
    for file in files {
        let html = std::fs::read_to_string(file)
            .unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
        match briefer.brief_html(&html) {
            Ok(b) => {
                println!("=== {file} ===");
                if json {
                    println!("{}", serde_json::to_string_pretty(&b).expect("brief serialises"));
                } else {
                    print!("{}", b.render());
                }
            }
            Err(e) => eprintln!("=== {file} ===\ncould not brief: {e}"),
        }
    }
}

fn stats(subjects: usize, pages: usize) {
    let dataset = Dataset::generate(&dataset_config(subjects, pages, 7));
    let (mean, std) = dataset.length_stats();
    println!("pages:           {}", dataset.examples.len());
    println!("topics:          {}", dataset.taxonomy.len());
    println!("avg length:      {mean:.1} tokens (std {std:.1})");
    println!("vocabulary:      {}", dataset.tokenizer.vocab().len());

    let mut freq = FrequencyTable::new();
    let n_specials = webpage_briefing::text::SPECIALS.len() as u32;
    let texts: Vec<String> = dataset
        .examples
        .iter()
        .take(200)
        .map(|e| {
            // Reconstruct the surface text without special tokens.
            let ids: Vec<u32> =
                e.tokens.iter().copied().filter(|&t| t >= n_specials).collect();
            dataset.tokenizer.decode_ids(&ids).join(" ")
        })
        .collect();
    for t in &texts {
        freq.add_text(t);
    }
    let cov = coverage(&dataset.tokenizer, texts.iter().map(String::as_str));
    println!("word types:      {}", freq.types());
    println!("head-100 mass:   {:.1}%", freq.head_coverage(100) * 100.0);
    println!("tokenizer UNK:   {:.2}%", cov.unk_rate() * 100.0);
    println!("whole words:     {:.1}%", cov.whole_word_rate() * 100.0);
    println!("fertility:       {:.2} pieces/word", cov.fertility());
}
