//! `wb` — the Webpage Briefing command line.
//!
//! ```text
//! wb generate --out ./corpus --subjects 2 --pages 6     # export a corpus
//! wb train --out model.json --epochs 12                 # train a briefer
//! wb brief --model model.json page.html                 # brief webpages
//! wb stats                                              # corpus statistics
//! ```
//!
//! Argument parsing is hand-rolled (no external CLI crate): every
//! subcommand takes `--flag value` options plus positional file paths.

use rand::rngs::StdRng;
use rand::SeedableRng;
use webpage_briefing::core::{Briefer, Checkpoint, ModelConfig, TrainConfig};
use webpage_briefing::corpus::{
    export_pages, generate_page, Dataset, DatasetConfig, PageConfig, Taxonomy,
};
use webpage_briefing::text::{coverage, FrequencyTable};

const USAGE: &str = "\
wb — Automatic Webpage Briefing (ICDE 2021): hierarchical webpage summaries

USAGE:
    wb generate [--out DIR] [--subjects N] [--pages N] [--seed N]
    wb train    [--out FILE] [--epochs N] [--subjects N] [--pages N] [--seed N]
    wb brief    [--model FILE] [--json] FILES...
    wb stats    [--subjects N] [--pages N]

SUBCOMMANDS:
    generate    Generate a synthetic labelled corpus and export HTML + JSON
    train       Train a Joint-WB briefer and save a checkpoint
    brief       Brief one or more HTML files with a trained checkpoint
    stats       Print statistics of a synthetic corpus
";

/// Minimal `--flag value` / `--switch` / positional parser.
struct Args {
    options: Vec<(String, String)>,
    switches: Vec<String>,
    positional: Vec<String>,
}

impl Args {
    /// Splits raw arguments; `switch_names` lists valueless flags.
    fn parse(raw: &[String], switch_names: &[&str]) -> Result<Args, String> {
        let mut args =
            Args { options: Vec::new(), switches: Vec::new(), positional: Vec::new() };
        let mut i = 0;
        while i < raw.len() {
            let a = &raw[i];
            if let Some(name) = a.strip_prefix("--") {
                if switch_names.contains(&name) {
                    args.switches.push(name.to_string());
                } else {
                    let value = raw
                        .get(i + 1)
                        .ok_or_else(|| format!("option --{name} expects a value"))?;
                    args.options.push((name.to_string(), value.clone()));
                    i += 1;
                }
            } else {
                args.positional.push(a.clone());
            }
            i += 1;
        }
        Ok(args)
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.options.iter().rev().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    fn get_str(&self, name: &str, default: &str) -> String {
        self.get(name).unwrap_or(default).to_string()
    }

    fn get_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| format!("option --{name} has invalid value `{v}`"))
            }
        }
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    fn reject_unknown(&self, known: &[&str]) -> Result<(), String> {
        for (k, _) in &self.options {
            if !known.contains(&k.as_str()) {
                return Err(format!("unknown option --{k}"));
            }
        }
        Ok(())
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.iter().any(|a| a == "--help" || a == "-h") || raw.is_empty() {
        print!("{USAGE}");
        if raw.is_empty() {
            std::process::exit(2);
        }
        return;
    }
    let result = match raw[0].as_str() {
        "generate" => cmd_generate(&raw[1..]),
        "train" => cmd_train(&raw[1..]),
        "brief" => cmd_brief(&raw[1..]),
        "stats" => cmd_stats(&raw[1..]),
        other => Err(format!("unknown subcommand `{other}`")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}\n\n{USAGE}");
        std::process::exit(2);
    }
}

fn dataset_config(subjects: usize, pages: usize, seed: u64) -> DatasetConfig {
    let mut cfg = DatasetConfig::tiny();
    cfg.subjects_per_family = subjects;
    cfg.pages_per_topic = pages;
    cfg.seed = seed;
    cfg
}

fn cmd_generate(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &[])?;
    args.reject_unknown(&["out", "subjects", "pages", "seed"])?;
    let out = args.get_str("out", "./wb-corpus");
    let subjects: usize = args.get_num("subjects", 2)?;
    let pages: usize = args.get_num("pages", 6)?;
    let seed: u64 = args.get_num("seed", 7)?;

    let taxonomy = Taxonomy::build(seed, subjects);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut records = Vec::new();
    for topic in taxonomy.topics() {
        for _ in 0..pages {
            records.push((
                generate_page(topic, PageConfig::default(), &mut rng),
                topic.phrase.clone(),
            ));
        }
    }
    export_pages(&out, &records).map_err(|e| format!("export corpus: {e}"))?;
    println!("Wrote {} labelled pages over {} topics to {out}", records.len(), taxonomy.len());
    Ok(())
}

fn cmd_train(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &[])?;
    args.reject_unknown(&["out", "epochs", "subjects", "pages", "seed"])?;
    let out = args.get_str("out", "./wb-model.json");
    let epochs: usize = args.get_num("epochs", 15)?;
    let subjects: usize = args.get_num("subjects", 2)?;
    let pages: usize = args.get_num("pages", 8)?;
    let seed: u64 = args.get_num("seed", 7)?;

    println!("Generating corpus ({} topics × {pages} pages)…", subjects * 8);
    let dataset = Dataset::generate(&dataset_config(subjects, pages, seed));
    println!("Training Joint-WB for {epochs} epochs…");
    let mut tc = TrainConfig::scaled(epochs);
    tc.lr = 0.01;
    tc.decay = 0.98;
    let model_cfg = ModelConfig::scaled(dataset.tokenizer.vocab().len());
    let briefer = Briefer::train_with(&dataset, model_cfg, tc, seed);
    briefer
        .checkpoint(&dataset.tokenizer)
        .save(&out)
        .map_err(|e| format!("save checkpoint: {e}"))?;
    println!("Saved checkpoint to {out}");
    Ok(())
}

fn cmd_brief(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &["json"])?;
    args.reject_unknown(&["model"])?;
    let model = args.get_str("model", "./wb-model.json");
    let json = args.has("json");
    let files = &args.positional;
    if files.is_empty() {
        return Err("brief expects at least one HTML file".to_string());
    }

    let ckpt =
        Checkpoint::load(&model).map_err(|e| format!("cannot load checkpoint {model}: {e}"))?;
    let briefer = Briefer::from_checkpoint(&ckpt)
        .map_err(|e| format!("checkpoint holds no briefer: {e}"))?;
    let htmls: Vec<String> = files
        .iter()
        .map(|file| {
            std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    // Pages fan out over the rayon pool; output order matches input order.
    for (file, result) in files.iter().zip(briefer.brief_corpus(&htmls)) {
        match result {
            Ok(b) => {
                println!("=== {file} ===");
                if json {
                    println!("{}", serde_json::to_string_pretty(&b).expect("brief serialises"));
                } else {
                    print!("{}", b.render());
                }
            }
            Err(e) => eprintln!("=== {file} ===\ncould not brief: {e}"),
        }
    }
    Ok(())
}

fn cmd_stats(raw: &[String]) -> Result<(), String> {
    let args = Args::parse(raw, &[])?;
    args.reject_unknown(&["subjects", "pages"])?;
    let subjects: usize = args.get_num("subjects", 2)?;
    let pages: usize = args.get_num("pages", 6)?;

    let dataset = Dataset::generate(&dataset_config(subjects, pages, 7));
    let (mean, std) = dataset.length_stats();
    println!("pages:           {}", dataset.examples.len());
    println!("topics:          {}", dataset.taxonomy.len());
    println!("avg length:      {mean:.1} tokens (std {std:.1})");
    println!("vocabulary:      {}", dataset.tokenizer.vocab().len());

    let mut freq = FrequencyTable::new();
    let n_specials = webpage_briefing::text::SPECIALS.len() as u32;
    let texts: Vec<String> = dataset
        .examples
        .iter()
        .take(200)
        .map(|e| {
            // Reconstruct the surface text without special tokens.
            let ids: Vec<u32> = e.tokens.iter().copied().filter(|&t| t >= n_specials).collect();
            dataset.tokenizer.decode_ids(&ids).join(" ")
        })
        .collect();
    for t in &texts {
        freq.add_text(t);
    }
    let cov = coverage(&dataset.tokenizer, texts.iter().map(String::as_str));
    println!("word types:      {}", freq.types());
    println!("head-100 mass:   {:.1}%", freq.head_coverage(100) * 100.0);
    println!("tokenizer UNK:   {:.2}%", cov.unk_rate() * 100.0);
    println!("whole words:     {:.1}%", cov.whole_word_rate() * 100.0);
    println!("fertility:       {:.2} pieces/word", cov.fertility());
    Ok(())
}
