//! Contextual encoders: a scaled-down transformer ("MiniBert") standing in
//! for BERT_base, plus the BERTSUM variant with interval segment embeddings
//! [21]. A context-independent static embedding plays the role of GloVe in
//! the baseline grid. See DESIGN.md §2 for the substitution argument.

use crate::layers::{Dense, Embedding};
use rand::rngs::StdRng;
use wb_tensor::{Graph, Initializer, ParamId, Params, Var};

/// Which embedding method a model uses — mirrors the baseline axis
/// `GloVe→* / BERT→* / BERTSUM→*` of §IV-A6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum EmbedderKind {
    /// Context-independent lookup table (GloVe stand-in).
    Static,
    /// Contextual transformer encoder (BERT stand-in).
    Bert,
    /// Contextual encoder with interval segment embeddings and `[CLS]`
    /// sentence pooling (BERTSUM stand-in).
    BertSum,
}

impl EmbedderKind {
    /// Display name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            EmbedderKind::Static => "GloVe",
            EmbedderKind::Bert => "BERT",
            EmbedderKind::BertSum => "BERTSUM",
        }
    }
}

/// MiniBert hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BertConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model width.
    pub dim: usize,
    /// Number of transformer blocks.
    pub layers: usize,
    /// Maximum sequence length (position table size).
    pub max_len: usize,
    /// Dropout rate inside blocks.
    pub dropout: f32,
}

impl BertConfig {
    /// A small CPU-friendly configuration.
    pub fn small(vocab: usize, dim: usize, max_len: usize) -> Self {
        BertConfig { vocab, dim, layers: 2, max_len, dropout: 0.1 }
    }
}

struct Block {
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
    wo: ParamId,
    norm1: ParamId,
    ffn1: Dense,
    ffn2: Dense,
    norm2: ParamId,
}

/// The contextual encoder.
pub struct MiniBert {
    cfg: BertConfig,
    tok: Embedding,
    pos: ParamId,
    /// Interval segment embeddings (`[2, dim]`): present only for BERTSUM.
    seg: Option<ParamId>,
    blocks: Vec<Block>,
}

impl MiniBert {
    /// Builds the encoder; `bertsum` enables interval segment embeddings.
    pub fn new(
        params: &mut Params,
        rng: &mut StdRng,
        name: &str,
        cfg: BertConfig,
        bertsum: bool,
    ) -> Self {
        let tok = Embedding::new(params, rng, &format!("{name}.tok"), cfg.vocab, cfg.dim);
        let pos = params.add_init(
            &format!("{name}.pos"),
            &[cfg.max_len, cfg.dim],
            Initializer::Uniform(0.05),
            rng,
        );
        let seg = bertsum.then(|| {
            params.add_init(
                &format!("{name}.seg"),
                &[2, cfg.dim],
                Initializer::Uniform(0.05),
                rng,
            )
        });
        let blocks = (0..cfg.layers)
            .map(|l| {
                let p = format!("{name}.block{l}");
                Block {
                    wq: params.add_init(
                        &format!("{p}.wq"),
                        &[cfg.dim, cfg.dim],
                        Initializer::XavierUniform,
                        rng,
                    ),
                    wk: params.add_init(
                        &format!("{p}.wk"),
                        &[cfg.dim, cfg.dim],
                        Initializer::XavierUniform,
                        rng,
                    ),
                    wv: params.add_init(
                        &format!("{p}.wv"),
                        &[cfg.dim, cfg.dim],
                        Initializer::XavierUniform,
                        rng,
                    ),
                    wo: params.add_init(
                        &format!("{p}.wo"),
                        &[cfg.dim, cfg.dim],
                        Initializer::XavierUniform,
                        rng,
                    ),
                    norm1: params.add_init(
                        &format!("{p}.norm1"),
                        &[cfg.dim],
                        Initializer::Ones,
                        rng,
                    ),
                    ffn1: Dense::new(params, rng, &format!("{p}.ffn1"), cfg.dim, cfg.dim * 2),
                    ffn2: Dense::new(params, rng, &format!("{p}.ffn2"), cfg.dim * 2, cfg.dim),
                    norm2: params.add_init(
                        &format!("{p}.norm2"),
                        &[cfg.dim],
                        Initializer::Ones,
                        rng,
                    ),
                }
            })
            .collect();
        MiniBert { cfg, tok, pos, seg, blocks }
    }

    /// Encoder width.
    pub fn dim(&self) -> usize {
        self.cfg.dim
    }

    /// Encodes a token sequence to contextual representations `[T, dim]`.
    /// `sentence_of[t]` drives the interval segment embedding (ignored for
    /// plain BERT). Sequences longer than `max_len` are processed in
    /// `max_len`-sized sub-documents, mirroring §IV-A3.
    pub fn forward(&self, g: &mut Graph, tokens: &[u32], sentence_of: &[usize]) -> Var {
        assert!(!tokens.is_empty(), "cannot encode an empty sequence");
        let chunks: Vec<Var> = tokens
            .chunks(self.cfg.max_len)
            .zip(sentence_of.chunks(self.cfg.max_len))
            .map(|(toks, sents)| self.forward_chunk(g, toks, sents))
            .collect();
        if chunks.len() == 1 {
            chunks[0]
        } else {
            g.concat_rows(&chunks)
        }
    }

    fn forward_chunk(&self, g: &mut Graph, tokens: &[u32], sentence_of: &[usize]) -> Var {
        let t_len = tokens.len();
        let mut x = self.tok.forward(g, tokens);
        let pos = g.param(self.pos);
        let positions: Vec<usize> = (0..t_len).collect();
        let pos_rows = g.gather_rows(pos, &positions);
        x = g.add(x, pos_rows);
        if let Some(seg) = self.seg {
            let seg_table = g.param(seg);
            let seg_idx: Vec<usize> =
                sentence_of.iter().map(|&s| if s == usize::MAX { 0 } else { s % 2 }).collect();
            let seg_rows = g.gather_rows(seg_table, &seg_idx);
            x = g.add(x, seg_rows);
        }
        let scale = 1.0 / (self.cfg.dim as f32).sqrt();
        for b in &self.blocks {
            // Self-attention.
            let (wq, wk, wv, wo) = (g.param(b.wq), g.param(b.wk), g.param(b.wv), g.param(b.wo));
            let q = g.matmul(x, wq);
            let k = g.matmul(x, wk);
            let v = g.matmul(x, wv);
            let att = g.softmax_matmul_nt(q, k, scale, 1.0);
            let att = g.dropout(att, self.cfg.dropout);
            let ctx = g.matmul(att, v);
            let ctx = g.matmul(ctx, wo);
            let res = g.add(x, ctx);
            let n1 = g.param(b.norm1);
            x = g.rms_norm_rows(res, n1);
            // Feed-forward.
            let h = b.ffn1.forward(g, x);
            let h = g.relu(h);
            let h = g.dropout(h, self.cfg.dropout);
            let h = b.ffn2.forward(g, h);
            let res2 = g.add(x, h);
            let n2 = g.param(b.norm2);
            x = g.rms_norm_rows(res2, n2);
        }
        x
    }
}

/// An embedder: static table or contextual MiniBert, selected by
/// [`EmbedderKind`].
pub enum Embedder {
    /// Context-independent lookup.
    Static(Embedding),
    /// Contextual encoder.
    Contextual(MiniBert),
}

impl Embedder {
    /// Builds the embedder named by `kind`.
    pub fn new(
        params: &mut Params,
        rng: &mut StdRng,
        name: &str,
        kind: EmbedderKind,
        cfg: BertConfig,
    ) -> Self {
        match kind {
            EmbedderKind::Static => {
                Embedder::Static(Embedding::new(params, rng, name, cfg.vocab, cfg.dim))
            }
            EmbedderKind::Bert => {
                Embedder::Contextual(MiniBert::new(params, rng, name, cfg, false))
            }
            EmbedderKind::BertSum => {
                Embedder::Contextual(MiniBert::new(params, rng, name, cfg, true))
            }
        }
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        match self {
            Embedder::Static(e) => e.dim,
            Embedder::Contextual(b) => b.dim(),
        }
    }

    /// Embeds a token sequence to `[T, dim]`.
    pub fn forward(&self, g: &mut Graph, tokens: &[u32], sentence_of: &[usize]) -> Var {
        match self {
            Embedder::Static(e) => e.forward(g, tokens),
            Embedder::Contextual(b) => b.forward(g, tokens, sentence_of),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mk(kind: EmbedderKind) -> (Params, Embedder) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let e = Embedder::new(&mut params, &mut rng, "e", kind, BertConfig::small(50, 8, 16));
        (params, e)
    }

    #[test]
    fn static_embedding_is_context_independent() {
        let (params, e) = mk(EmbedderKind::Static);
        let mut g = Graph::new(&params, false, 0);
        let a = e.forward(&mut g, &[3, 4], &[0, 0]);
        let b = e.forward(&mut g, &[3, 9], &[0, 0]);
        assert_eq!(g.value(a).row(0), g.value(b).row(0));
    }

    #[test]
    fn bert_embedding_is_context_dependent() {
        let (params, e) = mk(EmbedderKind::Bert);
        let mut g = Graph::new(&params, false, 0);
        let a = e.forward(&mut g, &[3, 4], &[0, 0]);
        let b = e.forward(&mut g, &[3, 9], &[0, 0]);
        assert_ne!(g.value(a).row(0), g.value(b).row(0));
    }

    #[test]
    fn bertsum_segments_distinguish_sentences() {
        let (params, e) = mk(EmbedderKind::BertSum);
        let mut g = Graph::new(&params, false, 0);
        // Same tokens, different sentence parity: the interval segment
        // embedding must change the representation (self-attention spreads
        // the difference to every position).
        let a = e.forward(&mut g, &[3, 3], &[0, 0]);
        let b = e.forward(&mut g, &[3, 3], &[0, 1]);
        assert_ne!(g.value(a).row(1), g.value(b).row(1));
    }

    #[test]
    fn long_sequences_split_into_subdocuments() {
        let (params, e) = mk(EmbedderKind::BertSum);
        let mut g = Graph::new(&params, false, 0);
        let tokens: Vec<u32> = (0..40).map(|i| (i % 50) as u32).collect();
        let sents: Vec<usize> = (0..40).map(|i| i / 5).collect();
        let y = e.forward(&mut g, &tokens, &sents);
        assert_eq!(g.value(y).shape(), &[40, 8]);
    }

    #[test]
    fn encoder_output_shape_and_gradients() {
        let (params, e) = mk(EmbedderKind::Bert);
        let grads = {
            let mut g = Graph::new(&params, true, 1);
            let y = e.forward(&mut g, &[1, 2, 3, 4, 5], &[0, 0, 1, 1, 1]);
            assert_eq!(g.value(y).shape(), &[5, 8]);
            let loss = g.mean_all(y);
            g.backward(loss)
        };
        assert!(grads.iter().count() > 10, "gradients should reach transformer weights");
    }
}
