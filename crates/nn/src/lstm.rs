//! LSTM and Bi-LSTM layers [22].
//!
//! The input-to-hidden products for a full sequence are computed as four
//! `[T, h]` matmuls up front; the recurrent loop then only does the four
//! `[1, h] @ [h, h]` hidden-to-hidden products per step.

use rand::rngs::StdRng;
use wb_tensor::{Graph, Initializer, ParamId, Params, Tensor, Var};

/// Gate order: input, forget, cell candidate, output.
const GATES: [&str; 4] = ["i", "f", "g", "o"];

/// A single-direction LSTM.
#[derive(Debug, Clone)]
pub struct Lstm {
    wx: [ParamId; 4],
    wh: [ParamId; 4],
    b: [ParamId; 4],
    /// Hidden width.
    pub hidden: usize,
}

/// Recurrent state `(h, c)`, each `[1, hidden]`.
#[derive(Debug, Clone, Copy)]
pub struct LstmState {
    /// Hidden vector.
    pub h: Var,
    /// Cell vector.
    pub c: Var,
}

impl Lstm {
    /// Registers parameters under `name.{wx,wh,b}.{i,f,g,o}`.
    pub fn new(
        params: &mut Params,
        rng: &mut StdRng,
        name: &str,
        input: usize,
        hidden: usize,
    ) -> Self {
        let mk = |params: &mut Params, rng: &mut StdRng, part: &str, shape: &[usize], init| {
            [0, 1, 2, 3].map(|i| {
                params.add_init(&format!("{name}.{part}.{}", GATES[i]), shape, init, rng)
            })
        };
        let wx = mk(params, rng, "wx", &[input, hidden], Initializer::XavierUniform);
        let wh = mk(params, rng, "wh", &[hidden, hidden], Initializer::XavierUniform);
        let b = mk(params, rng, "b", &[hidden], Initializer::Zeros);
        Lstm { wx, wh, b, hidden }
    }

    /// Zero initial state.
    pub fn zero_state(&self, g: &mut Graph) -> LstmState {
        LstmState {
            h: g.input(Tensor::zeros(&[1, self.hidden])),
            c: g.input(Tensor::zeros(&[1, self.hidden])),
        }
    }

    /// One step given the four precomputed input projections `xg[k]`
    /// (each `[1, hidden]`, bias already added).
    fn step_precomputed(&self, g: &mut Graph, xg: [Var; 4], state: LstmState) -> LstmState {
        let mut gates = [state.h; 4];
        for k in 0..4 {
            let wh = g.param(self.wh[k]);
            let hh = g.matmul(state.h, wh);
            gates[k] = g.add(xg[k], hh);
        }
        let i = g.sigmoid(gates[0]);
        let f = g.sigmoid(gates[1]);
        let cand = g.tanh(gates[2]);
        let o = g.sigmoid(gates[3]);
        let fc = g.mul(f, state.c);
        let ig = g.mul(i, cand);
        let c = g.add(fc, ig);
        let tc = g.tanh(c);
        let h = g.mul(o, tc);
        LstmState { h, c }
    }

    /// One step from a raw input row `x: [1, input]`.
    pub fn step(&self, g: &mut Graph, x: Var, state: LstmState) -> LstmState {
        let xg = [0, 1, 2, 3].map(|k| {
            let wx = g.param(self.wx[k]);
            let b = g.param(self.b[k]);
            let xw = g.matmul(x, wx);
            g.add_bias(xw, b)
        });
        self.step_precomputed(g, xg, state)
    }

    /// Runs over a `[T, input]` sequence, returning `[T, hidden]` outputs.
    /// With `reverse`, processes right-to-left but returns outputs in the
    /// original order.
    pub fn forward(&self, g: &mut Graph, x: Var, reverse: bool) -> Var {
        let t_len = g.value(x).rows();
        assert!(t_len > 0, "LSTM over empty sequence");
        // Precompute X·Wx + b for each gate: [T, hidden].
        let pre: [Var; 4] = [0, 1, 2, 3].map(|k| {
            let wx = g.param(self.wx[k]);
            let b = g.param(self.b[k]);
            let xw = g.matmul(x, wx);
            g.add_bias(xw, b)
        });
        let mut state = self.zero_state(g);
        let mut outputs: Vec<Var> = Vec::with_capacity(t_len);
        for step in 0..t_len {
            let t = if reverse { t_len - 1 - step } else { step };
            let xg = pre.map(|p| g.slice_rows(p, t, t + 1));
            state = self.step_precomputed(g, xg, state);
            outputs.push(state.h);
        }
        if reverse {
            outputs.reverse();
        }
        g.concat_rows(&outputs)
    }
}

/// A bidirectional LSTM: forward and backward passes concatenated on the
/// feature axis, producing `[T, 2·hidden]`.
#[derive(Debug, Clone)]
pub struct BiLstm {
    fwd: Lstm,
    bwd: Lstm,
    /// Per-direction hidden width (output width is `2 × hidden`).
    pub hidden: usize,
}

impl BiLstm {
    /// Registers parameters under `name.fwd.*` / `name.bwd.*`.
    pub fn new(
        params: &mut Params,
        rng: &mut StdRng,
        name: &str,
        input: usize,
        hidden: usize,
    ) -> Self {
        BiLstm {
            fwd: Lstm::new(params, rng, &format!("{name}.fwd"), input, hidden),
            bwd: Lstm::new(params, rng, &format!("{name}.bwd"), input, hidden),
            hidden,
        }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        2 * self.hidden
    }

    /// Runs both directions over `[T, input]`, producing `[T, 2·hidden]`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let f = self.fwd.forward(g, x, false);
        let b = self.bwd.forward(g, x, true);
        g.concat_cols(&[f, b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wb_tensor::{Adam, AdamConfig};

    #[test]
    fn lstm_output_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, &mut rng, "l", 3, 5);
        let mut g = Graph::new(&params, false, 0);
        let x = g.input(Tensor::from_vec(&[4, 3], (0..12).map(|i| i as f32 * 0.1).collect()));
        let y = lstm.forward(&mut g, x, false);
        assert_eq!(g.value(y).shape(), &[4, 5]);
    }

    #[test]
    fn bilstm_concatenates_directions() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let bi = BiLstm::new(&mut params, &mut rng, "b", 3, 4);
        let mut g = Graph::new(&params, false, 0);
        let x = g.input(Tensor::from_vec(&[5, 3], (0..15).map(|i| i as f32 * 0.1).collect()));
        let y = bi.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[5, 8]);
    }

    #[test]
    fn reverse_changes_early_outputs() {
        // A reversed pass has seen the whole future at position 0, so its
        // first output must differ from the forward pass's first output.
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, &mut rng, "l", 2, 3);
        let mut g = Graph::new(&params, false, 0);
        let x = g.input(Tensor::from_vec(&[4, 2], vec![1., 0., 0., 1., 1., 1., 0., 0.]));
        let f = lstm.forward(&mut g, x, false);
        let r = lstm.forward(&mut g, x, true);
        assert_ne!(g.value(f).row(0), g.value(r).row(0));
        // Both still ordered by original positions.
        assert_eq!(g.value(f).rows(), 4);
        assert_eq!(g.value(r).rows(), 4);
    }

    #[test]
    fn lstm_gradients_flow_to_all_parameters() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, &mut rng, "l", 2, 3);
        let grads = {
            let mut g = Graph::new(&params, true, 0);
            let x = g.input(Tensor::from_vec(&[3, 2], vec![0.3; 6]));
            let y = lstm.forward(&mut g, x, false);
            let loss = g.mean_all(y);
            g.backward(loss)
        };
        let with_grad = grads.iter().count();
        assert_eq!(with_grad, 12, "all 12 LSTM parameter tensors should receive gradients");
    }

    /// An LSTM must be able to learn a simple order-sensitive task that a
    /// bag-of-tokens model cannot: classify whether the first token of the
    /// sequence is `1`.
    #[test]
    fn lstm_learns_first_token_detection() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let lstm = Lstm::new(&mut params, &mut rng, "l", 2, 8);
        let head = crate::layers::Dense::new(&mut params, &mut rng, "head", 8, 2);
        let mut opt = Adam::new(&params, AdamConfig::scaled(0.02));
        // Sequences of one-hot tokens; label = first token id.
        let data: Vec<(Vec<f32>, usize)> = (0..16)
            .map(|i| {
                let first = i % 2;
                let mut seq = vec![0.0; 8];
                seq[first] = 1.0;
                for t in 1..4 {
                    seq[t * 2 + (i / 2 + t) % 2] = 1.0;
                }
                (seq, first)
            })
            .collect();
        let mut correct = 0;
        for epoch in 0..60 {
            let mut grads = wb_tensor::Gradients::zeros(&params);
            correct = 0;
            for (seq, label) in &data {
                let g2 = {
                    let mut g = Graph::new(&params, true, 0);
                    let x = g.input(Tensor::from_vec(&[4, 2], seq.clone()));
                    let y = lstm.forward(&mut g, x, false);
                    let last = g.slice_rows(y, 3, 4);
                    let logits = head.forward(&mut g, last);
                    if g.value(logits).argmax_rows()[0] == *label {
                        correct += 1;
                    }
                    let loss = g.cross_entropy_rows(logits, &[*label]);
                    g.backward(loss)
                };
                grads.merge(g2);
            }
            grads.scale(1.0 / data.len() as f32);
            opt.step(&mut params, grads);
            let _ = epoch;
        }
        assert!(correct >= 14, "LSTM failed to learn order: {correct}/16");
    }
}
