//! Basic trainable layers: dense projections and embedding tables.

use rand::rngs::StdRng;
use wb_tensor::{Graph, Initializer, ParamId, Params, Var};

/// A dense (affine) layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Dense {
    w: ParamId,
    b: ParamId,
    /// Output width.
    pub out_dim: usize,
}

impl Dense {
    /// Registers parameters under `name.w` / `name.b`.
    pub fn new(
        params: &mut Params,
        rng: &mut StdRng,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = params.add_init(
            &format!("{name}.w"),
            &[in_dim, out_dim],
            Initializer::XavierUniform,
            rng,
        );
        let b = params.add_init(&format!("{name}.b"), &[out_dim], Initializer::Zeros, rng);
        Dense { w, b, out_dim }
    }

    /// Applies the layer to `[n, in_dim]`, producing `[n, out_dim]`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        let w = g.param(self.w);
        let b = g.param(self.b);
        let xw = g.matmul(x, w);
        g.add_bias(xw, b)
    }

    /// Applies the layer followed by tanh.
    pub fn forward_tanh(&self, g: &mut Graph, x: Var) -> Var {
        let y = self.forward(g, x);
        g.tanh(y)
    }
}

/// A token embedding table.
#[derive(Debug, Clone)]
pub struct Embedding {
    table: ParamId,
    /// Embedding width.
    pub dim: usize,
}

impl Embedding {
    /// Registers a `[vocab, dim]` table under `name.table`.
    pub fn new(
        params: &mut Params,
        rng: &mut StdRng,
        name: &str,
        vocab: usize,
        dim: usize,
    ) -> Self {
        let table = params.add_init(
            &format!("{name}.table"),
            &[vocab, dim],
            Initializer::Uniform(0.08),
            rng,
        );
        Embedding { table, dim }
    }

    /// Looks up ids, producing `[ids.len(), dim]`.
    pub fn forward(&self, g: &mut Graph, ids: &[u32]) -> Var {
        let table = g.param(self.table);
        let idx: Vec<usize> = ids.iter().map(|&i| i as usize).collect();
        g.gather_rows(table, &idx)
    }
}

/// Bilinear attention `softmax(h · W · rᵀ)` — the paper's attention form
/// (eqs. 2–3 and 14–15).
#[derive(Debug, Clone)]
pub struct BilinearAttention {
    w: ParamId,
}

impl BilinearAttention {
    /// Registers a `[d_left, d_right]` bilinear form under `name.w`.
    pub fn new(
        params: &mut Params,
        rng: &mut StdRng,
        name: &str,
        d_left: usize,
        d_right: usize,
    ) -> Self {
        let w = params.add_init(
            &format!("{name}.w"),
            &[d_left, d_right],
            Initializer::XavierUniform,
            rng,
        );
        BilinearAttention { w }
    }

    /// Attention distribution of shape `[n, r]` from `h: [n, d_left]` over
    /// `r_mat: [r, d_right]`.
    pub fn forward(&self, g: &mut Graph, h: Var, r_mat: Var) -> Var {
        let w = g.param(self.w);
        let hw = g.matmul(h, w);
        g.softmax_matmul_nt(hw, r_mat, 1.0, 1.0)
    }

    /// Raw (pre-softmax) scores — used when a caller applies temperature.
    pub fn scores(&self, g: &mut Graph, h: Var, r_mat: Var) -> Var {
        let w = g.param(self.w);
        let hw = g.matmul(h, w);
        g.matmul_nt(hw, r_mat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wb_tensor::Tensor;

    #[test]
    fn dense_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let d = Dense::new(&mut params, &mut rng, "d", 4, 3);
        let mut g = Graph::new(&params, false, 0);
        let x = g.input(Tensor::zeros(&[2, 4]));
        let y = d.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[2, 3]);
    }

    #[test]
    fn embedding_lookup_shapes_and_values() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let e = Embedding::new(&mut params, &mut rng, "e", 10, 5);
        let mut g = Graph::new(&params, false, 0);
        let v = e.forward(&mut g, &[1, 1, 7]);
        assert_eq!(g.value(v).shape(), &[3, 5]);
        assert_eq!(g.value(v).row(0), g.value(v).row(1));
        assert_ne!(g.value(v).row(0), g.value(v).row(2));
    }

    #[test]
    fn attention_rows_are_distributions() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let att = BilinearAttention::new(&mut params, &mut rng, "a", 4, 6);
        let mut g = Graph::new(&params, false, 0);
        let h = g.input(Tensor::from_vec(&[3, 4], (0..12).map(|i| i as f32 * 0.1).collect()));
        let r = g.input(Tensor::from_vec(&[5, 6], (0..30).map(|i| i as f32 * 0.05).collect()));
        let a = att.forward(&mut g, h, r);
        assert_eq!(g.value(a).shape(), &[3, 5]);
        for i in 0..3 {
            let s: f32 = g.value(a).row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn dense_is_trainable_end_to_end() {
        // One dense layer should fit y = x·W exactly on a tiny problem.
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let d = Dense::new(&mut params, &mut rng, "d", 2, 2);
        let mut opt = wb_tensor::Adam::new(&params, wb_tensor::AdamConfig::scaled(0.05));
        let x = Tensor::from_vec(&[4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let targets = [0usize, 1, 1, 0]; // XOR is not linearly separable…
        let x2 = x.clone();
        let mut last = f32::MAX;
        for _ in 0..100 {
            let grads = {
                let mut g = Graph::new(&params, true, 0);
                let xv = g.input(x2.clone());
                let h = d.forward_tanh(&mut g, xv);
                let logits = d.forward(&mut g, h); // reuse layer: 2→2
                let loss = g.cross_entropy_rows(logits, &targets);
                last = g.value(loss).item();
                g.backward(loss)
            };
            opt.step(&mut params, grads);
        }
        // …but the loss must still decrease from the initial ~ln 2.
        assert!(last < 0.69, "loss did not decrease: {last}");
    }
}
