#![warn(missing_docs)]
//! # wb-nn
//!
//! Neural building blocks for the Webpage Briefing models, implemented on
//! top of the `wb-tensor` autograd engine:
//!
//! * [`Dense`], [`Embedding`], [`BilinearAttention`] — basic layers,
//! * [`Lstm`] / [`BiLstm`] — recurrent encoders [22],
//! * [`MiniBert`] / [`Embedder`] — the contextual encoder standing in for
//!   BERT/BERTSUM, plus the GloVe-like static table (baseline axis of
//!   §IV-A6),
//! * [`Decoder`] — the attention LSTM decoder with teacher forcing, greedy
//!   and beam-search inference.
//!
//! ```
//! use wb_nn::{BiLstm, Dense};
//! use wb_tensor::{Graph, Params, Tensor};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut params = Params::new();
//! let encoder = BiLstm::new(&mut params, &mut rng, "enc", 8, 6);
//! let head = Dense::new(&mut params, &mut rng, "head", 12, 3);
//!
//! let mut g = Graph::new(&params, false, 0);
//! let x = g.input(Tensor::zeros(&[5, 8]));      // 5 tokens, 8 features
//! let h = encoder.forward(&mut g, x);           // [5, 12]
//! let logits = head.forward(&mut g, h);         // [5, 3] BIO logits
//! assert_eq!(g.value(logits).shape(), &[5, 3]);
//! ```

mod bert;
mod layers;
mod lstm;
mod seq2seq;

pub use bert::{BertConfig, Embedder, EmbedderKind, MiniBert};
pub use layers::{BilinearAttention, Dense, Embedding};
pub use lstm::{BiLstm, Lstm, LstmState};
pub use seq2seq::{zero_memory, Decoder};
