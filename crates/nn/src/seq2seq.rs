//! Encoder–decoder topic generation [23]: a Bi-LSTM encoder over sentence
//! representations and an LSTM decoder with dot-product attention, plus
//! greedy and beam-search inference (§IV-A5 uses beam search).

use crate::layers::Dense;
use crate::lstm::{Lstm, LstmState};
use rand::rngs::StdRng;
use wb_tensor::{Graph, Params, Tensor, Var};
use wb_text::{BOS, EOS};

/// The decoder half of a seq2seq model. The encoder lives with the caller
/// (different models encode differently); the decoder consumes any
/// `[m, enc_dim]` memory.
pub struct Decoder {
    /// Decoder token embedding (over the output vocabulary).
    emb: crate::layers::Embedding,
    /// The recurrent cell; input = token embedding ⊕ attention context.
    cell: Lstm,
    /// Projects `[h ⊕ context]` to vocabulary logits.
    out: Dense,
    /// Projects the decoder state to the memory width for attention queries.
    query: Dense,
    enc_dim: usize,
    vocab: usize,
}

impl Decoder {
    /// Builds a decoder: `hidden`-wide LSTM over `emb_dim` token embeddings
    /// with attention over `enc_dim` memory, producing `vocab` logits.
    pub fn new(
        params: &mut Params,
        rng: &mut StdRng,
        name: &str,
        vocab: usize,
        emb_dim: usize,
        enc_dim: usize,
        hidden: usize,
    ) -> Self {
        Decoder {
            emb: crate::layers::Embedding::new(
                params,
                rng,
                &format!("{name}.emb"),
                vocab,
                emb_dim,
            ),
            cell: Lstm::new(params, rng, &format!("{name}.cell"), emb_dim + enc_dim, hidden),
            out: Dense::new(params, rng, &format!("{name}.out"), hidden + enc_dim, vocab),
            query: Dense::new(params, rng, &format!("{name}.query"), hidden, enc_dim),
            enc_dim,
            vocab,
        }
    }

    /// Output vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Dot-product attention context `[1, enc_dim]` of state `h` over
    /// `memory: [m, enc_dim]`. When the widths differ the caller must have
    /// projected them; we assert instead of silently broadcasting.
    fn context(&self, g: &mut Graph, h: Var, memory: Var) -> Var {
        assert_eq!(g.value(memory).cols(), self.enc_dim, "memory width mismatch");
        let q = self.query.forward(g, h); // [1, enc_dim]
        let att = g.softmax_matmul_nt(q, memory, 1.0, 1.0); // [1, m]
        g.matmul(att, memory)
    }

    /// One decoding step: embeds `token`, attends over `memory`, advances
    /// the state, and returns `(logits [1, vocab], new_state)`.
    pub fn step(
        &self,
        g: &mut Graph,
        token: u32,
        state: LstmState,
        memory: Var,
    ) -> (Var, LstmState) {
        let e = self.emb.forward(g, &[token]);
        let ctx = self.context(g, state.h, memory);
        let x = g.concat_cols(&[e, ctx]);
        let next = self.cell.step(g, x, state);
        let ctx2 = self.context(g, next.h, memory);
        let feat = g.concat_cols(&[next.h, ctx2]);
        let logits = self.out.forward(g, feat);
        (logits, next)
    }

    /// Zero initial state.
    pub fn zero_state(&self, g: &mut Graph) -> LstmState {
        self.cell.zero_state(g)
    }

    /// Teacher-forced decoding: feeds `[BOS] t₁ … tₙ₋₁` and returns the
    /// logits matrix `[n, vocab]` aligned with targets `t₁ … tₙ`.
    pub fn teacher_forced(&self, g: &mut Graph, targets: &[u32], memory: Var) -> Var {
        assert!(!targets.is_empty(), "empty target sequence");
        let mut state = self.zero_state(g);
        let mut logits = Vec::with_capacity(targets.len());
        let mut prev = BOS;
        for &t in targets {
            let (l, next) = self.step(g, prev, state, memory);
            logits.push(l);
            state = next;
            prev = t;
        }
        g.concat_rows(&logits)
    }

    /// Teacher-forced decoding that also returns the decoder hidden states
    /// `[n, hidden]` — Joint-WB's `Q` (the hidden topic representations).
    pub fn teacher_forced_with_states(
        &self,
        g: &mut Graph,
        targets: &[u32],
        memory: Var,
    ) -> (Var, Var) {
        assert!(!targets.is_empty(), "empty target sequence");
        let mut state = self.zero_state(g);
        let mut logits = Vec::with_capacity(targets.len());
        let mut hiddens = Vec::with_capacity(targets.len());
        let mut prev = BOS;
        for &t in targets {
            let (l, next) = self.step(g, prev, state, memory);
            logits.push(l);
            hiddens.push(next.h);
            state = next;
            prev = t;
        }
        (g.concat_rows(&logits), g.concat_rows(&hiddens))
    }

    /// Greedy decoding that also returns the decoder hidden states
    /// `[steps, hidden]` (at least one step is always taken).
    pub fn greedy_with_states(
        &self,
        g: &mut Graph,
        memory: Var,
        max_len: usize,
    ) -> (Vec<u32>, Var) {
        assert!(max_len >= 1, "max_len must be positive");
        let mut state = self.zero_state(g);
        let mut out = Vec::new();
        let mut hiddens = Vec::new();
        let mut prev = BOS;
        for _ in 0..max_len {
            let (logits, next) = self.step(g, prev, state, memory);
            hiddens.push(next.h);
            let id = g.value(logits).argmax() as u32;
            state = next;
            if id == EOS {
                break;
            }
            out.push(id);
            prev = id;
        }
        (out, g.concat_rows(&hiddens))
    }

    /// Greedy decoding until `[EOS]` or `max_len`.
    pub fn greedy(&self, g: &mut Graph, memory: Var, max_len: usize) -> Vec<u32> {
        let mut state = self.zero_state(g);
        let mut out = Vec::new();
        let mut prev = BOS;
        for _ in 0..max_len {
            let (logits, next) = self.step(g, prev, state, memory);
            let id = g.value(logits).argmax() as u32;
            if id == EOS {
                break;
            }
            out.push(id);
            state = next;
            prev = id;
        }
        out
    }

    /// Beam-search decoding (§IV-A5: "we use beam search in the inference
    /// process"); returns the best hypothesis without `[EOS]`.
    pub fn beam_search(
        &self,
        g: &mut Graph,
        memory: Var,
        beam: usize,
        max_len: usize,
    ) -> Vec<u32> {
        assert!(beam >= 1, "beam width must be positive");
        struct Hyp {
            tokens: Vec<u32>,
            state: LstmState,
            prev: u32,
            score: f32,
            done: bool,
        }
        let init = self.zero_state(g);
        let mut hyps =
            vec![Hyp { tokens: Vec::new(), state: init, prev: BOS, score: 0.0, done: false }];
        for _ in 0..max_len {
            if hyps.iter().all(|h| h.done) {
                break;
            }
            let mut candidates: Vec<Hyp> = Vec::new();
            for h in &hyps {
                if h.done {
                    candidates.push(Hyp {
                        tokens: h.tokens.clone(),
                        state: h.state,
                        prev: h.prev,
                        score: h.score,
                        done: true,
                    });
                    continue;
                }
                let (logits, next) = self.step(g, h.prev, h.state, memory);
                let logp = log_softmax_row(g.value(logits).data());
                // Keep the top `beam` expansions of this hypothesis.
                let mut idx: Vec<usize> = (0..logp.len()).collect();
                idx.sort_by(|&a, &b| {
                    logp[b].partial_cmp(&logp[a]).unwrap_or(std::cmp::Ordering::Equal)
                });
                for &token in idx.iter().take(beam) {
                    let token = token as u32;
                    let mut tokens = h.tokens.clone();
                    let done = token == EOS;
                    if !done {
                        tokens.push(token);
                    }
                    candidates.push(Hyp {
                        tokens,
                        state: next,
                        prev: token,
                        score: h.score + logp[token as usize],
                        done,
                    });
                }
            }
            candidates.sort_by(|a, b| {
                b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal)
            });
            candidates.truncate(beam);
            hyps = candidates;
        }
        hyps.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        hyps.into_iter().next().map(|h| h.tokens).unwrap_or_default()
    }
}

fn log_softmax_row(row: &[f32]) -> Vec<f32> {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
    row.iter().map(|&x| x - max - log_sum).collect()
}

/// Convenience for callers: a zero memory matrix for decoders used without
/// an encoder (unit tests).
pub fn zero_memory(g: &mut Graph, rows: usize, dim: usize) -> Var {
    g.input(Tensor::zeros(&[rows, dim]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wb_tensor::{Adam, AdamConfig, Gradients};

    fn decoder(vocab: usize) -> (Params, Decoder) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let d = Decoder::new(&mut params, &mut rng, "dec", vocab, 8, 8, 8);
        (params, d)
    }

    #[test]
    fn teacher_forced_shapes() {
        let (params, d) = decoder(12);
        let mut g = Graph::new(&params, false, 0);
        let mem = zero_memory(&mut g, 3, 8);
        let logits = d.teacher_forced(&mut g, &[7, 8, EOS], mem);
        assert_eq!(g.value(logits).shape(), &[3, 12]);
    }

    #[test]
    fn greedy_stops_at_max_len() {
        let (params, d) = decoder(12);
        let mut g = Graph::new(&params, false, 0);
        let mem = zero_memory(&mut g, 3, 8);
        let out = d.greedy(&mut g, mem, 5);
        assert!(out.len() <= 5);
    }

    #[test]
    fn beam_equals_greedy_at_width_one() {
        let (params, d) = decoder(12);
        let mut g = Graph::new(&params, false, 0);
        let mem = zero_memory(&mut g, 3, 8);
        let greedy = d.greedy(&mut g, mem, 4);
        let beam = d.beam_search(&mut g, mem, 1, 4);
        assert_eq!(greedy, beam);
    }

    /// The decoder must be able to memorise a fixed output sequence — the
    /// degenerate seq2seq task.
    #[test]
    fn decoder_learns_fixed_sequence() {
        let (mut params, d) = decoder(12);
        let mut opt = Adam::new(&params, AdamConfig::scaled(0.05));
        let target = [7u32, 9, 8, EOS];
        for _ in 0..120 {
            let grads: Gradients = {
                let mut g = Graph::new(&params, true, 0);
                let mem = zero_memory(&mut g, 2, 8);
                let logits = d.teacher_forced(&mut g, &target, mem);
                let t: Vec<usize> = target.iter().map(|&t| t as usize).collect();
                let loss = g.cross_entropy_rows(logits, &t);
                g.backward(loss)
            };
            opt.step(&mut params, grads);
        }
        let mut g = Graph::new(&params, false, 0);
        let mem = zero_memory(&mut g, 2, 8);
        assert_eq!(d.greedy(&mut g, mem, 6), vec![7, 9, 8]);
        assert_eq!(d.beam_search(&mut g, mem, 4, 6), vec![7, 9, 8]);
    }

    #[test]
    fn beam_is_deterministic_and_bounded() {
        let (params, d) = decoder(12);
        let mut g = Graph::new(&params, false, 0);
        let mem = zero_memory(&mut g, 3, 8);
        let a = d.beam_search(&mut g, mem, 4, 5);
        let b = d.beam_search(&mut g, mem, 4, 5);
        assert_eq!(a, b);
        assert!(a.len() <= 5);
        assert!(!a.contains(&EOS));
    }

    #[test]
    fn teacher_forced_with_states_aligns() {
        let (params, d) = decoder(12);
        let mut g = Graph::new(&params, false, 0);
        let mem = zero_memory(&mut g, 2, 8);
        let (logits, states) = d.teacher_forced_with_states(&mut g, &[7, 8, EOS], mem);
        assert_eq!(g.value(logits).rows(), 3);
        assert_eq!(g.value(states).rows(), 3);
        assert_eq!(g.value(states).cols(), 8);
        // States differ across steps (the LSTM actually advances).
        assert_ne!(g.value(states).row(0), g.value(states).row(2));
    }

    #[test]
    fn greedy_with_states_always_returns_at_least_one_state() {
        let (params, d) = decoder(12);
        let mut g = Graph::new(&params, false, 0);
        let mem = zero_memory(&mut g, 2, 8);
        let (tokens, states) = d.greedy_with_states(&mut g, mem, 4);
        assert!(g.value(states).rows() >= 1);
        assert!(tokens.len() <= 4);
    }

    /// With different memories the decoder must produce different outputs —
    /// i.e. attention actually conditions generation.
    #[test]
    fn decoder_conditions_on_memory() {
        let (mut params, d) = decoder(12);
        let mut opt = Adam::new(&params, AdamConfig::scaled(0.05));
        let mem_a = Tensor::from_vec(&[1, 8], vec![1.0; 8]);
        let mem_b = Tensor::from_vec(&[1, 8], vec![-1.0; 8]);
        let tgt_a = [7u32, EOS];
        let tgt_b = [9u32, EOS];
        for _ in 0..150 {
            let mut grads = Gradients::zeros(&params);
            for (mem, tgt) in [(&mem_a, &tgt_a), (&mem_b, &tgt_b)] {
                let gr = {
                    let mut g = Graph::new(&params, true, 0);
                    let m = g.input(mem.clone());
                    let logits = d.teacher_forced(&mut g, tgt, m);
                    let t: Vec<usize> = tgt.iter().map(|&t| t as usize).collect();
                    let loss = g.cross_entropy_rows(logits, &t);
                    g.backward(loss)
                };
                grads.merge(gr);
            }
            grads.scale(0.5);
            opt.step(&mut params, grads);
        }
        let mut g = Graph::new(&params, false, 0);
        let ma = g.input(mem_a.clone());
        let mb = g.input(mem_b.clone());
        assert_eq!(d.greedy(&mut g, ma, 3), vec![7]);
        assert_eq!(d.greedy(&mut g, mb, 3), vec![9]);
    }
}
