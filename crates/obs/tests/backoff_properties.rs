//! Property-based tests of the decorrelated-jitter backoff schedule: for
//! every configuration, delays stay within [base, cap], the cap is a hard
//! monotone ceiling, the attempt budget is exact, and a fixed seed
//! reproduces the schedule byte-identically.

use proptest::prelude::*;
use std::time::Duration;
use wb_obs::retry::{Backoff, BackoffConfig};

fn config_strategy() -> impl Strategy<Value = BackoffConfig> {
    (1u64..200, 1u64..2_000, 1u32..12, 0u64..1_000_000).prop_map(
        |(base_ms, extra_ms, max_attempts, seed)| BackoffConfig {
            base: Duration::from_millis(base_ms),
            // cap >= base by construction.
            cap: Duration::from_millis(base_ms + extra_ms),
            max_attempts,
            seed,
        },
    )
}

fn schedule(cfg: BackoffConfig) -> Vec<Duration> {
    let mut b = Backoff::new(cfg);
    std::iter::from_fn(|| b.next_delay()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every delay the schedule ever yields lies within [base, cap]: the
    /// jitter never undershoots the base or pierces the cap.
    #[test]
    fn delays_stay_within_base_and_cap(cfg in config_strategy()) {
        for (i, d) in schedule(cfg).iter().enumerate() {
            prop_assert!(*d >= cfg.base, "delay {i} = {d:?} below base {:?}", cfg.base);
            prop_assert!(*d <= cfg.cap, "delay {i} = {d:?} above cap {:?}", cfg.cap);
        }
    }

    /// The schedule yields exactly `max_attempts - 1` delays — one sleep
    /// between each pair of attempts, none after the last.
    #[test]
    fn attempt_budget_is_exact(cfg in config_strategy()) {
        prop_assert_eq!(schedule(cfg).len(), cfg.max_attempts as usize - 1);
    }

    /// A fixed seed reproduces the exact delay sequence; chaos tests rely
    /// on this to replay failure timings.
    #[test]
    fn fixed_seed_is_deterministic(cfg in config_strategy()) {
        prop_assert_eq!(schedule(cfg), schedule(cfg));
    }

    /// Different seeds decorrelate: with a wide-enough jitter range and a
    /// few draws, two seeds should not produce identical schedules.
    #[test]
    fn seeds_change_the_jitter(seed_a in 0u64..10_000, seed_b in 10_000u64..20_000) {
        let mk = |seed| BackoffConfig {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(100_000),
            max_attempts: 8,
            seed,
        };
        prop_assert_ne!(schedule(mk(seed_a)), schedule(mk(seed_b)));
    }

    /// Once a delay has reached the cap it can never grow past it, no
    /// matter how many more attempts follow (monotone ceiling).
    #[test]
    fn cap_is_a_hard_ceiling_forever(seed in 0u64..10_000) {
        let cfg = BackoffConfig {
            base: Duration::from_millis(50),
            cap: Duration::from_millis(120),
            max_attempts: 64,
            seed,
        };
        let delays = schedule(cfg);
        prop_assert_eq!(delays.len(), 63);
        prop_assert!(delays.iter().all(|d| *d <= cfg.cap));
    }
}
