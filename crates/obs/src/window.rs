//! Sliding-window ("live") metrics: ring-of-buckets counters and
//! histograms that answer *what is the process doing now*, alongside the
//! cumulative-since-start registry in [`crate::metrics`].
//!
//! A cumulative counter can say a server handled 40 million requests; it
//! cannot say whether the current requests-per-second is 12 or 12,000,
//! and a cumulative latency histogram buries a saturation spike under
//! hours of healthy history. Windowed metrics keep the last
//! [`RING_SLOTS`] one-second slots in a ring: recording lands in the slot
//! for the current second (lazily recycling slots as the clock advances),
//! and a query merges the slots inside the requested window — 10 s for a
//! twitchy live view, 60 s for a steadier one.
//!
//! ## Design
//!
//! Same atomic-ladder design as the cumulative registry: recording is
//! lock-free (relaxed atomics behind the per-call-site
//! [`crate::metrics::Cached`] handle), the `off` feature compiles the
//! macros out entirely, and [`crate::set_enabled`]`(false)` reduces a hit
//! to one atomic load. Slot recycling is a tag CAS: the first recorder to
//! touch a slot in a new second claims it and zeroes the contents.
//! Observations racing with that zeroing in the same wall-clock
//! microsecond can be lost; like the cumulative histogram's float-sum
//! ordering, this is a documented tolerance — metrics, not math.
//!
//! ## Using it
//!
//! ```
//! wb_obs::window_counter!("serve.requests");
//! wb_obs::window_histogram!("serve.request.latency_us", 1234.5);
//! let live = wb_obs::window::snapshot();
//! if let Some(c) = live.counters.get("serve.requests") {
//!     let _rps = c.rate_10s;
//! }
//! ```

use crate::metrics::{default_buckets, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

/// One-second slots kept per windowed metric. 64 slots cover the 60 s
/// window with slack for the ring's wrap-around second.
pub const RING_SLOTS: usize = 64;

/// The two windows every snapshot reports, in seconds.
pub const WINDOWS_SECS: [u64; 2] = [10, 60];

/// A slot tag meaning "never written".
const EMPTY: u64 = u64::MAX;

/// Seconds since the process-wide monotonic epoch (pinned on first use).
///
/// Read from a coarse cache, not the clock: a recording hit must stay
/// within 2× of a plain cumulative counter bump (see the `obs_overhead`
/// bench), and a `clock_gettime` per hit alone would blow that budget. A
/// ticker thread — spawned lazily on the first windowed recording —
/// refreshes the cache every 250 ms, so a recording can land in the slot
/// of the just-elapsed second. That skew is far inside the sub-second
/// loss tolerance slot recycling already documents. If the ticker thread
/// cannot be spawned, every caller falls back to reading the clock.
fn now_sec() -> u64 {
    if COARSE_TICKING.load(Ordering::Relaxed) {
        COARSE_SEC.load(Ordering::Relaxed)
    } else {
        epoch().elapsed().as_secs()
    }
}

static COARSE_SEC: AtomicU64 = AtomicU64::new(0);
static COARSE_TICKING: AtomicBool = AtomicBool::new(false);

/// Starts the coarse-clock ticker (idempotent). Called at metric
/// *registration* — once per call site, via [`crate::metrics::Cached`] —
/// so the recording path itself never pays an init check. Metrics
/// constructed directly (tests) simply stay on the fallback clock.
fn start_coarse_clock() {
    static START: OnceLock<()> = OnceLock::new();
    START.get_or_init(|| {
        COARSE_SEC.store(epoch().elapsed().as_secs(), Ordering::Relaxed);
        let spawned = std::thread::Builder::new()
            .name("wb-obs-window-clock".into())
            .spawn(|| loop {
                std::thread::sleep(std::time::Duration::from_millis(250));
                COARSE_SEC.store(epoch().elapsed().as_secs(), Ordering::Relaxed);
            })
            .is_ok();
        COARSE_TICKING.store(spawned, Ordering::Relaxed);
    });
}

/// The process observability epoch: the monotonic instant window slots
/// and [`crate::metrics::Snapshot::uptime_ms`] are phased against,
/// pinned on first use. Long-running entry points (the CLI, the server)
/// touch it at startup so uptime counts from process start rather than
/// from the first recorded metric.
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Claims `slot_tag` for second `sec`; returns `true` when this caller
/// won the claim and must zero the slot before recording.
fn claim(slot_tag: &AtomicU64, sec: u64) -> bool {
    let cur = slot_tag.load(Ordering::Relaxed);
    if cur == sec {
        return false;
    }
    slot_tag.compare_exchange(cur, sec, Ordering::Relaxed, Ordering::Relaxed).is_ok()
}

/// A counter that knows its recent history: one [`AtomicU64`] per
/// one-second slot plus a cumulative total.
#[derive(Debug)]
pub struct WindowCounter {
    tags: Vec<AtomicU64>,
    values: Vec<AtomicU64>,
    /// Counts retired (recycled) slots only; live slots are summed in at
    /// query time. Keeping the hot path to a single `fetch_add` is worth
    /// the 64-slot walk on the (rare) read side.
    total: AtomicU64,
}

impl Default for WindowCounter {
    fn default() -> Self {
        WindowCounter {
            tags: (0..RING_SLOTS).map(|_| AtomicU64::new(EMPTY)).collect(),
            values: (0..RING_SLOTS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
        }
    }
}

impl WindowCounter {
    /// Adds `n` to the current second's slot. The claim winner folds the
    /// recycled slot's old value into the retired total, so the steady
    /// state is one tag check plus one `fetch_add`.
    #[inline]
    pub fn add(&self, n: u64) {
        let sec = now_sec();
        let idx = (sec % RING_SLOTS as u64) as usize;
        if claim(&self.tags[idx], sec) {
            let retired = self.values[idx].swap(0, Ordering::Relaxed);
            self.total.fetch_add(retired, Ordering::Relaxed);
        }
        self.values[idx].fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of the slots inside the trailing `window_secs` window
    /// (including the current, partial second).
    pub fn sum(&self, window_secs: u64) -> u64 {
        let now = now_sec();
        let lo = now.saturating_sub(window_secs.saturating_sub(1).min(RING_SLOTS as u64 - 1));
        let mut sum = 0;
        for (tag, value) in self.tags.iter().zip(&self.values) {
            let t = tag.load(Ordering::Relaxed);
            if t != EMPTY && t >= lo && t <= now {
                sum += value.load(Ordering::Relaxed);
            }
        }
        sum
    }

    /// Cumulative total since process start (unwindowed): the retired
    /// total plus every live slot. Racing a recycle can transiently shift
    /// a slot's worth of counts — the usual sub-second tolerance.
    pub fn total(&self) -> u64 {
        let mut t = self.total.load(Ordering::Relaxed);
        for (tag, value) in self.tags.iter().zip(&self.values) {
            if tag.load(Ordering::Relaxed) != EMPTY {
                t += value.load(Ordering::Relaxed);
            }
        }
        t
    }
}

/// One second of histogram state: bucket counts, count, sum, min, max.
#[derive(Debug)]
struct HistSlot {
    tag: AtomicU64,
    /// One slot per bound, plus a trailing overflow slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl HistSlot {
    fn new(n_buckets: usize) -> Self {
        HistSlot {
            tag: AtomicU64::new(EMPTY),
            buckets: (0..n_buckets).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    fn zero(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
        self.min_bits.store(f64::INFINITY.to_bits(), Ordering::Relaxed);
        self.max_bits.store(f64::NEG_INFINITY.to_bits(), Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram over the trailing ring of one-second slots.
/// Buckets follow the same 1–2–5 ladder as the cumulative
/// [`crate::metrics::Histogram`], so windowed and cumulative quantiles
/// are comparable estimates.
#[derive(Debug)]
pub struct WindowHistogram {
    bounds: Vec<f64>,
    slots: Vec<HistSlot>,
}

impl Default for WindowHistogram {
    fn default() -> Self {
        let bounds = default_buckets();
        let slots = (0..RING_SLOTS).map(|_| HistSlot::new(bounds.len() + 1)).collect();
        WindowHistogram { bounds, slots }
    }
}

impl WindowHistogram {
    /// Records one observation into the current second's slot.
    #[inline]
    pub fn observe(&self, v: f64) {
        let sec = now_sec();
        let slot = &self.slots[(sec % RING_SLOTS as u64) as usize];
        if claim(&slot.tag, sec) {
            slot.zero();
        }
        let idx = self.bounds.partition_point(|&b| b < v);
        slot.buckets[idx].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&slot.sum_bits, v);
        atomic_f64_extreme(&slot.min_bits, v, |new, cur| new < cur);
        atomic_f64_extreme(&slot.max_bits, v, |new, cur| new > cur);
    }

    /// Merges the slots inside the trailing `window_secs` window into one
    /// [`HistogramSnapshot`] (same shape as the cumulative registry's, so
    /// quantile estimation is shared).
    pub fn snapshot(&self, window_secs: u64) -> HistogramSnapshot {
        let now = now_sec();
        let lo = now.saturating_sub(window_secs.saturating_sub(1).min(RING_SLOTS as u64 - 1));
        let mut merged = vec![0u64; self.bounds.len() + 1];
        let mut count = 0u64;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for slot in &self.slots {
            let t = slot.tag.load(Ordering::Relaxed);
            if t == EMPTY || t < lo || t > now {
                continue;
            }
            for (m, b) in merged.iter_mut().zip(&slot.buckets) {
                *m += b.load(Ordering::Relaxed);
            }
            count += slot.count.load(Ordering::Relaxed);
            sum += f64::from_bits(slot.sum_bits.load(Ordering::Relaxed));
            min = min.min(f64::from_bits(slot.min_bits.load(Ordering::Relaxed)));
            max = max.max(f64::from_bits(slot.max_bits.load(Ordering::Relaxed)));
        }
        let buckets = merged
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (self.bounds.get(i).copied().unwrap_or(f64::MAX), n))
            .collect();
        HistogramSnapshot {
            count,
            sum,
            min: (count > 0).then_some(min),
            max: (count > 0).then_some(max),
            buckets,
        }
    }
}

// The same CAS float helpers as metrics.rs, local so the windowed path
// never reaches into that module's private internals.
fn atomic_f64_add(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

fn atomic_f64_extreme(bits: &AtomicU64, v: f64, wins: impl Fn(f64, f64) -> bool) {
    let mut cur = bits.load(Ordering::Relaxed);
    while wins(v, f64::from_bits(cur)) {
        match bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// The process-global windowed-metric store, parallel to
/// [`crate::metrics::Registry`].
#[derive(Default)]
pub struct WindowRegistry {
    counters: RwLock<BTreeMap<String, Arc<WindowCounter>>>,
    histograms: RwLock<BTreeMap<String, Arc<WindowHistogram>>>,
}

fn get_or_insert<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(m) = map.read().unwrap().get(name) {
        return Arc::clone(m);
    }
    let mut w = map.write().unwrap();
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl WindowRegistry {
    /// The windowed counter registered under `name`.
    pub fn counter(&self, name: &str) -> Arc<WindowCounter> {
        get_or_insert(&self.counters, name)
    }

    /// The windowed histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Arc<WindowHistogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Drops every registered windowed metric (tests only; cached macro
    /// handles keep recording into the detached metrics).
    pub fn reset(&self) {
        self.counters.write().unwrap().clear();
        self.histograms.write().unwrap().clear();
    }
}

/// The global windowed registry.
pub fn registry() -> &'static WindowRegistry {
    static REGISTRY: OnceLock<WindowRegistry> = OnceLock::new();
    REGISTRY.get_or_init(WindowRegistry::default)
}

impl crate::metrics::Registered for WindowCounter {
    fn register(name: &str) -> Arc<Self> {
        start_coarse_clock();
        registry().counter(name)
    }
}

impl crate::metrics::Registered for WindowHistogram {
    fn register(name: &str) -> Arc<Self> {
        start_coarse_clock();
        registry().histogram(name)
    }
}

/// One windowed counter, frozen: totals and per-second rates over the
/// standard windows plus the cumulative total.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowCounterSnapshot {
    /// Events inside the trailing 10 s window.
    pub sum_10s: u64,
    /// Events inside the trailing 60 s window.
    pub sum_60s: u64,
    /// `sum_10s / 10` — the live per-second rate.
    pub rate_10s: f64,
    /// `sum_60s / 60` — the steadier per-second rate.
    pub rate_60s: f64,
    /// Cumulative total since process start.
    pub total: u64,
}

/// One windowed histogram, frozen over both standard windows.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowHistogramSnapshot {
    /// The trailing 10 s window.
    pub w10s: HistogramSnapshot,
    /// The trailing 60 s window.
    pub w60s: HistogramSnapshot,
}

/// Everything in the windowed registry at one moment.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowSnapshot {
    /// Windowed counters by name.
    pub counters: BTreeMap<String, WindowCounterSnapshot>,
    /// Windowed histograms by name.
    pub histograms: BTreeMap<String, WindowHistogramSnapshot>,
}

/// Freezes the global windowed registry over the standard 10 s / 60 s
/// windows.
pub fn snapshot() -> WindowSnapshot {
    let r = registry();
    let mut s = WindowSnapshot::default();
    for (name, c) in r.counters.read().unwrap().iter() {
        let (sum_10s, sum_60s) = (c.sum(WINDOWS_SECS[0]), c.sum(WINDOWS_SECS[1]));
        s.counters.insert(
            name.clone(),
            WindowCounterSnapshot {
                sum_10s,
                sum_60s,
                rate_10s: sum_10s as f64 / WINDOWS_SECS[0] as f64,
                rate_60s: sum_60s as f64 / WINDOWS_SECS[1] as f64,
                total: c.total(),
            },
        );
    }
    for (name, h) in r.histograms.read().unwrap().iter() {
        s.histograms.insert(
            name.clone(),
            WindowHistogramSnapshot {
                w10s: h.snapshot(WINDOWS_SECS[0]),
                w60s: h.snapshot(WINDOWS_SECS[1]),
            },
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_counter_counts_and_rates() {
        let c = WindowCounter::default();
        c.add(3);
        c.add(4);
        assert_eq!(c.sum(10), 7);
        assert_eq!(c.sum(60), 7);
        assert_eq!(c.total(), 7);
    }

    #[test]
    fn old_slots_age_out_of_the_window() {
        let c = WindowCounter::default();
        // Fake an old slot: claim a slot as if written RING_SLOTS+5
        // seconds ago relative to "now".
        let now = now_sec();
        let old = now.saturating_sub(61);
        let idx = (old % RING_SLOTS as u64) as usize;
        c.tags[idx].store(old, Ordering::Relaxed);
        c.values[idx].store(100, Ordering::Relaxed);
        c.add(1);
        // The stale slot is outside both windows (when now >= 61), but
        // still in the cumulative total.
        if now >= 61 {
            assert_eq!(c.sum(10), 1);
            assert_eq!(c.sum(60), 1);
        }
        assert_eq!(c.total(), 101);
    }

    #[test]
    fn slot_recycling_zeroes_before_recording() {
        let c = WindowCounter::default();
        let now = now_sec();
        let idx = (now % RING_SLOTS as u64) as usize;
        // Plant a stale tag + value in the slot "now" maps onto, as if the
        // ring wrapped: the first add in the new second must zero it.
        c.tags[idx].store(now.wrapping_sub(RING_SLOTS as u64), Ordering::Relaxed);
        c.values[idx].store(999, Ordering::Relaxed);
        c.add(2);
        // Unless the clock rolled to a new second mid-test (rare, retry
        // tolerant): the slot holds exactly the fresh adds.
        let v = c.values[(now_sec() % RING_SLOTS as u64) as usize].load(Ordering::Relaxed);
        assert!(v <= 2, "stale slot value must be zeroed, got {v}");
    }

    #[test]
    fn window_histogram_merges_slots_into_a_snapshot() {
        let h = WindowHistogram::default();
        for v in [1.0, 2.0, 1000.0] {
            h.observe(v);
        }
        let s = h.snapshot(10);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, Some(1.0));
        assert_eq!(s.max, Some(1000.0));
        assert!((s.sum - 1003.0).abs() < 1e-9);
        assert!(s.quantile(0.5).is_some());
        let total: u64 = s.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn empty_window_histogram_is_empty() {
        let h = WindowHistogram::default();
        let s = h.snapshot(10);
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.99), None);
    }

    #[test]
    fn concurrent_window_counter_is_exact_within_a_second() {
        use rayon::prelude::*;
        let c = WindowCounter::default();
        let items: Vec<u64> = (0..10_000).collect();
        items.par_iter().for_each(|_| c.add(1));
        // All adds land within the test's couple of seconds, so both the
        // 10s window and the cumulative total see every one (slot
        // recycling cannot fire: the ring is 64s deep).
        assert_eq!(c.total(), 10_000);
        assert_eq!(c.sum(10), 10_000);
    }

    #[test]
    fn macros_record_through_the_global_registry() {
        crate::window_counter!("test.window.macro_counter", 5);
        crate::window_histogram!("test.window.macro_hist", 2.5);
        let s = snapshot();
        assert!(s.counters["test.window.macro_counter"].total >= 5);
        assert!(s.histograms["test.window.macro_hist"].w60s.count >= 1);
    }

    #[test]
    fn disabled_window_macros_record_nothing() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        let c = registry().counter("test.window.disabled");
        let before = c.total();
        crate::set_enabled(false);
        crate::window_counter!("test.window.disabled");
        crate::set_enabled(true);
        assert_eq!(c.total(), before);
        crate::window_counter!("test.window.disabled");
        assert_eq!(c.total(), before + 1);
    }
}
