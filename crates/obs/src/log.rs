//! Leveled, target-scoped structured logging.
//!
//! Every record carries a level, the emitting module path (its *target*)
//! and a formatted message. The global maximum level plus per-target
//! overrides decide what is emitted; the `WB_LOG` environment variable
//! seeds both on first use:
//!
//! ```text
//! WB_LOG=info                       # global level
//! WB_LOG=warn,wb_tensor=trace      # global warn, trace for wb_tensor::*
//! WB_LOG=debug,wb_core::trainer=off
//! ```
//!
//! Records go to stderr by default (never stdout — observability must not
//! change program output) or to a file via [`set_log_file`]. Timestamps
//! are seconds since process start, so identical runs produce comparable
//! logs across machines.

use std::fmt;
use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Log severity, most severe first. `Off` disables everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing is logged.
    Off = 0,
    /// Unrecoverable or data-loss conditions.
    Error = 1,
    /// Suspicious conditions the run survives (e.g. NaN losses).
    Warn = 2,
    /// High-level progress (epochs, files, checkpoints).
    Info = 3,
    /// Per-step internals.
    Debug = 4,
    /// Per-operation firehose.
    Trace = 5,
}

impl Level {
    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Warn,
            3 => Level::Info,
            4 => Level::Debug,
            _ => Level::Trace,
        }
    }

    /// Parses a level name (case-insensitive).
    pub fn parse(s: &str) -> Option<Level> {
        Some(match s.to_ascii_lowercase().as_str() {
            "off" | "none" => Level::Off,
            "error" => Level::Error,
            "warn" | "warning" => Level::Warn,
            "info" => Level::Info,
            "debug" => Level::Debug,
            "trace" => Level::Trace,
            _ => return None,
        })
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Level::Off => "OFF",
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        })
    }
}

/// Where records are written.
enum Sink {
    Stderr,
    File(std::fs::File),
}

struct Config {
    /// Global max level, as its `u8` repr.
    max: AtomicU8,
    /// `(target prefix, level)` overrides; most specific prefix wins.
    targets: Mutex<Vec<(String, Level)>>,
    sink: Mutex<Sink>,
    epoch: Instant,
}

fn config() -> &'static Config {
    static CONFIG: OnceLock<Config> = OnceLock::new();
    CONFIG.get_or_init(|| {
        let cfg = Config {
            max: AtomicU8::new(Level::Warn as u8),
            targets: Mutex::new(Vec::new()),
            sink: Mutex::new(Sink::Stderr),
            epoch: Instant::now(),
        };
        if let Ok(spec) = std::env::var("WB_LOG") {
            apply_spec(&cfg, &spec);
        }
        cfg
    })
}

/// Applies a `WB_LOG`-style spec: comma-separated `level` and
/// `target=level` clauses. Unknown clauses are ignored (logging must
/// never abort the program).
fn apply_spec(cfg: &Config, spec: &str) {
    for clause in spec.split(',') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        match clause.split_once('=') {
            None => {
                if let Some(level) = Level::parse(clause) {
                    cfg.max.store(level as u8, Ordering::Relaxed);
                }
            }
            Some((target, level)) => {
                if let Some(level) = Level::parse(level) {
                    let mut targets = cfg.targets.lock().unwrap();
                    targets.retain(|(t, _)| t != target);
                    targets.push((target.trim().to_string(), level));
                    // Longest prefix first, so lookup can take the first
                    // match.
                    targets.sort_by_key(|(t, _)| std::cmp::Reverse(t.len()));
                }
            }
        }
    }
}

/// Sets the global maximum level.
pub fn set_level(level: Level) {
    config().max.store(level as u8, Ordering::Relaxed);
}

/// The current global maximum level.
pub fn max_level() -> Level {
    Level::from_u8(config().max.load(Ordering::Relaxed))
}

/// Applies a `WB_LOG`-style filter spec (see module docs) on top of the
/// current configuration.
pub fn set_filter(spec: &str) {
    apply_spec(config(), spec);
}

/// Sets a per-target (module-path prefix) level override.
pub fn set_target_level(target: &str, level: Level) {
    set_filter(&format!("{target}={level}"));
}

/// Redirects log output to a file (append mode). Errors are returned, not
/// logged — there may be nowhere to log them yet.
pub fn set_log_file(path: &str) -> std::io::Result<()> {
    let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    *config().sink.lock().unwrap() = Sink::File(file);
    Ok(())
}

/// Routes log output back to stderr.
pub fn set_log_stderr() {
    *config().sink.lock().unwrap() = Sink::Stderr;
}

/// Whether a record at `level` for `target` would be emitted. With the
/// `off` feature this is always `false` and every log site compiles out.
#[inline]
pub fn log_enabled(level: Level, target: &str) -> bool {
    #[cfg(feature = "off")]
    {
        let _ = (level, target);
        false
    }
    #[cfg(not(feature = "off"))]
    {
        let cfg = config();
        let effective = {
            let targets = cfg.targets.lock().unwrap();
            targets
                .iter()
                .find(|(prefix, _)| target.starts_with(prefix.as_str()))
                .map(|&(_, level)| level)
                .unwrap_or_else(|| Level::from_u8(cfg.max.load(Ordering::Relaxed)))
        };
        level <= effective && level != Level::Off
    }
}

/// Emits one record. Prefer the level macros ([`crate::info!`] etc.),
/// which check [`log_enabled`] before formatting.
pub fn write_record(level: Level, target: &str, args: fmt::Arguments<'_>) {
    let cfg = config();
    let elapsed = cfg.epoch.elapsed().as_secs_f64();
    let line = format!("[{elapsed:10.4}s {level:5} {target}] {args}\n");
    let mut sink = cfg.sink.lock().unwrap();
    // A full pipe or closed stderr must not crash the instrumented program.
    let _ = match &mut *sink {
        Sink::Stderr => std::io::stderr().write_all(line.as_bytes()),
        Sink::File(f) => f.write_all(line.as_bytes()),
    };
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => { $crate::log_at!($crate::log::Level::Error, $($arg)*) };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => { $crate::log_at!($crate::log::Level::Warn, $($arg)*) };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => { $crate::log_at!($crate::log::Level::Info, $($arg)*) };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => { $crate::log_at!($crate::log::Level::Debug, $($arg)*) };
}

/// Logs at [`Level::Trace`].
#[macro_export]
macro_rules! trace {
    ($($arg:tt)*) => { $crate::log_at!($crate::log::Level::Trace, $($arg)*) };
}

/// Logs at an explicit level with the caller's module path as target.
#[macro_export]
macro_rules! log_at {
    ($level:expr, $($arg:tt)*) => {
        if $crate::log::log_enabled($level, module_path!()) {
            $crate::log::write_record($level, module_path!(), format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parse_and_order() {
        assert_eq!(Level::parse("TRACE"), Some(Level::Trace));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
        assert!(Level::Error < Level::Trace);
    }

    #[test]
    fn target_overrides_beat_global_level() {
        // Serialised with the flag lock: these tests mutate the global
        // logger configuration.
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        set_level(Level::Warn);
        set_target_level("wb_obs::log::tests::special", Level::Trace);
        assert!(!log_enabled(Level::Debug, "wb_obs::log::tests"));
        assert!(log_enabled(Level::Trace, "wb_obs::log::tests::special::inner"));
        set_target_level("wb_obs::log::tests::special", Level::Off);
        assert!(!log_enabled(Level::Error, "wb_obs::log::tests::special"));
        set_filter("wb_obs::log::tests::special=warn");
        assert!(log_enabled(Level::Warn, "wb_obs::log::tests::special"));
    }

    #[test]
    fn records_reach_a_log_file() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        let path = std::env::temp_dir().join("wb_obs_log_test.txt");
        let _ = std::fs::remove_file(&path);
        set_log_file(path.to_str().unwrap()).unwrap();
        set_level(Level::Info);
        crate::info!("file sink works: {}", 42);
        crate::debug!("below the level, not written");
        set_log_stderr();
        set_level(Level::Warn);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("file sink works: 42"), "got: {text}");
        assert!(text.contains("INFO"));
        assert!(!text.contains("not written"));
        let _ = std::fs::remove_file(&path);
    }
}
