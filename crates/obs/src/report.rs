//! Pretty-prints a [`Snapshot`] as the aligned tables behind `wb report`.

use crate::metrics::Snapshot;
use std::fmt::Write as _;

/// Renders `snapshot` as a human-readable report: counters, gauges,
/// histogram summaries and a flamegraph-style span tree (indented by
/// nesting depth, with total and self time). Sections with no data are
/// omitted.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();

    if !snapshot.counters.is_empty() {
        section(&mut out, "counters");
        let rows: Vec<[String; 2]> = snapshot
            .counters
            .iter()
            .map(|(name, v)| [name.clone(), group_digits(*v)])
            .collect();
        table(&mut out, &["name", "value"], &rows);
    }

    if !snapshot.gauges.is_empty() {
        section(&mut out, "gauges");
        let rows: Vec<[String; 2]> =
            snapshot.gauges.iter().map(|(name, v)| [name.clone(), format_f64(*v)]).collect();
        table(&mut out, &["name", "value"], &rows);
    }

    if !snapshot.histograms.is_empty() {
        section(&mut out, "histograms");
        // p50/p90/p99 are interpolated inside the 1-2-5 ladder buckets —
        // estimates, not exact order statistics (see
        // `HistogramSnapshot::quantile`).
        let rows: Vec<[String; 8]> = snapshot
            .histograms
            .iter()
            .map(|(name, h)| {
                let q = |q: f64| h.quantile(q).map(format_f64).unwrap_or_else(|| "-".into());
                [
                    name.clone(),
                    group_digits(h.count),
                    format_f64(h.mean()),
                    q(0.50),
                    q(0.90),
                    q(0.99),
                    h.min.map(format_f64).unwrap_or_else(|| "-".into()),
                    h.max.map(format_f64).unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        table(&mut out, &["name", "count", "mean", "p50", "p90", "p99", "min", "max"], &rows);
    }

    if !snapshot.spans.is_empty() {
        section(&mut out, "spans");
        // Span paths sort lexicographically, which places children right
        // after their parents; indent by depth for the flamegraph shape.
        let rows: Vec<[String; 4]> = snapshot
            .spans
            .iter()
            .map(|(path, sp)| {
                let depth = path.matches('/').count();
                let leaf = path.rsplit('/').next().unwrap_or(path);
                [
                    format!("{}{leaf}", "  ".repeat(depth)),
                    group_digits(sp.count),
                    format_ns(sp.total_ns),
                    format_ns(sp.self_ns),
                ]
            })
            .collect();
        table(&mut out, &["span", "count", "total", "self"], &rows);
    }

    if out.is_empty() {
        out.push_str("(empty snapshot)\n");
    }
    out
}

fn section(out: &mut String, title: &str) {
    if !out.is_empty() {
        out.push('\n');
    }
    let _ = writeln!(out, "== {title} ==");
}

/// Writes an aligned table: the first column left-aligned, the rest
/// right-aligned.
fn table<const N: usize>(out: &mut String, headers: &[&str; N], rows: &[[String; N]]) {
    let mut widths: [usize; N] = [0; N];
    for (w, h) in widths.iter_mut().zip(headers) {
        *w = h.len();
    }
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut line = |cells: &[&str; N]| {
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                let _ = write!(out, "{cell:<w$}");
            } else {
                let _ = write!(out, "{cell:>w$}");
            }
        }
        out.push('\n');
    };
    line(headers);
    let dashes: [String; N] = std::array::from_fn(|i| "-".repeat(widths[i]));
    line(&std::array::from_fn(|i| dashes[i].as_str()));
    for row in rows {
        line(&std::array::from_fn(|i| row[i].as_str()));
    }
}

/// `1234567 → "1,234,567"`.
fn group_digits(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Compact float: integers lose the fraction, everything else keeps four
/// significant decimals.
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:.4}")
    }
}

/// Nanoseconds as an adaptive human unit.
fn format_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSnapshot, SpanSnapshot};

    #[test]
    fn renders_all_sections_aligned() {
        let mut s = Snapshot::default();
        s.counters.insert("tensor.matmul.calls.nn".into(), 1_234_567);
        s.gauges.insert("optim.lr".into(), 0.0125);
        s.histograms.insert(
            "train.epoch.loss".into(),
            HistogramSnapshot {
                count: 3,
                sum: 6.0,
                min: Some(1.0),
                max: Some(3.0),
                buckets: vec![(5.0, 3)],
            },
        );
        s.spans.insert(
            "train.epoch".into(),
            SpanSnapshot { count: 2, total_ns: 2_500_000, self_ns: 400_000 },
        );
        s.spans.insert(
            "train.epoch/train.step".into(),
            SpanSnapshot { count: 20, total_ns: 2_100_000, self_ns: 2_100_000 },
        );
        let text = render(&s);
        assert!(text.contains("== counters =="));
        assert!(text.contains("1,234,567"));
        assert!(text.contains("0.0125"));
        assert!(text.contains("train.epoch.loss"));
        // Histogram tables carry interpolated percentile columns.
        for col in ["p50", "p90", "p99"] {
            assert!(text.contains(col), "missing {col} column:\n{text}");
        }
        // Child span is indented under its parent.
        assert!(text.contains("\n  train.step"), "got:\n{text}");
        assert!(text.contains("2.50ms"));
    }

    #[test]
    fn empty_snapshot_says_so() {
        assert_eq!(render(&Snapshot::default()), "(empty snapshot)\n");
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1_000), "1,000");
        assert_eq!(group_digits(1_234_567_890), "1,234,567,890");
    }
}
