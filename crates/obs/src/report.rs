//! Pretty-prints a [`Snapshot`] as the aligned tables behind `wb report`.

use crate::metrics::Snapshot;
use std::fmt::Write as _;

/// Renders `snapshot` as a human-readable report: counters, gauges,
/// histogram summaries and a flamegraph-style span tree (indented by
/// nesting depth, with total and self time). Sections with no data are
/// omitted.
pub fn render(snapshot: &Snapshot) -> String {
    let mut out = String::new();

    if !snapshot.counters.is_empty() {
        section(&mut out, "counters");
        let rows: Vec<[String; 2]> = snapshot
            .counters
            .iter()
            .map(|(name, v)| [name.clone(), group_digits(*v)])
            .collect();
        table(&mut out, &["name", "value"], &rows);
    }

    if !snapshot.gauges.is_empty() {
        section(&mut out, "gauges");
        let rows: Vec<[String; 2]> =
            snapshot.gauges.iter().map(|(name, v)| [name.clone(), format_f64(*v)]).collect();
        table(&mut out, &["name", "value"], &rows);
    }

    if !snapshot.histograms.is_empty() {
        section(&mut out, "histograms");
        // p50/p90/p99 are interpolated inside the 1-2-5 ladder buckets —
        // estimates, not exact order statistics (see
        // `HistogramSnapshot::quantile`). A leading `>` marks an
        // open-ended estimate: the rank fell in the overflow bucket past
        // the last bound, so the true quantile is at least the shown
        // value (see `HistogramSnapshot::quantile_marked`).
        let rows: Vec<[String; 8]> = snapshot
            .histograms
            .iter()
            .map(|(name, h)| {
                let q = |q: f64| {
                    h.quantile_marked(q)
                        .map(|(v, open)| {
                            let v = format_f64(v);
                            if open {
                                format!(">{v}")
                            } else {
                                v
                            }
                        })
                        .unwrap_or_else(|| "-".into())
                };
                [
                    name.clone(),
                    group_digits(h.count),
                    format_f64(h.mean()),
                    q(0.50),
                    q(0.90),
                    q(0.99),
                    h.min.map(format_f64).unwrap_or_else(|| "-".into()),
                    h.max.map(format_f64).unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        table(&mut out, &["name", "count", "mean", "p50", "p90", "p99", "min", "max"], &rows);
    }

    if !snapshot.spans.is_empty() {
        section(&mut out, "spans");
        // Span paths sort lexicographically, which places children right
        // after their parents; indent by depth for the flamegraph shape.
        // The `obs.alloc.*` columns show self-attributed allocator
        // pressure; they render `-` unless the binary armed the counting
        // allocator (see `wb_obs::alloc`).
        let rows: Vec<[String; 6]> = snapshot
            .spans
            .iter()
            .map(|(path, sp)| {
                let depth = path.matches('/').count();
                let leaf = path.rsplit('/').next().unwrap_or(path);
                let alloc = |v: u64, fmt: fn(u64) -> String| {
                    if v == 0 {
                        "-".into()
                    } else {
                        fmt(v)
                    }
                };
                [
                    format!("{}{leaf}", "  ".repeat(depth)),
                    group_digits(sp.count),
                    format_ns(sp.total_ns),
                    format_ns(sp.self_ns),
                    alloc(sp.alloc_bytes, format_bytes),
                    alloc(sp.alloc_count, group_digits),
                ]
            })
            .collect();
        table(&mut out, &["span", "count", "total", "self", "alloc", "allocs"], &rows);
    }

    if out.is_empty() {
        out.push_str("(empty snapshot)\n");
    }
    out
}

/// Renders the difference between two snapshots — `wb report --diff A B`.
///
/// Cumulative counters answer "how many ever"; operators usually want
/// "how many per second lately". Given two snapshots of the same process
/// taken at different times, this prints per-name deltas and, when both
/// snapshots carry an uptime (so the elapsed interval is known), derived
/// rates `delta / Δuptime`. Histograms show the observations added in
/// the interval and their interval-local mean; gauges show before → after.
pub fn render_diff(a: &Snapshot, b: &Snapshot) -> String {
    let mut out = String::new();
    let dt_secs = (b.uptime_ms - a.uptime_ms) / 1e3;
    let rate = |delta: f64| {
        if dt_secs > 0.0 {
            format_f64(delta / dt_secs)
        } else {
            "-".into()
        }
    };
    let _ = writeln!(
        out,
        "interval: {}",
        if dt_secs > 0.0 {
            format!("{dt_secs:.3}s (uptime {:.1}ms -> {:.1}ms)", a.uptime_ms, b.uptime_ms)
        } else {
            "unknown (snapshots lack comparable uptimes; rates omitted)".into()
        }
    );

    let counter_names: Vec<&String> = union_keys(&a.counters, &b.counters);
    if !counter_names.is_empty() {
        section(&mut out, "counters");
        let rows: Vec<[String; 5]> = counter_names
            .iter()
            .map(|name| {
                let (va, vb) = (
                    a.counters.get(*name).copied().unwrap_or(0),
                    b.counters.get(*name).copied().unwrap_or(0),
                );
                let delta = vb as i128 - va as i128;
                // Counters are monotone, so a negative delta means the
                // process restarted (or the registry was reset) between
                // snapshots. A "rate" computed from it would be a
                // misleading negative number; flag the row instead.
                if delta < 0 {
                    [
                        (*name).clone(),
                        group_digits(va),
                        group_digits(vb),
                        format!("{} (reset)", format_i128(delta)),
                        "-".into(),
                    ]
                } else {
                    [
                        (*name).clone(),
                        group_digits(va),
                        group_digits(vb),
                        format_i128(delta),
                        rate(delta as f64),
                    ]
                }
            })
            .collect();
        table(&mut out, &["name", "a", "b", "delta", "rate/s"], &rows);
    }

    let gauge_names: Vec<&String> = union_keys(&a.gauges, &b.gauges);
    if !gauge_names.is_empty() {
        section(&mut out, "gauges");
        let rows: Vec<[String; 4]> = gauge_names
            .iter()
            .map(|name| {
                let (va, vb) = (
                    a.gauges.get(*name).copied().unwrap_or(0.0),
                    b.gauges.get(*name).copied().unwrap_or(0.0),
                );
                [(*name).clone(), format_f64(va), format_f64(vb), format_f64(vb - va)]
            })
            .collect();
        table(&mut out, &["name", "a", "b", "delta"], &rows);
    }

    let hist_names: Vec<&String> = union_keys(&a.histograms, &b.histograms);
    if !hist_names.is_empty() {
        section(&mut out, "histograms");
        let rows: Vec<[String; 4]> = hist_names
            .iter()
            .map(|name| {
                let (ca, sa) = a.histograms.get(*name).map_or((0, 0.0), |h| (h.count, h.sum));
                let (cb, sb) = b.histograms.get(*name).map_or((0, 0.0), |h| (h.count, h.sum));
                let dcount = cb as i128 - ca as i128;
                let mean =
                    if dcount > 0 { format_f64((sb - sa) / dcount as f64) } else { "-".into() };
                // Same counter-reset flagging as above: observation
                // counts only shrink across a restart.
                if dcount < 0 {
                    [
                        (*name).clone(),
                        format!("{} (reset)", format_i128(dcount)),
                        "-".into(),
                        "-".into(),
                    ]
                } else {
                    [(*name).clone(), format_i128(dcount), rate(dcount as f64), mean]
                }
            })
            .collect();
        table(&mut out, &["name", "delta count", "rate/s", "interval mean"], &rows);
    }

    out
}

/// Sorted union of both maps' keys (each map is already sorted).
fn union_keys<'a, V>(
    a: &'a std::collections::BTreeMap<String, V>,
    b: &'a std::collections::BTreeMap<String, V>,
) -> Vec<&'a String> {
    let mut keys: Vec<&String> = a.keys().chain(b.keys()).collect();
    keys.sort();
    keys.dedup();
    keys
}

/// Signed delta with digit grouping and an explicit `+` on increases.
fn format_i128(v: i128) -> String {
    match v {
        0 => "0".into(),
        v if v > 0 => format!("+{}", group_digits(v as u64)),
        v => format!("-{}", group_digits(v.unsigned_abs() as u64)),
    }
}

fn section(out: &mut String, title: &str) {
    if !out.is_empty() {
        out.push('\n');
    }
    let _ = writeln!(out, "== {title} ==");
}

/// Writes an aligned table: the first column left-aligned, the rest
/// right-aligned.
fn table<const N: usize>(out: &mut String, headers: &[&str; N], rows: &[[String; N]]) {
    let mut widths: [usize; N] = [0; N];
    for (w, h) in widths.iter_mut().zip(headers) {
        *w = h.len();
    }
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut line = |cells: &[&str; N]| {
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                let _ = write!(out, "{cell:<w$}");
            } else {
                let _ = write!(out, "{cell:>w$}");
            }
        }
        out.push('\n');
    };
    line(headers);
    let dashes: [String; N] = std::array::from_fn(|i| "-".repeat(widths[i]));
    line(&std::array::from_fn(|i| dashes[i].as_str()));
    for row in rows {
        line(&std::array::from_fn(|i| row[i].as_str()));
    }
}

/// `1234567 → "1,234,567"`.
fn group_digits(v: u64) -> String {
    let digits = v.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Compact float: integers lose the fraction, everything else keeps four
/// significant decimals.
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:.4}")
    }
}

/// Bytes as an adaptive human unit (binary multiples).
fn format_bytes(b: u64) -> String {
    let b = b as f64;
    if b >= 1024.0 * 1024.0 * 1024.0 {
        format!("{:.2}GiB", b / (1024.0 * 1024.0 * 1024.0))
    } else if b >= 1024.0 * 1024.0 {
        format!("{:.2}MiB", b / (1024.0 * 1024.0))
    } else if b >= 1024.0 {
        format!("{:.2}KiB", b / 1024.0)
    } else {
        format!("{b}B")
    }
}

/// Nanoseconds as an adaptive human unit.
fn format_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSnapshot, SpanSnapshot};

    #[test]
    fn renders_all_sections_aligned() {
        let mut s = Snapshot::default();
        s.counters.insert("tensor.matmul.calls.nn".into(), 1_234_567);
        s.gauges.insert("optim.lr".into(), 0.0125);
        s.histograms.insert(
            "train.epoch.loss".into(),
            HistogramSnapshot {
                count: 3,
                sum: 6.0,
                min: Some(1.0),
                max: Some(3.0),
                buckets: vec![(5.0, 3)],
            },
        );
        s.spans.insert(
            "train.epoch".into(),
            SpanSnapshot {
                count: 2,
                total_ns: 2_500_000,
                self_ns: 400_000,
                ..SpanSnapshot::default()
            },
        );
        s.spans.insert(
            "train.epoch/train.step".into(),
            SpanSnapshot {
                count: 20,
                total_ns: 2_100_000,
                self_ns: 2_100_000,
                alloc_bytes: 3 * 1024 * 1024,
                alloc_count: 4_200,
            },
        );
        let text = render(&s);
        assert!(text.contains("== counters =="));
        assert!(text.contains("1,234,567"));
        assert!(text.contains("0.0125"));
        assert!(text.contains("train.epoch.loss"));
        // Histogram tables carry interpolated percentile columns.
        for col in ["p50", "p90", "p99"] {
            assert!(text.contains(col), "missing {col} column:\n{text}");
        }
        // Child span is indented under its parent.
        assert!(text.contains("\n  train.step"), "got:\n{text}");
        assert!(text.contains("2.50ms"));
        // Alloc attribution columns: populated rows show human units,
        // unattributed rows show `-`.
        assert!(text.contains("alloc"), "missing alloc column:\n{text}");
        assert!(text.contains("3.00MiB"), "got:\n{text}");
        assert!(text.contains("4,200"), "got:\n{text}");
    }

    #[test]
    fn diff_flags_counter_resets_instead_of_negative_rates() {
        let mut a = Snapshot { uptime_ms: 1000.0, ..Snapshot::default() };
        a.counters.insert("serve.requests".into(), 500);
        a.histograms.insert(
            "serve.request.latency_us".into(),
            HistogramSnapshot {
                count: 500,
                sum: 100.0,
                min: Some(1.0),
                max: Some(2.0),
                buckets: vec![(10.0, 500)],
            },
        );
        // B was taken after a process restart: everything went backwards.
        let mut b = Snapshot { uptime_ms: 4000.0, ..Snapshot::default() };
        b.counters.insert("serve.requests".into(), 30);
        b.histograms.insert(
            "serve.request.latency_us".into(),
            HistogramSnapshot {
                count: 30,
                sum: 10.0,
                min: Some(1.0),
                max: Some(2.0),
                buckets: vec![(10.0, 30)],
            },
        );
        let text = render_diff(&a, &b);
        assert!(text.contains("(reset)"), "reset must be flagged:\n{text}");
        // No negative per-second rate may be derived from a reset.
        assert!(!text.contains("-156"), "misleading negative rate:\n{text}");
        for line in text.lines().filter(|l| l.contains("(reset)")) {
            assert!(line.trim_end().ends_with('-'), "reset row must omit rates: {line}");
        }
    }

    #[test]
    fn open_ended_quantiles_carry_a_marker() {
        let mut s = Snapshot::default();
        s.histograms.insert(
            "serve.saturated_us".into(),
            HistogramSnapshot {
                count: 10,
                sum: 5000.0,
                min: Some(0.5),
                max: Some(2000.0),
                // 9 of 10 observations blew past the only bound: p90/p99
                // land in the overflow bucket.
                buckets: vec![(1.0, 1), (f64::MAX, 9)],
            },
        );
        let text = render(&s);
        assert!(text.contains(">"), "saturated quantiles must be marked:\n{text}");
        // The p50 column is open-ended too here (rank 5 of 10 is in
        // overflow), while min/max stay unmarked numbers.
        assert!(text.contains(">2,000") || text.contains(">2000") || text.contains(">1"));
    }

    #[test]
    fn diff_reports_deltas_and_rates() {
        let mut a = Snapshot { uptime_ms: 1000.0, ..Snapshot::default() };
        a.counters.insert("serve.requests".into(), 100);
        a.gauges.insert("serve.queue.depth".into(), 2.0);
        a.histograms.insert(
            "serve.request.latency_us".into(),
            HistogramSnapshot {
                count: 100,
                sum: 1000.0,
                min: Some(1.0),
                max: Some(50.0),
                buckets: vec![(100.0, 100)],
            },
        );
        let mut b = a.clone();
        b.uptime_ms = 3000.0;
        b.counters.insert("serve.requests".into(), 300);
        b.counters.insert("serve.errors".into(), 4);
        b.gauges.insert("serve.queue.depth".into(), 7.0);
        b.histograms.insert(
            "serve.request.latency_us".into(),
            HistogramSnapshot {
                count: 300,
                sum: 5000.0,
                min: Some(1.0),
                max: Some(90.0),
                buckets: vec![(100.0, 300)],
            },
        );
        let text = render_diff(&a, &b);
        assert!(text.contains("interval: 2.000s"), "got:\n{text}");
        // 200 more requests over 2s -> 100/s.
        assert!(text.contains("+200"), "got:\n{text}");
        assert!(text.contains("100"), "got:\n{text}");
        // A counter only present in B diffs from zero.
        assert!(text.contains("serve.errors"));
        assert!(text.contains("+4"));
        // Gauge before -> after delta.
        assert!(text.contains("5"), "queue depth delta:\n{text}");
        // Histogram interval mean: (5000-1000)/(300-100) = 20.
        assert!(text.contains("20"), "got:\n{text}");
    }

    #[test]
    fn diff_without_uptime_omits_rates() {
        let mut a = Snapshot::default();
        a.counters.insert("c".into(), 1);
        let mut b = Snapshot::default();
        b.counters.insert("c".into(), 5);
        let text = render_diff(&a, &b);
        assert!(text.contains("unknown"), "got:\n{text}");
        assert!(text.contains("+4"));
    }

    #[test]
    fn empty_snapshot_says_so() {
        assert_eq!(render(&Snapshot::default()), "(empty snapshot)\n");
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1_000), "1,000");
        assert_eq!(group_digits(1_234_567_890), "1,234,567,890");
    }
}
