//! Sampling span-stack profiler.
//!
//! The span layer ([`crate::span`]) already maintains a per-thread RAII
//! nesting stack; this module makes that stack *observable from outside
//! the thread* so a dedicated sampler can snapshot every thread at a
//! fixed rate and fold the observations into collapsed-stack form
//! (`root;child;leaf count` — the input format of every flamegraph
//! tool, including [`crate::flame`]).
//!
//! ## How a thread exposes its stack
//!
//! Span names are interned to dense `u32` ids. Each thread that enters
//! a span while a capture is armed registers a fixed-size *shadow
//! stack* — a seqlock-guarded array of atomics mirroring the interned
//! ids of its live span stack. The mirror is rewritten on every span
//! enter/exit (a handful of relaxed stores), and only while armed:
//! disarmed, the span hot path pays exactly one relaxed atomic load.
//! The sampler validates the seqlock around each read and discards torn
//! snapshots; a stale or torn id can at worst name the wrong span —
//! ids are bounds-checked against the intern table, so the read is
//! memory-safe under any interleaving.
//!
//! Because the mirror is only maintained while armed, a span entered
//! *before* the capture started becomes visible at that thread's next
//! span enter or exit (the mirror is rebuilt from the real stack each
//! time). Threads that never touch a span during the capture simply do
//! not appear.
//!
//! ## Modes
//!
//! * [`Mode::Wall`] — every observed thread with a non-empty stack
//!   contributes weight 1 per sampling round: the classic wall-clock
//!   profile (blocked time counts).
//! * [`Mode::Cpu`] — each round reads `utime+stime` clock ticks from
//!   `/proc/self/task/<tid>/stat` (dependency-free, like the signal
//!   handling in wb-serve) and attributes the per-thread delta to the
//!   stack observed at the sample instant; CPU burned while the stack
//!   is empty lands in the `(no span)` bucket. Linux-only.
//!
//! One capture may run at a time ([`start`] fails with a busy error
//! otherwise); `GET /pprof` maps that to HTTP 409.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant};

/// Deepest mirrored nesting; deeper frames fold into a `(truncated)`
/// trailing frame. The real span stack is unaffected.
pub const MAX_FRAMES: usize = 32;

/// Sampling clock source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Weight 1 per thread per round; blocked time counts.
    Wall,
    /// Weight = `utime+stime` tick delta per thread per round.
    Cpu,
}

impl Mode {
    /// Parses `"wall"` / `"cpu"`.
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "wall" => Some(Mode::Wall),
            "cpu" => Some(Mode::Cpu),
            _ => None,
        }
    }

    /// The canonical spelling accepted by [`Mode::parse`].
    pub fn as_str(&self) -> &'static str {
        match self {
            Mode::Wall => "wall",
            Mode::Cpu => "cpu",
        }
    }
}

/// Capture configuration.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Sampling rounds per second, clamped to `1..=1000`.
    pub hz: u32,
    /// Clock source.
    pub mode: Mode,
}

impl Default for Options {
    fn default() -> Self {
        Options { hz: 99, mode: Mode::Wall }
    }
}

// ---------------------------------------------------------------------
// Name interning
// ---------------------------------------------------------------------

#[derive(Default)]
struct Interner {
    ids: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static T: OnceLock<RwLock<Interner>> = OnceLock::new();
    T.get_or_init(|| RwLock::new(Interner::default()))
}

fn intern(name: &'static str) -> u32 {
    if let Some(&id) = interner().read().unwrap().ids.get(name) {
        return id;
    }
    let mut w = interner().write().unwrap();
    if let Some(&id) = w.ids.get(name) {
        return id;
    }
    let id = w.names.len() as u32;
    w.names.push(name);
    w.ids.insert(name, id);
    id
}

/// Resolves an interned id; a torn or stale id past the table end reads
/// as `"?"` rather than anything unsafe.
fn resolve(id: u32) -> &'static str {
    interner().read().unwrap().names.get(id as usize).copied().unwrap_or("?")
}

// ---------------------------------------------------------------------
// Shadow stacks
// ---------------------------------------------------------------------

struct ShadowStack {
    /// Kernel thread id (0 where unavailable); keys the on-CPU reads.
    tid: u64,
    /// Seqlock: odd while the owner rewrites the mirror.
    seq: AtomicU64,
    /// True nesting depth (may exceed [`MAX_FRAMES`]).
    depth: AtomicUsize,
    /// Interned ids of the first [`MAX_FRAMES`] frames, root first.
    frames: [AtomicU32; MAX_FRAMES],
    /// Cleared when the owning thread exits; pruned by the sampler.
    alive: AtomicBool,
    /// Excluded from sampling (the thread running a capture request).
    hidden: AtomicBool,
}

fn stacks() -> &'static Mutex<Vec<Arc<ShadowStack>>> {
    static S: OnceLock<Mutex<Vec<Arc<ShadowStack>>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(Vec::new()))
}

#[cfg(target_os = "linux")]
fn current_tid() -> u64 {
    // Hand-declared like wb-serve's signal(): glibc and musl both export
    // gettid(); going through libc keeps this dependency-free.
    extern "C" {
        fn gettid() -> i32;
    }
    unsafe { gettid() as u64 }
}

#[cfg(not(target_os = "linux"))]
fn current_tid() -> u64 {
    0
}

/// Keeps the registration alive for the thread's lifetime; the `Drop`
/// marks the mirror dead so the sampler can prune it.
struct ShadowHandle(Arc<ShadowStack>);

impl Drop for ShadowHandle {
    fn drop(&mut self) {
        self.0.alive.store(false, Ordering::Relaxed);
    }
}

thread_local! {
    static SHADOW: std::cell::RefCell<Option<ShadowHandle>> = const { std::cell::RefCell::new(None) };
}

fn register_current_thread() -> ShadowHandle {
    let s = Arc::new(ShadowStack {
        tid: current_tid(),
        seq: AtomicU64::new(0),
        depth: AtomicUsize::new(0),
        frames: std::array::from_fn(|_| AtomicU32::new(0)),
        alive: AtomicBool::new(true),
        hidden: AtomicBool::new(false),
    });
    stacks().lock().unwrap().push(Arc::clone(&s));
    ShadowHandle(s)
}

static ARMED: AtomicBool = AtomicBool::new(false);

/// Whether a capture is armed. The span hot path checks this (one
/// relaxed load) and skips all mirror maintenance when disarmed.
#[inline(always)]
pub(crate) fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Rebuilds the current thread's shadow mirror from its real span stack
/// (called by the span layer on every enter/exit while armed).
pub(crate) fn sync_stack<I>(names: I)
where
    I: Iterator<Item = &'static str> + ExactSizeIterator,
{
    let _ = SHADOW.try_with(|cell| {
        let mut slot = cell.borrow_mut();
        let handle = slot.get_or_insert_with(register_current_thread);
        let s = &handle.0;
        let depth = names.len();
        s.seq.fetch_add(1, Ordering::Release);
        for (i, name) in names.enumerate().take(MAX_FRAMES) {
            s.frames[i].store(intern(name), Ordering::Relaxed);
        }
        s.depth.store(depth, Ordering::Relaxed);
        s.seq.fetch_add(1, Ordering::Release);
    });
}

/// Hides the calling thread from the sampler while the guard lives.
/// The `/pprof` handler uses this so the capture request's own
/// long-lived `serve.request` span does not pollute every profile.
pub fn hide_current_thread() -> HiddenGuard {
    let arc = SHADOW.with(|cell| {
        let mut slot = cell.borrow_mut();
        Arc::clone(&slot.get_or_insert_with(register_current_thread).0)
    });
    arc.hidden.store(true, Ordering::Relaxed);
    HiddenGuard(arc)
}

/// Re-exposes the thread to the sampler when dropped.
pub struct HiddenGuard(Arc<ShadowStack>);

impl Drop for HiddenGuard {
    fn drop(&mut self) {
        self.0.hidden.store(false, Ordering::Relaxed);
    }
}

/// Seqlock-validated read of one mirror; `None` after repeated tears.
fn read_stack(s: &ShadowStack) -> Option<(Vec<u32>, usize)> {
    for _ in 0..4 {
        let s1 = s.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            std::hint::spin_loop();
            continue;
        }
        let depth = s.depth.load(Ordering::Relaxed);
        let shown = depth.min(MAX_FRAMES);
        let mut ids = Vec::with_capacity(shown);
        for f in s.frames.iter().take(shown) {
            ids.push(f.load(Ordering::Relaxed));
        }
        std::sync::atomic::fence(Ordering::Acquire);
        if s.seq.load(Ordering::Relaxed) == s1 {
            return Some((ids, depth));
        }
    }
    None
}

/// `utime+stime` clock ticks for one thread of this process.
fn cpu_ticks(tid: u64) -> Option<u64> {
    let text = std::fs::read_to_string(format!("/proc/self/task/{tid}/stat")).ok()?;
    // The comm field may contain spaces and parentheses; fields after
    // the *last* `)` are whitespace-separated. utime and stime are
    // fields 14 and 15 of the full line, i.e. 11 and 12 past the comm.
    let (_, rest) = text.rsplit_once(')')?;
    let mut it = rest.split_ascii_whitespace();
    let utime: u64 = it.nth(11)?.parse().ok()?;
    let stime: u64 = it.next()?.parse().ok()?;
    Some(utime + stime)
}

fn sanitize_frame(name: &str) -> String {
    name.chars().map(|c| if c == ';' || c.is_whitespace() { '_' } else { c }).collect()
}

// ---------------------------------------------------------------------
// Capture
// ---------------------------------------------------------------------

static CAPTURING: AtomicBool = AtomicBool::new(false);

/// A finished capture.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Clock source the capture ran with.
    pub mode: Mode,
    /// Effective sampling rate.
    pub hz: u32,
    /// Wall time the capture was armed for.
    pub duration: Duration,
    /// Sampling rounds performed.
    pub rounds: u64,
    /// Sum of all folded weights.
    pub total_weight: u64,
    /// Collapsed stacks: `root;child;leaf` → weight.
    pub folded: BTreeMap<String, u64>,
}

impl Profile {
    /// Renders the canonical collapsed-stack text: one
    /// `path weight` line per folded stack, sorted by path.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for (path, w) in &self.folded {
            out.push_str(path);
            out.push(' ');
            out.push_str(&w.to_string());
            out.push('\n');
        }
        out
    }
}

/// A running capture; [`Recorder::stop`] disarms and returns the
/// profile.
pub struct Recorder {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<(u64, u64, BTreeMap<String, u64>)>,
    opts: Options,
    started: Instant,
}

impl Recorder {
    /// Stops sampling, disarms the span mirrors and returns the folded
    /// profile.
    pub fn stop(self) -> Profile {
        self.stop.store(true, Ordering::Release);
        let (rounds, total_weight, folded) = self.handle.join().unwrap_or_default();
        ARMED.store(false, Ordering::Relaxed);
        CAPTURING.store(false, Ordering::Release);
        Profile {
            mode: self.opts.mode,
            hz: self.opts.hz,
            duration: self.started.elapsed(),
            rounds,
            total_weight,
            folded,
        }
    }
}

/// Arms the profiler and starts the sampler thread. Fails when a
/// capture is already running, when observability is compiled out, or
/// when [`Mode::Cpu`] is requested off Linux.
pub fn start(opts: Options) -> Result<Recorder, String> {
    if cfg!(feature = "off") {
        return Err("profiler unavailable: wb-obs compiled with the `off` feature".to_string());
    }
    if opts.mode == Mode::Cpu && !cfg!(target_os = "linux") {
        return Err("on-CPU mode reads /proc and requires Linux".to_string());
    }
    if CAPTURING.compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed).is_err() {
        return Err("a profile capture is already in progress".to_string());
    }
    let opts = Options { hz: opts.hz.clamp(1, 1000), ..opts };
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    ARMED.store(true, Ordering::Relaxed);
    let handle = std::thread::Builder::new()
        .name("wb-obs-profiler".to_string())
        .spawn(move || sampler_loop(opts, stop_flag))
        .map_err(|e| {
            ARMED.store(false, Ordering::Relaxed);
            CAPTURING.store(false, Ordering::Release);
            format!("spawning sampler thread: {e}")
        })?;
    Ok(Recorder { stop, handle, opts, started: Instant::now() })
}

/// Runs a timed capture: [`start`], sleep, [`Recorder::stop`]. The
/// calling thread blocks for the full duration.
pub fn capture(duration: Duration, opts: Options) -> Result<Profile, String> {
    let rec = start(opts)?;
    std::thread::sleep(duration);
    Ok(rec.stop())
}

fn sampler_loop(opts: Options, stop: Arc<AtomicBool>) -> (u64, u64, BTreeMap<String, u64>) {
    let period = Duration::from_secs_f64(1.0 / opts.hz as f64);
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    let mut rounds = 0u64;
    let mut total_weight = 0u64;
    // On-CPU baseline: tick counts at capture start, so only CPU burned
    // during the window is attributed.
    let mut cpu_last: HashMap<u64, u64> = HashMap::new();
    if opts.mode == Mode::Cpu {
        for s in stacks().lock().unwrap().iter() {
            if let Some(t) = cpu_ticks(s.tid) {
                cpu_last.insert(s.tid, t);
            }
        }
    }
    while !stop.load(Ordering::Acquire) {
        let tick = Instant::now();
        rounds += 1;
        let snapshot: Vec<Arc<ShadowStack>> = {
            let mut g = stacks().lock().unwrap();
            g.retain(|s| s.alive.load(Ordering::Relaxed));
            g.iter().map(Arc::clone).collect()
        };
        for s in &snapshot {
            let weight = match opts.mode {
                Mode::Wall => 1,
                Mode::Cpu => {
                    let Some(now) = cpu_ticks(s.tid) else { continue };
                    let last = *cpu_last.get(&s.tid).unwrap_or(&now);
                    cpu_last.insert(s.tid, now);
                    now.saturating_sub(last)
                }
            };
            if weight == 0 || s.hidden.load(Ordering::Relaxed) {
                continue;
            }
            let Some((ids, depth)) = read_stack(s) else { continue };
            let path = if ids.is_empty() {
                if opts.mode == Mode::Wall {
                    continue; // idle thread: wall profiles show only live spans
                }
                "(no span)".to_string()
            } else {
                let mut p = String::new();
                for (i, id) in ids.iter().enumerate() {
                    if i > 0 {
                        p.push(';');
                    }
                    p.push_str(&sanitize_frame(resolve(*id)));
                }
                if depth > MAX_FRAMES {
                    p.push_str(";(truncated)");
                }
                p
            };
            *folded.entry(path).or_insert(0) += weight;
            total_weight += weight;
        }
        let elapsed = tick.elapsed();
        if elapsed < period {
            std::thread::sleep(period - elapsed);
        }
    }
    (rounds, total_weight, folded)
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;
    use crate::span;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    // Every test arms the one global profiler, so serialise on the
    // shared flag lock like the other wb-obs flag-touching tests.

    #[test]
    fn interning_is_stable_and_resolve_is_bounds_checked() {
        let a = intern("test.prof.intern.a");
        let b = intern("test.prof.intern.b");
        assert_ne!(a, b);
        assert_eq!(intern("test.prof.intern.a"), a);
        assert_eq!(resolve(a), "test.prof.intern.a");
        assert_eq!(resolve(u32::MAX), "?", "wild ids must resolve safely");
    }

    #[test]
    fn collapsed_paths_sanitise_separators() {
        assert_eq!(sanitize_frame("a b;c\td"), "a_b_c_d");
    }

    #[test]
    fn wall_capture_folds_nested_worker_spans() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        let rec = start(Options::default()).expect("start");
        let worker = std::thread::spawn(|| {
            let _a = span::enter("test.prof.wall_outer");
            let _b = span::enter("test.prof.wall_inner");
            std::thread::sleep(Duration::from_millis(200));
        });
        std::thread::sleep(Duration::from_millis(150));
        worker.join().unwrap();
        let p = rec.stop();
        assert!(p.rounds >= 5, "sampler barely ran: {} rounds", p.rounds);
        let nested = p.folded.get("test.prof.wall_outer;test.prof.wall_inner").copied();
        assert!(nested.unwrap_or(0) >= 1, "missing nested path in {:?}", p.folded);
        // Collapsed text parses back: every line is `path weight`.
        for line in p.to_collapsed().lines() {
            let (path, w) = line.rsplit_once(' ').expect("line shape");
            assert!(!path.is_empty());
            w.parse::<u64>().expect("weight is a number");
        }
    }

    #[test]
    fn only_one_capture_at_a_time() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        let rec = start(Options::default()).expect("first capture");
        let err = match start(Options::default()) {
            Ok(r) => {
                let _ = r.stop();
                panic!("second capture unexpectedly started");
            }
            Err(e) => e,
        };
        assert!(err.contains("already in progress"), "unexpected error: {err}");
        let _ = rec.stop();
        // The slot frees on stop.
        let rec2 = start(Options::default()).expect("slot must free");
        let _ = rec2.stop();
    }

    #[test]
    fn hidden_threads_are_excluded() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        let rec = start(Options::default()).expect("start");
        std::thread::spawn(|| {
            let _hide = hide_current_thread();
            let _s = span::enter("test.prof.hidden_span");
            std::thread::sleep(Duration::from_millis(120));
        })
        .join()
        .unwrap();
        let p = rec.stop();
        assert!(
            !p.folded.keys().any(|k| k.contains("test.prof.hidden_span")),
            "hidden thread leaked into {:?}",
            p.folded
        );
    }

    #[test]
    fn deep_stacks_truncate_without_losing_the_root() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        let rec = start(Options::default()).expect("start");
        std::thread::spawn(|| {
            fn rec_spans(depth: usize) {
                let _s = span::enter("test.prof.deep");
                if depth > 0 {
                    rec_spans(depth - 1);
                } else {
                    std::thread::sleep(Duration::from_millis(150));
                }
            }
            rec_spans(MAX_FRAMES + 8);
        })
        .join()
        .unwrap();
        let p = rec.stop();
        let truncated: u64 =
            p.folded.iter().filter(|(k, _)| k.ends_with("(truncated)")).map(|(_, w)| w).sum();
        assert!(truncated >= 1, "deep stack must fold into (truncated): {:?}", p.folded);
    }

    /// Satellite: a `catch_unwind` inside a nested span must leave the
    /// sampler seeing a consistent stack — the panicked span's frame is
    /// popped by its guard during unwinding, never orphaned.
    fn panic_consistency(threads: usize) {
        let rec = start(Options::default()).expect("start");
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                std::thread::spawn(|| {
                    let _outer = span::enter("test.prof.panic_outer");
                    for _ in 0..3 {
                        let r = catch_unwind(AssertUnwindSafe(|| {
                            let _inner = span::enter("test.prof.panic_inner");
                            panic!("intentional test panic");
                        }));
                        assert!(r.is_err());
                    }
                    // The real stack healed: only the outer frame lives.
                    assert_eq!(span::depth(), 1);
                    // Hold the outer span where the sampler can see it.
                    std::thread::sleep(Duration::from_millis(200));
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let p = rec.stop();
        let outer = p.folded.get("test.prof.panic_outer").copied().unwrap_or(0);
        let orphaned = p.folded.get("test.prof.panic_outer;test.prof.panic_inner").copied();
        assert!(outer >= 3, "outer span undersampled: {:?}", p.folded);
        // The inner span lives only microseconds before panicking; an
        // orphaned frame would instead dominate the 200 ms sleep.
        assert!(
            orphaned.unwrap_or(0) < outer,
            "orphaned inner frame after catch_unwind: {:?}",
            p.folded
        );
    }

    #[test]
    fn catch_unwind_leaves_consistent_stack_single_thread() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        panic_consistency(1);
    }

    #[test]
    fn catch_unwind_leaves_consistent_stack_four_threads() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        panic_consistency(4);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn cpu_capture_attributes_ticks_to_spinning_span() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        let rec = start(Options { hz: 99, mode: Mode::Cpu }).expect("start");
        std::thread::spawn(|| {
            let _s = span::enter("test.prof.cpu_spin");
            let t0 = Instant::now();
            let mut x = 0u64;
            while t0.elapsed() < Duration::from_millis(400) {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                std::hint::black_box(x);
            }
        })
        .join()
        .unwrap();
        let p = rec.stop();
        let spin: u64 = p
            .folded
            .iter()
            .filter(|(k, _)| k.contains("test.prof.cpu_spin"))
            .map(|(_, w)| w)
            .sum();
        // 400 ms of spin is ≥ 40 clock ticks at 100 Hz; allow heavy
        // scheduling noise but require the span to show up at all.
        assert!(spin >= 1, "spinning span earned no CPU ticks: {:?}", p.folded);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn cpu_ticks_parses_own_thread() {
        let t = cpu_ticks(current_tid());
        assert!(t.is_some(), "/proc/self/task/<tid>/stat must parse");
    }
}
