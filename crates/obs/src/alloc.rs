//! Span-attributed allocation counting.
//!
//! [`Counting`] wraps the system allocator and, while tracking is armed
//! ([`set_tracking`]), bumps two per-thread counters — bytes requested
//! and allocation events — on every `alloc`/`alloc_zeroed`/`realloc`.
//! The span layer reads those counters at span entry and exit
//! ([`thread_totals`]) and attributes the delta to the active span path,
//! so `wb report` can show `obs.alloc.*` columns per span exactly the
//! way it shows self time.
//!
//! The binary that wants attribution installs the wrapper:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: wb_obs::alloc::Counting = wb_obs::alloc::Counting;
//! ```
//!
//! ## Accounting rules
//!
//! * `alloc`/`alloc_zeroed` count the requested layout size once.
//! * `realloc` counts the *new* size as a fresh allocation event — the
//!   instrument measures allocator pressure, not live heap.
//! * `dealloc` is not counted; frees are attributed to nobody.
//!
//! ## Safety and overhead
//!
//! The hot path is one relaxed atomic load (the tracking flag); when
//! armed it adds two thread-local `Cell` bumps. The cells are
//! const-initialised and `Drop`-free, so touching them inside the
//! allocator can neither allocate nor re-enter; during thread teardown
//! `try_with` degrades to not counting. Compiled with the `off` feature
//! the wrapper forwards verbatim with zero bookkeeping.

use std::alloc::{GlobalAlloc, Layout, System};

#[cfg(not(feature = "off"))]
use std::cell::Cell;
#[cfg(not(feature = "off"))]
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(not(feature = "off"))]
static TRACKING: AtomicBool = AtomicBool::new(false);

#[cfg(not(feature = "off"))]
thread_local! {
    static BYTES: Cell<u64> = const { Cell::new(0) };
    static COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Arms or disarms allocation counting. Disarmed (the default), the
/// wrapper costs one relaxed atomic load per allocation. No-op under the
/// `off` feature.
pub fn set_tracking(on: bool) {
    #[cfg(feature = "off")]
    {
        let _ = on;
    }
    #[cfg(not(feature = "off"))]
    TRACKING.store(on, Ordering::Relaxed);
}

/// Whether allocation counting is armed. Always `false` under `off`.
#[inline]
pub fn tracking() -> bool {
    #[cfg(feature = "off")]
    {
        false
    }
    #[cfg(not(feature = "off"))]
    {
        TRACKING.load(Ordering::Relaxed)
    }
}

/// The current thread's cumulative `(bytes, allocation count)` since it
/// started. Monotone while tracking is armed; the span layer diffs two
/// readings to attribute the interval. Always `(0, 0)` under `off`.
#[inline]
pub fn thread_totals() -> (u64, u64) {
    #[cfg(feature = "off")]
    {
        (0, 0)
    }
    #[cfg(not(feature = "off"))]
    {
        let b = BYTES.try_with(Cell::get).unwrap_or(0);
        let c = COUNT.try_with(Cell::get).unwrap_or(0);
        (b, c)
    }
}

#[inline]
fn note(size: usize) {
    #[cfg(feature = "off")]
    {
        let _ = size;
    }
    #[cfg(not(feature = "off"))]
    {
        if !TRACKING.load(Ordering::Relaxed) {
            return;
        }
        let _ = BYTES.try_with(|b| b.set(b.get().wrapping_add(size as u64)));
        let _ = COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
    }
}

/// A counting wrapper around [`System`], suitable for
/// `#[global_allocator]`.
pub struct Counting;

// SAFETY: every method forwards to `System` with the caller's layout
// unchanged; the bookkeeping touches only Drop-free thread-local cells
// and never allocates.
unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            note(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            note(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            note(new_size);
        }
        p
    }
}

#[cfg(all(test, not(feature = "off")))]
mod tests {
    use super::*;

    // The test binary does not install `Counting` as the global
    // allocator (that is the `wb` binary's job), so exercise the
    // GlobalAlloc impl directly.
    #[test]
    fn counts_only_while_tracking() {
        let a = Counting;
        let layout = Layout::from_size_align(64, 8).unwrap();
        let (b0, c0) = thread_totals();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
        }
        assert_eq!(thread_totals(), (b0, c0), "disarmed allocations must not count");

        set_tracking(true);
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            let p = a.realloc(p, layout, 128);
            assert!(!p.is_null());
            a.dealloc(p, Layout::from_size_align(128, 8).unwrap());
        }
        set_tracking(false);
        let (b1, c1) = thread_totals();
        // alloc(64) + realloc-to-128 = 192 bytes over 2 events; frees
        // are not counted.
        assert_eq!(b1 - b0, 192);
        assert_eq!(c1 - c0, 2);
    }

    #[test]
    fn totals_are_per_thread() {
        set_tracking(true);
        let a = Counting;
        let layout = Layout::from_size_align(32, 8).unwrap();
        let (b0, _) = thread_totals();
        std::thread::spawn(move || {
            let a = Counting;
            let layout = Layout::from_size_align(1024, 8).unwrap();
            unsafe {
                let p = a.alloc(layout);
                assert!(!p.is_null());
                a.dealloc(p, layout);
            }
            let (b, c) = thread_totals();
            assert!(b >= 1024 && c >= 1);
        })
        .join()
        .unwrap();
        unsafe {
            let p = a.alloc(layout);
            a.dealloc(p, layout);
        }
        set_tracking(false);
        let (b1, _) = thread_totals();
        // The sibling thread's 1024 bytes must not leak into this
        // thread's totals.
        assert_eq!(b1 - b0, 32);
    }
}
