//! Event-level timeline tracing with Chrome-trace export.
//!
//! Where [`crate::metrics`] aggregates (how much time did `brief.encode`
//! take *in total*), tracing records *individual events* — every span
//! completion and explicit counter sample, stamped with a timestamp and
//! thread id — so a whole `brief_corpus` fan-out or a train step can be
//! inspected on a timeline in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev).
//!
//! ## Recording
//!
//! Collection is off by default. [`start`] arms it; from then on every
//! span opened through [`crate::span!`] records one *complete* event
//! (`ph: "X"` in Chrome terms: begin timestamp + duration) when its guard
//! drops, and call sites may add counter samples with [`sample`]. Events
//! land in per-thread buffers, so recording never contends across
//! threads: each thread pushes into its own buffer behind a mutex no
//! other thread touches until export. When inactive the cost at a span
//! drop is a single relaxed atomic load.
//!
//! Buffers are bounded rings ([`MAX_EVENTS_PER_THREAD`] events per
//! thread): when full, the oldest events are overwritten and counted, so
//! a runaway workload degrades the timeline instead of memory.
//!
//! ## Export
//!
//! [`export_chrome`] serialises everything recorded so far as a Chrome
//! trace format JSON object (`{"traceEvents": [...]}`) via the
//! dependency-free [`crate::json`] writer; [`write_chrome`] puts it in a
//! file. The `wb` CLI exposes this as the global `--trace-out FILE`
//! option.
//!
//! Like the rest of `wb-obs`, tracing reads the clock and bumps memory —
//! it can never perturb model math, RNG draws or reduction order, so a
//! traced run's output is byte-identical to an untraced one.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Ring capacity per thread; the oldest events are overwritten past this.
pub const MAX_EVENTS_PER_THREAD: usize = 1 << 16;

/// What one recorded event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// A completed span (Chrome `ph: "X"`): begin + duration.
    Span,
    /// A counter sample (Chrome `ph: "C"`): instantaneous value.
    Counter,
}

/// One timeline event. Names are `&'static str` (span and sample names
/// are string literals at their call sites), so recording never allocates.
#[derive(Debug, Clone, Copy)]
struct Event {
    /// Nanoseconds since the trace epoch.
    ts_ns: u64,
    /// Span duration in nanoseconds (0 for counter samples).
    dur_ns: u64,
    /// Counter value (0.0 for spans).
    value: f64,
    name: &'static str,
    kind: Kind,
}

/// A bounded per-thread event ring.
#[derive(Debug, Default)]
struct Ring {
    events: Vec<Event>,
    /// Overwrite cursor once `events` is full.
    next: usize,
    /// Events lost to overwriting since the last [`start`].
    overwritten: u64,
}

impl Ring {
    fn push(&mut self, e: Event) {
        if self.events.len() < MAX_EVENTS_PER_THREAD {
            self.events.push(e);
        } else {
            self.events[self.next] = e;
            self.next = (self.next + 1) % MAX_EVENTS_PER_THREAD;
            self.overwritten += 1;
        }
    }

    fn clear(&mut self) {
        self.events.clear();
        self.next = 0;
        self.overwritten = 0;
    }
}

/// One thread's buffer. Only the owning thread pushes; export (and the
/// [`start`] reset) lock from outside, so the mutex is uncontended on the
/// hot path.
#[derive(Debug)]
struct ThreadBuf {
    tid: u32,
    ring: Mutex<Ring>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

fn buffers() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static BUFFERS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    BUFFERS.get_or_init(|| Mutex::new(Vec::new()))
}

/// The instant all timestamps are measured from. Set once, at the first
/// [`start`]; later trace sessions keep the same epoch (timestamps stay
/// monotonic across sessions, which Chrome handles fine).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static TL_BUF: Arc<ThreadBuf> = {
        let buf = Arc::new(ThreadBuf {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            ring: Mutex::new(Ring::default()),
        });
        buffers().lock().unwrap().push(Arc::clone(&buf));
        buf
    };
}

/// Whether event collection is armed. Always `false` when compiled with
/// the `off` feature.
#[inline(always)]
pub fn active() -> bool {
    #[cfg(feature = "off")]
    {
        false
    }
    #[cfg(not(feature = "off"))]
    {
        ACTIVE.load(Ordering::Relaxed)
    }
}

/// Arms collection, clearing anything previously recorded. A no-op under
/// the `off` feature.
pub fn start() {
    if cfg!(feature = "off") {
        return;
    }
    epoch(); // Pin the timebase before the first event.
    for buf in buffers().lock().unwrap().iter() {
        buf.ring.lock().unwrap().clear();
    }
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Disarms collection. Already-recorded events stay available for export.
pub fn stop() {
    ACTIVE.store(false, Ordering::SeqCst);
}

fn push(e: Event) {
    TL_BUF.with(|buf| buf.ring.lock().unwrap().push(e));
}

/// Records a completed span. Called by the [`crate::span`] guard on drop;
/// `start` is the span's entry instant.
#[inline]
pub(crate) fn record_span(name: &'static str, start: Instant, dur_ns: u64) {
    let ts_ns = start.duration_since(epoch()).as_nanos() as u64;
    push(Event { ts_ns, dur_ns, value: 0.0, name, kind: Kind::Span });
}

/// Records a counter sample at the current instant — rendered by Chrome
/// as a stepped value track. Cheap no-op while tracing is inactive, so
/// hot paths may call it unconditionally.
#[inline]
pub fn sample(name: &'static str, value: f64) {
    if !active() {
        return;
    }
    let ts_ns = Instant::now().duration_since(epoch()).as_nanos() as u64;
    push(Event { ts_ns, dur_ns: 0, value, name, kind: Kind::Counter });
}

/// A summary of recorded events, for tests and reporting: per-name span
/// counts, per-name counter-sample counts, thread count, overwritten
/// events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Completed-span events by span name.
    pub span_counts: BTreeMap<String, u64>,
    /// Counter samples by counter name.
    pub counter_counts: BTreeMap<String, u64>,
    /// Threads that recorded at least one event.
    pub threads: usize,
    /// Events lost to ring overwriting.
    pub overwritten: u64,
}

/// Collects `(tid, event)` pairs from every thread buffer, sorted by
/// timestamp then thread id so export is deterministic for a fixed event
/// set.
fn collect() -> (Vec<(u32, Event)>, u64) {
    let mut all = Vec::new();
    let mut overwritten = 0;
    for buf in buffers().lock().unwrap().iter() {
        let ring = buf.ring.lock().unwrap();
        overwritten += ring.overwritten;
        all.extend(ring.events.iter().map(|&e| (buf.tid, e)));
    }
    all.sort_by(|a, b| (a.1.ts_ns, a.0, a.1.name).cmp(&(b.1.ts_ns, b.0, b.1.name)));
    (all, overwritten)
}

/// Summarises everything recorded so far.
pub fn summary() -> TraceSummary {
    let (events, overwritten) = collect();
    let mut s = TraceSummary { overwritten, ..TraceSummary::default() };
    let mut tids = std::collections::BTreeSet::new();
    for (tid, e) in &events {
        tids.insert(*tid);
        let map = match e.kind {
            Kind::Span => &mut s.span_counts,
            Kind::Counter => &mut s.counter_counts,
        };
        *map.entry(e.name.to_string()).or_insert(0) += 1;
    }
    s.threads = tids.len();
    s
}

/// Serialises everything recorded so far as a Chrome trace format JSON
/// object: a `traceEvents` array of complete (`ph: "X"`) and counter
/// (`ph: "C"`) events with `pid`/`tid`/`ts` (microseconds) fields, loadable
/// by `chrome://tracing` and Perfetto.
pub fn export_chrome() -> String {
    let (events, overwritten) = collect();
    let mut trace_events = Vec::with_capacity(events.len());
    for (tid, e) in &events {
        let mut o = BTreeMap::new();
        o.insert("name".to_string(), Json::Str(e.name.to_string()));
        o.insert("cat".to_string(), Json::Str("wb".to_string()));
        o.insert("pid".to_string(), Json::Num(1.0));
        o.insert("tid".to_string(), Json::Num(*tid as f64));
        o.insert("ts".to_string(), Json::Num(e.ts_ns as f64 / 1_000.0));
        match e.kind {
            Kind::Span => {
                o.insert("ph".to_string(), Json::Str("X".to_string()));
                o.insert("dur".to_string(), Json::Num(e.dur_ns as f64 / 1_000.0));
            }
            Kind::Counter => {
                o.insert("ph".to_string(), Json::Str("C".to_string()));
                let mut args = BTreeMap::new();
                args.insert("value".to_string(), Json::Num(e.value));
                o.insert("args".to_string(), Json::Obj(args));
            }
        }
        trace_events.push(Json::Obj(o));
    }
    let mut other = BTreeMap::new();
    other.insert("overwritten_events".to_string(), Json::Num(overwritten as f64));
    let mut root = BTreeMap::new();
    root.insert("traceEvents".to_string(), Json::Arr(trace_events));
    root.insert("displayTimeUnit".to_string(), Json::Str("ms".to_string()));
    root.insert("otherData".to_string(), Json::Obj(other));
    Json::Obj(root).render()
}

/// Writes [`export_chrome`] output to `path`.
pub fn write_chrome(path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
    std::fs::write(path, export_chrome())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    // Trace tests share the global ACTIVE flag and buffers with each
    // other (and spans interact with the metrics enabled flag), so they
    // serialise on the same lock the metric tests use.

    #[test]
    fn span_guard_feeds_trace_when_active() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        start();
        {
            let _s = crate::span::enter("test.trace.fed");
            std::thread::sleep(Duration::from_millis(1));
        }
        stop();
        let s = summary();
        assert_eq!(s.span_counts.get("test.trace.fed"), Some(&1));
    }

    #[test]
    fn inactive_trace_records_nothing() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        start();
        stop();
        {
            let _s = crate::span::enter("test.trace.inactive");
        }
        sample("test.trace.inactive_sample", 1.0);
        let s = summary();
        assert!(!s.span_counts.contains_key("test.trace.inactive"));
        assert!(!s.counter_counts.contains_key("test.trace.inactive_sample"));
    }

    #[test]
    fn start_clears_previous_session() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        start();
        sample("test.trace.stale", 1.0);
        stop();
        start();
        stop();
        assert!(!summary().counter_counts.contains_key("test.trace.stale"));
    }

    #[test]
    fn export_is_chrome_trace_shaped() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        start();
        {
            let _s = crate::span::enter("test.trace.export");
            std::thread::sleep(Duration::from_millis(1));
        }
        sample("test.trace.export_counter", 42.0);
        stop();
        let text = export_chrome();
        // Round-trips through our own parser…
        let v = Json::parse(&text).expect("trace JSON parses");
        let events = v.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
        let mut saw_span = false;
        let mut saw_counter = false;
        for e in events {
            let ph = match e.get("ph") {
                Some(Json::Str(s)) => s.as_str(),
                _ => panic!("event missing ph"),
            };
            assert!(e.get("ts").and_then(Json::as_num).is_some(), "event missing ts");
            assert!(e.get("pid").and_then(Json::as_num).is_some(), "event missing pid");
            assert!(e.get("tid").and_then(Json::as_num).is_some(), "event missing tid");
            match (ph, e.get("name")) {
                ("X", Some(Json::Str(n))) if n == "test.trace.export" => {
                    assert!(e.get("dur").and_then(Json::as_num).unwrap() > 0.0);
                    saw_span = true;
                }
                ("C", Some(Json::Str(n))) if n == "test.trace.export_counter" => {
                    let args = e.get("args").expect("counter args");
                    assert_eq!(args.get("value").and_then(Json::as_num), Some(42.0));
                    saw_counter = true;
                }
                _ => {}
            }
        }
        assert!(saw_span, "span event missing from {text}");
        assert!(saw_counter, "counter event missing from {text}");
    }

    #[test]
    fn worker_threads_get_distinct_tids() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        start();
        {
            let _s = crate::span::enter("test.trace.tid_main");
        }
        std::thread::spawn(|| {
            let _s = crate::span::enter("test.trace.tid_worker");
        })
        .join()
        .unwrap();
        stop();
        let (events, _) = collect();
        let main_tid = events
            .iter()
            .find(|(_, e)| e.name == "test.trace.tid_main")
            .map(|(t, _)| *t)
            .expect("main event");
        let worker_tid = events
            .iter()
            .find(|(_, e)| e.name == "test.trace.tid_worker")
            .map(|(t, _)| *t)
            .expect("worker event");
        assert_ne!(main_tid, worker_tid);
    }

    #[test]
    fn concurrent_overflow_accounts_every_overwrite_exactly() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        start();
        const THREADS: u64 = 4;
        const EXTRA: u64 = 100;
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..(MAX_EVENTS_PER_THREAD as u64 + EXTRA) {
                        sample("test.trace.flood", 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        stop();
        // Rings are per-thread, so the drop accounting is exact even under
        // concurrency: each thread overflowed by exactly EXTRA.
        let s = summary();
        assert_eq!(s.overwritten, THREADS * EXTRA);
        assert_eq!(
            s.counter_counts.get("test.trace.flood"),
            Some(&(THREADS * MAX_EVENTS_PER_THREAD as u64)),
            "every surviving event is still in its ring"
        );
        // The flooded export is still one valid JSON document and carries
        // the loss count so a reader knows the timeline is incomplete.
        let text = export_chrome();
        let v = Json::parse(&text).expect("flooded trace still parses");
        assert_eq!(
            v.get("otherData").and_then(|o| o.get("overwritten_events")).and_then(Json::as_num),
            Some((THREADS * EXTRA) as f64)
        );
    }

    #[test]
    fn ring_overwrites_oldest_past_capacity() {
        let mut ring = Ring::default();
        for i in 0..(MAX_EVENTS_PER_THREAD as u64 + 10) {
            ring.push(Event {
                ts_ns: i,
                dur_ns: 0,
                value: 0.0,
                name: "test.trace.ring",
                kind: Kind::Counter,
            });
        }
        assert_eq!(ring.events.len(), MAX_EVENTS_PER_THREAD);
        assert_eq!(ring.overwritten, 10);
        // The oldest timestamps were overwritten by the newest.
        assert!(ring
            .events
            .iter()
            .all(|e| e.ts_ns >= 10 || e.ts_ns < MAX_EVENTS_PER_THREAD as u64));
        assert!(ring.events.iter().any(|e| e.ts_ns == MAX_EVENTS_PER_THREAD as u64 + 9));
    }
}
