//! Bounded retry with exponential backoff and decorrelated jitter.
//!
//! Checkpoint, metrics and trace file writes are the call sites: transient
//! I/O failures (full pipe, busy volume, injected faults) should be
//! retried a few times with growing, jittered sleeps rather than either
//! crashing the run or hammering the filesystem in a tight loop.
//!
//! The schedule is the decorrelated-jitter variant of exponential
//! backoff: each delay is drawn uniformly from `[base, prev * 3]` and
//! clamped to `cap`, so consecutive retries decorrelate (two processes
//! that failed together do not retry in lockstep) while the expected
//! delay still grows geometrically. The jitter stream is seeded SplitMix64,
//! so a fixed [`BackoffConfig::seed`] reproduces the exact schedule —
//! chaos tests depend on this.
//!
//! Metrics: `obs.retry.attempts` (re-attempts after a failure),
//! `obs.retry.exhausted` (operations that failed every attempt) and the
//! `obs.retry.sleep_ms` histogram of the delays actually slept.

use std::time::Duration;

/// Parameters of one retry schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// Smallest delay, and the lower bound of every jittered draw.
    pub base: Duration,
    /// Largest delay; every draw is clamped here. The cap also bounds the
    /// schedule's total: `max_attempts - 1` sleeps of at most `cap` each.
    pub cap: Duration,
    /// Total tries, including the first. `1` means no retries at all.
    pub max_attempts: u32,
    /// Seed of the jitter stream; a fixed seed reproduces the schedule.
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> BackoffConfig {
        BackoffConfig {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            max_attempts: 4,
            seed: 0,
        }
    }
}

/// The delay sequence of one operation's retries. [`Backoff::next_delay`]
/// yields `max_attempts - 1` delays, then `None`.
#[derive(Debug, Clone)]
pub struct Backoff {
    cfg: BackoffConfig,
    prev_ms: f64,
    issued: u32,
    rng: u64,
}

impl Backoff {
    /// Starts a fresh schedule.
    pub fn new(cfg: BackoffConfig) -> Backoff {
        Backoff {
            cfg,
            prev_ms: cfg.base.as_secs_f64() * 1e3,
            issued: 0,
            // Offset the seed so 0 is not the SplitMix64 fixed point.
            rng: cfg.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// The next delay to sleep before re-attempting, or `None` once the
    /// attempt budget is exhausted.
    pub fn next_delay(&mut self) -> Option<Duration> {
        if self.issued + 1 >= self.cfg.max_attempts {
            return None;
        }
        self.issued += 1;
        let base_ms = self.cfg.base.as_secs_f64() * 1e3;
        let cap_ms = self.cfg.cap.as_secs_f64() * 1e3;
        // uniform(base, max(base, prev * 3)), clamped to cap.
        let hi = (self.prev_ms * 3.0).max(base_ms);
        let ms = (base_ms + self.unit() * (hi - base_ms)).min(cap_ms);
        self.prev_ms = ms;
        Some(Duration::from_secs_f64(ms / 1e3))
    }

    fn unit(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs `op` up to [`BackoffConfig::max_attempts`] times, sleeping the
/// backoff schedule between failures. Returns the first success, or the
/// last error once the budget is exhausted. Each re-attempt is logged at
/// warn with `what` and the error that caused it.
pub fn retry<T, E: std::fmt::Display>(
    what: &str,
    cfg: BackoffConfig,
    mut op: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let mut backoff = Backoff::new(cfg);
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => match backoff.next_delay() {
                Some(delay) => {
                    crate::counter!("obs.retry.attempts");
                    crate::histogram!("obs.retry.sleep_ms", delay.as_secs_f64() * 1e3);
                    crate::warn!(
                        "{what} failed ({e}); retrying in {:.0}ms",
                        delay.as_secs_f64() * 1e3
                    );
                    std::thread::sleep(delay);
                }
                None => {
                    crate::counter!("obs.retry.exhausted");
                    crate::error!("{what} failed after {} attempts: {e}", cfg.max_attempts);
                    return Err(e);
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn cfg() -> BackoffConfig {
        BackoffConfig {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(8),
            max_attempts: 5,
            seed: 7,
        }
    }

    #[test]
    fn yields_max_attempts_minus_one_delays() {
        let mut b = Backoff::new(cfg());
        let delays: Vec<_> = std::iter::from_fn(|| b.next_delay()).collect();
        assert_eq!(delays.len(), 4);
    }

    #[test]
    fn single_attempt_never_sleeps() {
        let mut b = Backoff::new(BackoffConfig { max_attempts: 1, ..cfg() });
        assert_eq!(b.next_delay(), None);
    }

    #[test]
    fn retry_returns_first_success() {
        let calls = AtomicU32::new(0);
        let out: Result<u32, std::io::Error> =
            retry("test op", cfg(), || match calls.fetch_add(1, Ordering::SeqCst) {
                0 | 1 => Err(std::io::Error::other("transient")),
                n => Ok(n),
            });
        assert_eq!(out.unwrap(), 2);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn retry_surfaces_last_error_when_exhausted() {
        let calls = AtomicU32::new(0);
        let out: Result<(), String> = retry("test op", cfg(), || {
            Err(format!("fail #{}", calls.fetch_add(1, Ordering::SeqCst)))
        });
        assert_eq!(out.unwrap_err(), "fail #4");
        assert_eq!(calls.load(Ordering::SeqCst), 5, "max_attempts tries total");
    }
}
