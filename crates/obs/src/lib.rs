#![warn(missing_docs)]
//! # wb-obs
//!
//! Dependency-free observability for the Webpage Briefing workspace:
//! structured leveled logging, a global metrics registry and RAII span
//! timers. Every other crate may depend on this one, so it is std-only
//! (hand-rolled like the vendor stand-ins — the build environment has no
//! registry access).
//!
//! ## Logging
//!
//! Leveled (`error!` … `trace!`), scoped by `target` (the emitting module
//! path) and configurable at runtime:
//!
//! ```
//! wb_obs::log::set_level(wb_obs::log::Level::Info);
//! wb_obs::info!("training {} epochs", 12);
//! ```
//!
//! The `WB_LOG` environment variable seeds the configuration, e.g.
//! `WB_LOG=info`, `WB_LOG=warn,wb_tensor=trace` or
//! `WB_LOG=debug,wb_core::trainer=off`. Output goes to stderr by default,
//! or to a file via [`log::set_log_file`].
//!
//! ## Metrics
//!
//! A process-global registry of counters, gauges and fixed-bucket
//! histograms. The macros cache the registry lookup in a per-call-site
//! static, so the steady-state cost of a hit is one atomic load (the
//! enabled flag) plus one relaxed `fetch_add`:
//!
//! ```
//! wb_obs::counter!("tensor.matmul.calls.nn");
//! wb_obs::gauge!("optim.lr", 0.01);
//! wb_obs::histogram!("train.epoch.loss", 0.75);
//! ```
//!
//! [`metrics::snapshot`] freezes everything into a [`metrics::Snapshot`]
//! that serialises to JSON ([`metrics::Snapshot::to_json`]) and parses
//! back ([`metrics::Snapshot::from_json`]); [`report::render`] turns a
//! snapshot into the table `wb report` prints.
//!
//! ## Spans
//!
//! RAII wall-clock timers that nest per thread and aggregate into a
//! flamegraph-style self/total report:
//!
//! ```
//! {
//!     let _epoch = wb_obs::span!("train.epoch");
//!     let _step = wb_obs::span!("train.step");
//!     // work…
//! } // drop order records step inside epoch
//! ```
//!
//! Each span records its total duration into a histogram named after the
//! span (microseconds) and its `(count, total, self)` aggregate under its
//! `/`-joined nesting path, so `wb report` can show where the time
//! actually went.
//!
//! ## Tracing
//!
//! [`trace`] records an event-level timeline on top of the same spans:
//! arm it with [`trace::start`], and every span guard drop adds a
//! timestamped complete event to a per-thread ring buffer (plus optional
//! counter samples via [`trace::sample`]). [`trace::export_chrome`]
//! serialises the timeline in Chrome trace format for
//! `chrome://tracing`/Perfetto; the `wb` CLI exposes it as `--trace-out`.
//!
//! ## Determinism and overhead
//!
//! Instrumentation reads the clock and bumps atomics; it never touches
//! model math, RNG draws or parallel reduction order, so any observable
//! output of the system is byte-identical with observability on or off
//! (asserted by `tests/cli.rs`). [`set_enabled`]`(false)` reduces every
//! record to a single atomic load; compiling with the `off` feature
//! removes even that.

pub mod alloc;
pub mod flame;
pub mod json;
pub mod log;
pub mod metrics;
pub mod procstat;
pub mod profile;
pub mod prometheus;
pub mod report;
pub mod retry;
pub mod span;
pub mod trace;
pub mod window;

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables metric/span recording (logging has its
/// own level control). Disabling reduces every macro to one atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric/span recording is active. Always `false` when compiled
/// with the `off` feature.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "off")]
    {
        false
    }
    #[cfg(not(feature = "off"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
}

/// Increments a named counter (by 1, or by an explicit amount).
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, 1)
    };
    ($name:expr, $n:expr) => {{
        static __SLOT: $crate::metrics::Cached<$crate::metrics::Counter> =
            $crate::metrics::Cached::new();
        __SLOT.with($name, |__m| __m.add($n as u64));
    }};
}

/// Sets a named gauge to a value.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $v:expr) => {{
        static __SLOT: $crate::metrics::Cached<$crate::metrics::Gauge> =
            $crate::metrics::Cached::new();
        __SLOT.with($name, |__m| __m.set($v as f64));
    }};
}

/// Raises a named gauge to a value if it is larger than the current one —
/// a high-watermark gauge (peak memory, deepest queue). Re-arm a
/// watermark by setting the underlying gauge back to zero.
#[macro_export]
macro_rules! gauge_max {
    ($name:expr, $v:expr) => {{
        static __SLOT: $crate::metrics::Cached<$crate::metrics::Gauge> =
            $crate::metrics::Cached::new();
        __SLOT.with($name, |__m| __m.set_max($v as f64));
    }};
}

/// Records an observation into a named fixed-bucket histogram.
#[macro_export]
macro_rules! histogram {
    ($name:expr, $v:expr) => {{
        static __SLOT: $crate::metrics::Cached<$crate::metrics::Histogram> =
            $crate::metrics::Cached::new();
        __SLOT.with($name, |__m| __m.observe($v as f64));
    }};
}

/// Increments a named sliding-window counter (by 1, or by an explicit
/// amount). Windowed metrics answer "what is happening *now*" — see
/// [`window`]; pair with a [`counter!`] when the cumulative total also
/// matters (the window counter keeps its own total too).
#[macro_export]
macro_rules! window_counter {
    ($name:expr) => {
        $crate::window_counter!($name, 1)
    };
    ($name:expr, $n:expr) => {{
        static __SLOT: $crate::metrics::Cached<$crate::window::WindowCounter> =
            $crate::metrics::Cached::new();
        __SLOT.with($name, |__m| __m.add($n as u64));
    }};
}

/// Records an observation into a named sliding-window histogram (10 s and
/// 60 s views; see [`window`]).
#[macro_export]
macro_rules! window_histogram {
    ($name:expr, $v:expr) => {{
        static __SLOT: $crate::metrics::Cached<$crate::window::WindowHistogram> =
            $crate::metrics::Cached::new();
        __SLOT.with($name, |__m| __m.observe($v as f64));
    }};
}

/// Opens an RAII span timer; bind it (`let _span = …`) so it lives to the
/// end of the scope. `let _ = span!(…)` drops immediately and times
/// nothing.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
}

// The enabled-flag behaviour is covered by
// `metrics::tests::disabled_macro_records_nothing`. Tests that toggle or
// depend on the global flag serialise on this lock so the parallel test
// runner cannot interleave them.
#[cfg(test)]
pub(crate) static TEST_FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
