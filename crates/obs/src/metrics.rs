//! The global metrics registry: counters, gauges and fixed-bucket
//! histograms.
//!
//! Registration takes a short write lock; recording is lock-free — the
//! `counter!`/`gauge!`/`histogram!` macros cache the registered handle in
//! a per-call-site static, so the steady-state hot path is one atomic
//! load of the enabled flag plus one relaxed atomic RMW. Counter
//! increments are exact under any interleaving ([`Counter::add`] is a
//! `fetch_add`); histogram bucket counts are exact too, while the running
//! `sum` is a CAS loop whose float addition order depends on thread
//! interleaving (documented tolerance: metrics, not math).

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` (exact under concurrency).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins instantaneous measurement.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { bits: AtomicU64::new(0f64.to_bits()) }
    }
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` only if `v` exceeds the current value — a
    /// high-watermark update, exact under concurrency (CAS loop). Callers
    /// re-arm a watermark by [`Gauge::set`]ting it back to zero.
    #[inline]
    pub fn set_max(&self, v: f64) {
        atomic_f64_extreme(&self.bits, v, |new, cur| new > cur);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Default histogram bucket upper bounds: a 1–2–5 ladder per decade from
/// `1e-6` to `1e9`, wide enough for losses, gradient norms and
/// microsecond timings alike. Values above the last bound land in an
/// overflow bucket.
pub fn default_buckets() -> Vec<f64> {
    let mut bounds = Vec::with_capacity(48);
    for exp in -6i32..=9 {
        for m in [1.0f64, 2.0, 5.0] {
            bounds.push(m * 10f64.powi(exp));
        }
    }
    bounds
}

/// A fixed-bucket histogram with exact per-bucket counts plus running
/// count/sum/min/max.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// One slot per bound, plus a trailing overflow slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bucket bounds must be increasing");
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation. A value `v` lands in the first bucket
    /// whose upper bound satisfies `v <= bound` (bounds are inclusive
    /// upper edges), or in the overflow bucket past the last bound.
    pub fn observe(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_bits, v);
        atomic_f64_extreme(&self.min_bits, v, |new, cur| new < cur);
        atomic_f64_extreme(&self.max_bits, v, |new, cur| new > cur);
    }

    /// Freezes the histogram into a snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let mut buckets = Vec::new();
        for (i, slot) in self.buckets.iter().enumerate() {
            let n = slot.load(Ordering::Relaxed);
            if n > 0 {
                // The overflow slot is reported with an infinite edge,
                // rendered as the largest finite f64 so JSON stays valid.
                let le = self.bounds.get(i).copied().unwrap_or(f64::MAX);
                buckets.push((le, n));
            }
        }
        HistogramSnapshot {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: (count > 0).then(|| f64::from_bits(self.min_bits.load(Ordering::Relaxed))),
            max: (count > 0).then(|| f64::from_bits(self.max_bits.load(Ordering::Relaxed))),
            buckets,
        }
    }
}

fn atomic_f64_add(bits: &AtomicU64, v: f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

fn atomic_f64_extreme(bits: &AtomicU64, v: f64, wins: impl Fn(f64, f64) -> bool) {
    let mut cur = bits.load(Ordering::Relaxed);
    while wins(v, f64::from_bits(cur)) {
        match bits.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

/// Aggregated wall-clock time of one span nesting path.
#[derive(Debug, Default)]
pub struct SpanStat {
    /// Number of completed spans at this path.
    pub count: AtomicU64,
    /// Total nanoseconds including children.
    pub total_ns: AtomicU64,
    /// Nanoseconds excluding time attributed to same-thread child spans.
    pub self_ns: AtomicU64,
    /// Heap bytes requested while this span (and not a child) was the
    /// active frame. Zero unless the binary installs
    /// [`crate::alloc::Counting`] and arms tracking.
    pub alloc_bytes: AtomicU64,
    /// Allocation events attributed the same way.
    pub alloc_count: AtomicU64,
}

impl SpanStat {
    /// Records one completed span with its self-attributed allocations.
    pub fn record(&self, total_ns: u64, self_ns: u64, alloc_bytes: u64, alloc_count: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(total_ns, Ordering::Relaxed);
        self.self_ns.fetch_add(self_ns, Ordering::Relaxed);
        if alloc_bytes > 0 {
            self.alloc_bytes.fetch_add(alloc_bytes, Ordering::Relaxed);
        }
        if alloc_count > 0 {
            self.alloc_count.fetch_add(alloc_count, Ordering::Relaxed);
        }
    }
}

/// The process-global metric store.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    spans: RwLock<BTreeMap<String, Arc<SpanStat>>>,
}

fn get_or_insert<T>(
    map: &RwLock<BTreeMap<String, Arc<T>>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some(m) = map.read().unwrap().get(name) {
        return Arc::clone(m);
    }
    let mut w = map.write().unwrap();
    Arc::clone(w.entry(name.to_string()).or_insert_with(|| Arc::new(make())))
}

impl Registry {
    /// The counter registered under `name` (creating it on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name, Counter::default)
    }

    /// The gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name, Gauge::default)
    }

    /// The histogram registered under `name`, with [`default_buckets`].
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name, || Histogram::new(default_buckets()))
    }

    /// The histogram registered under `name`, created with explicit
    /// bucket upper bounds if it does not exist yet (an existing
    /// histogram keeps its original buckets).
    pub fn histogram_with(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name, || Histogram::new(bounds.to_vec()))
    }

    /// The span aggregate registered under a `/`-joined nesting path.
    pub fn span_stat(&self, path: &str) -> Arc<SpanStat> {
        get_or_insert(&self.spans, path, SpanStat::default)
    }

    /// Drops every registered metric. Only meant for tests; handles cached
    /// by macro call sites keep recording into the detached metrics, so
    /// after a reset those call sites no longer appear in snapshots.
    pub fn reset(&self) {
        self.counters.write().unwrap().clear();
        self.gauges.write().unwrap().clear();
        self.histograms.write().unwrap().clear();
        self.spans.write().unwrap().clear();
    }
}

/// The global registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// A per-call-site cache of one registered metric handle, used by the
/// recording macros. `with` is a no-op while recording is disabled (or
/// compiled out with the `off` feature).
pub struct Cached<T> {
    #[cfg_attr(feature = "off", allow(dead_code))]
    slot: OnceLock<Arc<T>>,
}

impl<T> Default for Cached<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Cached<T> {
    /// An empty cache (const, so it can live in a macro-expanded static).
    pub const fn new() -> Self {
        Cached { slot: OnceLock::new() }
    }
}

/// Metric kinds registrable through [`Cached`].
pub trait Registered: Sized {
    /// Looks up or creates the metric under `name`.
    fn register(name: &str) -> Arc<Self>;
}

impl Registered for Counter {
    fn register(name: &str) -> Arc<Self> {
        registry().counter(name)
    }
}

impl Registered for Gauge {
    fn register(name: &str) -> Arc<Self> {
        registry().gauge(name)
    }
}

impl Registered for Histogram {
    fn register(name: &str) -> Arc<Self> {
        registry().histogram(name)
    }
}

impl<T: Registered> Cached<T> {
    /// Runs `f` on the cached metric, registering it on first use.
    #[inline]
    pub fn with(&self, name: &str, f: impl FnOnce(&T)) {
        #[cfg(feature = "off")]
        {
            let _ = (name, f);
        }
        #[cfg(not(feature = "off"))]
        {
            if !crate::enabled() {
                return;
            }
            f(self.slot.get_or_init(|| T::register(name)));
        }
    }
}

/// One histogram, frozen.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (absent when `count == 0`).
    pub min: Option<f64>,
    /// Largest observation (absent when `count == 0`).
    pub max: Option<f64>,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// inside the bucket containing the target rank.
    ///
    /// The snapshot only keeps non-empty buckets, so a bucket's lower edge
    /// is taken as the previous non-empty bucket's upper bound (or the
    /// recorded minimum for the first), and the overflow bucket's upper
    /// edge as the recorded maximum. With the default 1–2–5 ladder the
    /// estimate is therefore within one bucket span of the true value —
    /// an *estimate*, fit for dashboards and regression gates, not exact
    /// order statistics. Returns `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.quantile_marked(q).map(|(v, _)| v)
    }

    /// Like [`HistogramSnapshot::quantile`], but also reports whether the
    /// target rank landed in the open-ended overflow bucket (past the
    /// last configured bound). There the histogram has no upper edge —
    /// the estimate interpolates toward the recorded maximum, which under
    /// saturation is itself only a lower bound on the tail — so callers
    /// should present a `true` flag as an open-ended "at least" estimate
    /// (`wb report` renders it with a `>` marker).
    pub fn quantile_marked(&self, q: f64) -> Option<(f64, bool)> {
        if self.count == 0 {
            return None;
        }
        let (min, max) = (self.min?, self.max?);
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        let mut lower = min;
        for &(le, n) in &self.buckets {
            let open_ended = le == f64::MAX;
            let upper = if open_ended { max } else { le.clamp(min, max) };
            if (cum + n) as f64 >= target {
                let frac = if n == 0 { 0.0 } else { (target - cum as f64) / n as f64 };
                return Some(((lower + frac * (upper - lower)).clamp(min, max), open_ended));
            }
            cum += n;
            lower = upper;
        }
        let open_ended = self.buckets.last().is_some_and(|&(le, _)| le == f64::MAX);
        Some((max, open_ended))
    }
}

/// One span path, frozen.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpanSnapshot {
    /// Completed spans at this path.
    pub count: u64,
    /// Total nanoseconds including children.
    pub total_ns: u64,
    /// Nanoseconds excluding same-thread children.
    pub self_ns: u64,
    /// Self-attributed heap bytes (`obs.alloc.*`; zero without the
    /// counting allocator).
    pub alloc_bytes: u64,
    /// Self-attributed allocation events.
    pub alloc_count: u64,
}

/// Everything in the registry at one moment, with deterministic ordering.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Milliseconds since the process observability epoch (see
    /// [`crate::window::epoch`]) at the moment the snapshot was taken.
    /// `wb report --diff` divides counter deltas by the uptime delta to
    /// derive rates. Zero in snapshots written before this field existed.
    pub uptime_ms: f64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span aggregates by `/`-joined nesting path.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

/// Freezes the global registry.
pub fn snapshot() -> Snapshot {
    let r = registry();
    let mut s = Snapshot {
        uptime_ms: crate::window::epoch().elapsed().as_secs_f64() * 1e3,
        ..Snapshot::default()
    };
    for (name, c) in r.counters.read().unwrap().iter() {
        s.counters.insert(name.clone(), c.get());
    }
    for (name, g) in r.gauges.read().unwrap().iter() {
        s.gauges.insert(name.clone(), g.get());
    }
    for (name, h) in r.histograms.read().unwrap().iter() {
        s.histograms.insert(name.clone(), h.snapshot());
    }
    let (mut alloc_bytes_sum, mut alloc_count_sum) = (0u64, 0u64);
    for (path, st) in r.spans.read().unwrap().iter() {
        let sp = SpanSnapshot {
            count: st.count.load(Ordering::Relaxed),
            total_ns: st.total_ns.load(Ordering::Relaxed),
            self_ns: st.self_ns.load(Ordering::Relaxed),
            alloc_bytes: st.alloc_bytes.load(Ordering::Relaxed),
            alloc_count: st.alloc_count.load(Ordering::Relaxed),
        };
        alloc_bytes_sum += sp.alloc_bytes;
        alloc_count_sum += sp.alloc_count;
        s.spans.insert(path.clone(), sp);
    }
    // Roll the per-span attribution up into process-wide counters so
    // dashboards see span-attributed allocator pressure without summing
    // the table themselves. Absent entirely while attribution is off.
    if alloc_count_sum > 0 {
        s.counters.insert("obs.alloc.bytes".to_string(), alloc_bytes_sum);
        s.counters.insert("obs.alloc.count".to_string(), alloc_count_sum);
    }
    s
}

impl Snapshot {
    /// Serialises the snapshot as deterministic JSON (sorted keys, shortest
    /// round-tripping float representation).
    pub fn to_json(&self) -> String {
        self.to_value().render()
    }

    fn to_value(&self) -> Json {
        let mut root = BTreeMap::new();
        root.insert("uptime_ms".to_string(), Json::Num(self.uptime_ms));
        root.insert(
            "counters".to_string(),
            Json::Obj(
                self.counters.iter().map(|(k, &v)| (k.clone(), Json::Num(v as f64))).collect(),
            ),
        );
        root.insert(
            "gauges".to_string(),
            Json::Obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Json::Num(v))).collect()),
        );
        let hists = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let mut o = BTreeMap::new();
                o.insert("count".to_string(), Json::Num(h.count as f64));
                o.insert("sum".to_string(), Json::Num(h.sum));
                if let Some(m) = h.min {
                    o.insert("min".to_string(), Json::Num(m));
                }
                if let Some(m) = h.max {
                    o.insert("max".to_string(), Json::Num(m));
                }
                o.insert(
                    "buckets".to_string(),
                    Json::Arr(
                        h.buckets
                            .iter()
                            .map(|&(le, n)| {
                                let mut b = BTreeMap::new();
                                b.insert("le".to_string(), Json::Num(le));
                                b.insert("count".to_string(), Json::Num(n as f64));
                                Json::Obj(b)
                            })
                            .collect(),
                    ),
                );
                (k.clone(), Json::Obj(o))
            })
            .collect();
        root.insert("histograms".to_string(), Json::Obj(hists));
        let spans = self
            .spans
            .iter()
            .map(|(k, sp)| {
                let mut o = BTreeMap::new();
                o.insert("count".to_string(), Json::Num(sp.count as f64));
                o.insert("total_ns".to_string(), Json::Num(sp.total_ns as f64));
                o.insert("self_ns".to_string(), Json::Num(sp.self_ns as f64));
                // Allocation attribution is opt-in; omit the fields when
                // empty so snapshots stay byte-identical with it off.
                if sp.alloc_count > 0 || sp.alloc_bytes > 0 {
                    o.insert("alloc_bytes".to_string(), Json::Num(sp.alloc_bytes as f64));
                    o.insert("alloc_count".to_string(), Json::Num(sp.alloc_count as f64));
                }
                (k.clone(), Json::Obj(o))
            })
            .collect();
        root.insert("spans".to_string(), Json::Obj(spans));
        Json::Obj(root)
    }

    /// Parses a snapshot previously produced by [`Snapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let v = Json::parse(text)?;
        let mut s = Snapshot {
            uptime_ms: v.get("uptime_ms").and_then(Json::as_num).unwrap_or(0.0),
            ..Snapshot::default()
        };
        if let Some(obj) = v.get("counters").and_then(Json::as_obj) {
            for (k, n) in obj {
                let n = n.as_num().ok_or_else(|| format!("counter `{k}` is not a number"))?;
                s.counters.insert(k.clone(), n as u64);
            }
        }
        if let Some(obj) = v.get("gauges").and_then(Json::as_obj) {
            for (k, n) in obj {
                let n = n.as_num().ok_or_else(|| format!("gauge `{k}` is not a number"))?;
                s.gauges.insert(k.clone(), n);
            }
        }
        if let Some(obj) = v.get("histograms").and_then(Json::as_obj) {
            for (k, h) in obj {
                let num = |field: &str| {
                    h.get(field)
                        .and_then(Json::as_num)
                        .ok_or_else(|| format!("histogram `{k}` missing `{field}`"))
                };
                let buckets = h
                    .get("buckets")
                    .and_then(Json::as_arr)
                    .unwrap_or(&[])
                    .iter()
                    .map(|b| {
                        let le = b.get("le").and_then(Json::as_num);
                        let n = b.get("count").and_then(Json::as_num);
                        match (le, n) {
                            (Some(le), Some(n)) => Ok((le, n as u64)),
                            _ => Err(format!("histogram `{k}` has a malformed bucket")),
                        }
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                s.histograms.insert(
                    k.clone(),
                    HistogramSnapshot {
                        count: num("count")? as u64,
                        sum: num("sum")?,
                        min: h.get("min").and_then(Json::as_num),
                        max: h.get("max").and_then(Json::as_num),
                        buckets,
                    },
                );
            }
        }
        if let Some(obj) = v.get("spans").and_then(Json::as_obj) {
            for (k, sp) in obj {
                let num = |field: &str| {
                    sp.get(field)
                        .and_then(Json::as_num)
                        .ok_or_else(|| format!("span `{k}` missing `{field}`"))
                };
                let opt = |field: &str| {
                    sp.get(field).and_then(Json::as_num).map(|n| n as u64).unwrap_or(0)
                };
                s.spans.insert(
                    k.clone(),
                    SpanSnapshot {
                        count: num("count")? as u64,
                        total_ns: num("total_ns")? as u64,
                        self_ns: num("self_ns")? as u64,
                        alloc_bytes: opt("alloc_bytes"),
                        alloc_count: opt("alloc_count"),
                    },
                );
            }
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = registry().counter("test.metrics.counter_counts");
        let before = c.get();
        c.add(3);
        c.add(1);
        assert_eq!(c.get(), before + 4);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let g = registry().gauge("test.metrics.gauge");
        g.set(1.5);
        g.set(-2.0);
        assert_eq!(g.get(), -2.0);
    }

    #[test]
    fn gauge_set_max_is_a_watermark() {
        let g = registry().gauge("test.metrics.gauge_max");
        g.set(0.0);
        g.set_max(5.0);
        g.set_max(3.0);
        assert_eq!(g.get(), 5.0);
        g.set_max(9.0);
        assert_eq!(g.get(), 9.0);
        // Re-arming resets the watermark.
        g.set(0.0);
        g.set_max(1.0);
        assert_eq!(g.get(), 1.0);
    }

    #[test]
    fn concurrent_set_max_keeps_global_peak() {
        use rayon::prelude::*;
        let g = registry().gauge("test.metrics.gauge_max_conc");
        g.set(0.0);
        let items: Vec<u64> = (1..=10_000).collect();
        items.par_iter().for_each(|&i| g.set_max(i as f64));
        assert_eq!(g.get(), 10_000.0);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = registry().histogram_with("test.metrics.quantile", &[10.0, 20.0, 50.0]);
        // 10 observations uniformly in (0, 10], 10 in (10, 20].
        for i in 1..=10 {
            h.observe(i as f64);
            h.observe(10.0 + i as f64);
        }
        let s = h.snapshot();
        // Median sits at the edge between the two buckets.
        let p50 = s.quantile(0.5).unwrap();
        assert!((p50 - 10.0).abs() < 1.0, "p50 = {p50}");
        // p25 falls mid-first-bucket, interpolated between min=1 and 10.
        let p25 = s.quantile(0.25).unwrap();
        assert!(p25 > 1.0 && p25 < 10.0, "p25 = {p25}");
        // Extremes clamp to observed min/max.
        assert_eq!(s.quantile(0.0).unwrap(), 1.0);
        assert_eq!(s.quantile(1.0).unwrap(), 20.0);
        // Empty histogram has no quantiles.
        let empty =
            HistogramSnapshot { count: 0, sum: 0.0, min: None, max: None, buckets: vec![] };
        assert_eq!(empty.quantile(0.5), None);
    }

    #[test]
    fn quantile_overflow_bucket_uses_max() {
        let h = registry().histogram_with("test.metrics.quantile_overflow", &[1.0]);
        h.observe(0.5);
        h.observe(100.0);
        h.observe(200.0);
        let s = h.snapshot();
        let p99 = s.quantile(0.99).unwrap();
        assert!(p99 <= 200.0 && p99 > 100.0, "p99 = {p99}");
    }

    #[test]
    fn quantile_marked_flags_open_ended_estimates() {
        let h = registry().histogram_with("test.metrics.quantile_marked", &[1.0]);
        h.observe(0.5);
        h.observe(100.0);
        h.observe(200.0);
        let s = h.snapshot();
        // p99 lands in the overflow bucket: the estimate is open-ended.
        let (p99, open) = s.quantile_marked(0.99).unwrap();
        assert!(open, "p99 in overflow must be marked open-ended");
        assert!(p99 > 100.0, "p99 = {p99}");
        // A low quantile resolved by the bounded bucket is not marked.
        let (p10, open) = s.quantile_marked(0.1).unwrap();
        assert!(!open, "p10 = {p10} should resolve in a bounded bucket");
        // A histogram whose values never overflow is never marked.
        let h2 = registry().histogram_with("test.metrics.quantile_unmarked", &[10.0, 100.0]);
        h2.observe(5.0);
        h2.observe(50.0);
        let s2 = h2.snapshot();
        assert!(!s2.quantile_marked(0.99).unwrap().1);
    }

    #[test]
    fn snapshot_records_uptime_and_roundtrips_it() {
        let s = snapshot();
        assert!(s.uptime_ms >= 0.0);
        let parsed = Snapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed.uptime_ms, s.uptime_ms);
        // Snapshots written before the field existed parse as zero.
        let old = Snapshot::from_json(r#"{"counters":{},"gauges":{}}"#).unwrap();
        assert_eq!(old.uptime_ms, 0.0);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_edges() {
        let h = registry().histogram_with("test.metrics.hist_bounds", &[1.0, 10.0, 100.0]);
        // Exactly on an edge lands in that bucket; just above moves on.
        for v in [0.5, 1.0, 1.0001, 10.0, 99.0, 100.0, 1e6] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.buckets, vec![(1.0, 2), (10.0, 2), (100.0, 2), (f64::MAX, 1)]);
        assert_eq!(s.min, Some(0.5));
        assert_eq!(s.max, Some(1e6));
        assert!((s.sum - (0.5 + 1.0 + 1.0001 + 10.0 + 99.0 + 100.0 + 1e6)).abs() < 1e-9);
    }

    #[test]
    fn default_buckets_are_increasing_and_cover_microseconds_to_giga() {
        let b = default_buckets();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!(b[0] <= 1e-6 && *b.last().unwrap() >= 1e9);
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        use rayon::prelude::*;
        let c = registry().counter("test.metrics.concurrent");
        let before = c.get();
        let items: Vec<u64> = (0..10_000).collect();
        items.par_iter().for_each(|_| c.add(1));
        assert_eq!(c.get(), before + 10_000);
    }

    #[test]
    fn concurrent_histogram_counts_are_exact() {
        use rayon::prelude::*;
        let h = registry().histogram_with("test.metrics.concurrent_hist", &[10.0, 1e9]);
        let items: Vec<u64> = (0..5_000).collect();
        items.par_iter().for_each(|&i| h.observe(if i % 2 == 0 { 1.0 } else { 100.0 }));
        let s = h.snapshot();
        assert_eq!(s.count, 5_000);
        assert_eq!(s.buckets, vec![(10.0, 2_500), (1e9, 2_500)]);
        // Every observation is 1 or 100, so the CAS-summed total is exact
        // regardless of interleaving order (values are binary-exact).
        assert_eq!(s.sum, 2_500.0 * 101.0);
    }

    #[test]
    fn snapshot_json_roundtrips() {
        registry().counter("test.metrics.snap_counter").add(7);
        registry().gauge("test.metrics.snap_gauge").set(0.125);
        registry().histogram_with("test.metrics.snap_hist", &[1.0, 2.0]).observe(1.5);
        registry().span_stat("test.metrics.snap_span").record(1000, 900, 0, 0);
        registry().span_stat("test.metrics.snap_span_alloc").record(500, 400, 2048, 3);
        let s = snapshot();
        let parsed = Snapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(parsed, s);
        // Alloc fields round-trip when present and default to zero when
        // the snapshot predates them.
        assert_eq!(parsed.spans["test.metrics.snap_span_alloc"].alloc_bytes, 2048);
        let old =
            Snapshot::from_json(r#"{"spans":{"a":{"count":1,"total_ns":10,"self_ns":9}}}"#)
                .unwrap();
        assert_eq!(old.spans["a"].alloc_bytes, 0);
        assert_eq!(old.spans["a"].alloc_count, 0);
    }

    #[test]
    fn span_alloc_attribution_rolls_up_into_counters() {
        registry().span_stat("test.metrics.alloc_rollup").record(100, 100, 512, 2);
        let s = snapshot();
        assert!(s.counters.get("obs.alloc.bytes").copied().unwrap_or(0) >= 512);
        assert!(s.counters.get("obs.alloc.count").copied().unwrap_or(0) >= 2);
    }

    /// The hand-rolled writer must be real JSON — parse it with the
    /// vendored serde_json, which `wb report` relies on for nothing but
    /// whose parser is independent of ours.
    #[test]
    fn snapshot_json_is_valid_for_foreign_parsers() {
        registry().counter("test.metrics.foreign").add(1);
        let text = snapshot().to_json();
        let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert!(v.get("counters").is_some());
        assert!(v.get("histograms").is_some());
    }

    #[test]
    fn disabled_macro_records_nothing() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        let c = registry().counter("test.metrics.disabled");
        let before = c.get();
        crate::set_enabled(false);
        crate::counter!("test.metrics.disabled");
        crate::set_enabled(true);
        assert_eq!(c.get(), before);
        crate::counter!("test.metrics.disabled");
        assert_eq!(c.get(), before + 1);
    }
}
