//! Prometheus text exposition rendering for [`crate::metrics::Snapshot`].
//!
//! Dashboards and alerting almost universally speak the Prometheus
//! text exposition format (version 0.0.4): `# HELP`/`# TYPE` comment
//! lines followed by `name{labels} value` samples, with histograms
//! expanded into cumulative `_bucket{le="..."}` series plus `_sum` and
//! `_count`. [`render`] translates a frozen snapshot into that format so
//! `GET /metrics?format=prometheus` can be scraped directly — no client
//! library, no new dependency, just careful string assembly.
//!
//! ## Mapping
//!
//! | wb-obs            | Prometheus                                        |
//! |-------------------|---------------------------------------------------|
//! | counter `a.b.c`   | `wb_a_b_c` (TYPE counter)                         |
//! | gauge `a.b`       | `wb_a_b` (TYPE gauge)                             |
//! | histogram `a.b`   | `wb_a_b_bucket{le="..."}` (cumulative) + `_sum` + `_count`; the open-ended overflow bucket folds into `le="+Inf"` |
//! | span path `a/b`   | `wb_span_count`/`wb_span_total_ns`/`wb_span_self_ns` with a `path` label |
//! | snapshot uptime   | `wb_uptime_milliseconds` (TYPE gauge)             |
//!
//! Metric names are sanitised to `[a-zA-Z0-9_:]` (dots become
//! underscores) and prefixed `wb_`; label values are escaped per the
//! exposition spec (`\\`, `\"`, `\n`).

use crate::metrics::Snapshot;
use crate::window::WindowSnapshot;
use std::fmt::Write as _;

/// The Content-Type a scrape endpoint should serve this format under.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// Sanitises a wb-obs metric name into a Prometheus metric name:
/// `wb_` prefix, every character outside `[a-zA-Z0-9_:]` replaced by
/// `_`.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("wb_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline.
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats a sample value. Prometheus floats accept Rust's shortest
/// `Display` form; non-finite values spell as `+Inf`/`-Inf`/`NaN`.
fn num(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot in Prometheus text exposition format (0.0.4).
/// Output order is deterministic: uptime, counters, gauges, histograms,
/// spans, each alphabetical (inherited from the snapshot's sorted maps).
pub fn render(s: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str(
        "# HELP wb_uptime_milliseconds Milliseconds since the process observability epoch.\n",
    );
    out.push_str("# TYPE wb_uptime_milliseconds gauge\n");
    let _ = writeln!(out, "wb_uptime_milliseconds {}", num(s.uptime_ms));

    for (name, &v) in &s.counters {
        let pname = metric_name(name);
        let _ = writeln!(out, "# HELP {pname} wb-obs counter `{name}`.");
        let _ = writeln!(out, "# TYPE {pname} counter");
        let _ = writeln!(out, "{pname} {v}");
    }

    for (name, &v) in &s.gauges {
        let pname = metric_name(name);
        let _ = writeln!(out, "# HELP {pname} wb-obs gauge `{name}`.");
        let _ = writeln!(out, "# TYPE {pname} gauge");
        let _ = writeln!(out, "{pname} {}", num(v));
    }

    for (name, h) in &s.histograms {
        let pname = metric_name(name);
        let _ = writeln!(out, "# HELP {pname} wb-obs histogram `{name}`.");
        let _ = writeln!(out, "# TYPE {pname} histogram");
        // wb-obs snapshots keep per-bucket counts for non-empty buckets;
        // Prometheus wants cumulative counts over every emitted edge. The
        // overflow bucket (recorded with an f64::MAX edge) folds into the
        // mandatory +Inf bucket, which always equals the total count.
        let mut cum = 0u64;
        for &(le, n) in &h.buckets {
            cum += n;
            if le == f64::MAX {
                break; // folded into +Inf below
            }
            let _ = writeln!(out, "{pname}_bucket{{le=\"{}\"}} {cum}", num(le));
        }
        let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{pname}_sum {}", num(h.sum));
        let _ = writeln!(out, "{pname}_count {}", h.count);
    }

    if !s.spans.is_empty() {
        out.push_str("# HELP wb_span_count Completed spans at each nesting path.\n");
        out.push_str("# TYPE wb_span_count counter\n");
        for (path, sp) in &s.spans {
            let _ =
                writeln!(out, "wb_span_count{{path=\"{}\"}} {}", escape_label(path), sp.count);
        }
        out.push_str(
            "# HELP wb_span_total_ns Total nanoseconds (including children) per span path.\n",
        );
        out.push_str("# TYPE wb_span_total_ns counter\n");
        for (path, sp) in &s.spans {
            let _ = writeln!(
                out,
                "wb_span_total_ns{{path=\"{}\"}} {}",
                escape_label(path),
                sp.total_ns
            );
        }
        out.push_str("# HELP wb_span_self_ns Nanoseconds excluding same-thread children per span path.\n");
        out.push_str("# TYPE wb_span_self_ns counter\n");
        for (path, sp) in &s.spans {
            let _ = writeln!(
                out,
                "wb_span_self_ns{{path=\"{}\"}} {}",
                escape_label(path),
                sp.self_ns
            );
        }
    }
    out
}

/// Sanitises a windowed metric name: `wb_window_` prefix plus the same
/// character rules as [`metric_name`].
pub fn window_metric_name(name: &str) -> String {
    format!("wb_window_{}", &metric_name(name)[3..])
}

/// Renders a windowed snapshot ([`crate::window::snapshot`]) as
/// `wb_window_*` gauges, so a Prometheus scrape sees the same live view
/// `/varz` serves: per-window sums and per-second rates for every
/// windowed counter, and count plus p50/p90/p99 for every windowed
/// histogram. All families are gauges — window contents rise *and*
/// fall — with a `window="10s"|"60s"` label, mirroring the `10s`/`60s`
/// objects in `/varz`.
pub fn render_window(w: &WindowSnapshot) -> String {
    let mut out = String::new();
    for (name, c) in &w.counters {
        let pname = window_metric_name(name);
        let _ = writeln!(out, "# HELP {pname}_sum Events in the trailing window (`{name}`).");
        let _ = writeln!(out, "# TYPE {pname}_sum gauge");
        let _ = writeln!(out, "{pname}_sum{{window=\"10s\"}} {}", c.sum_10s);
        let _ = writeln!(out, "{pname}_sum{{window=\"60s\"}} {}", c.sum_60s);
        let _ = writeln!(out, "# HELP {pname}_per_sec Windowed per-second rate (`{name}`).");
        let _ = writeln!(out, "# TYPE {pname}_per_sec gauge");
        let _ = writeln!(out, "{pname}_per_sec{{window=\"10s\"}} {}", num(c.rate_10s));
        let _ = writeln!(out, "{pname}_per_sec{{window=\"60s\"}} {}", num(c.rate_60s));
    }
    for (name, h) in &w.histograms {
        let pname = window_metric_name(name);
        let _ = writeln!(out, "# HELP {pname} Windowed quantile estimates (`{name}`).");
        let _ = writeln!(out, "# TYPE {pname} gauge");
        for (label, hs) in [("10s", &h.w10s), ("60s", &h.w60s)] {
            for (q, qs) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                if let Some(v) = hs.quantile(q) {
                    let _ = writeln!(
                        out,
                        "{pname}{{window=\"{label}\",quantile=\"{qs}\"}} {}",
                        num(v)
                    );
                }
            }
        }
        let _ = writeln!(out, "# HELP {pname}_count Observations in the trailing window.");
        let _ = writeln!(out, "# TYPE {pname}_count gauge");
        let _ = writeln!(out, "{pname}_count{{window=\"10s\"}} {}", h.w10s.count);
        let _ = writeln!(out, "{pname}_count{{window=\"60s\"}} {}", h.w60s.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistogramSnapshot, SpanSnapshot};
    use crate::window::{WindowCounterSnapshot, WindowHistogramSnapshot};

    fn sample_snapshot() -> Snapshot {
        let mut s = Snapshot { uptime_ms: 1500.0, ..Snapshot::default() };
        s.counters.insert("serve.requests".into(), 42);
        s.gauges.insert("serve.queue.depth".into(), 3.0);
        s.histograms.insert(
            "serve.request.latency_us".into(),
            HistogramSnapshot {
                count: 6,
                sum: 1234.0,
                min: Some(1.0),
                max: Some(900.0),
                buckets: vec![(10.0, 2), (100.0, 3), (f64::MAX, 1)],
            },
        );
        s.spans.insert(
            "serve/brief".into(),
            SpanSnapshot { count: 4, total_ns: 1000, self_ns: 900, ..SpanSnapshot::default() },
        );
        s
    }

    #[test]
    fn names_are_sanitised_and_prefixed() {
        assert_eq!(metric_name("serve.request.latency_us"), "wb_serve_request_latency_us");
        assert_eq!(metric_name("a-b c"), "wb_a_b_c");
    }

    #[test]
    fn renders_type_and_help_for_every_family() {
        let text = render(&sample_snapshot());
        for family in [
            "wb_uptime_milliseconds",
            "wb_serve_requests",
            "wb_serve_queue_depth",
            "wb_serve_request_latency_us",
        ] {
            assert!(text.contains(&format!("# TYPE {family} ")), "missing TYPE for {family}");
            assert!(text.contains(&format!("# HELP {family} ")), "missing HELP for {family}");
        }
        assert!(text.contains("wb_serve_requests 42\n"));
        assert!(text.contains("wb_serve_queue_depth 3\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let text = render(&sample_snapshot());
        assert!(text.contains("wb_serve_request_latency_us_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("wb_serve_request_latency_us_bucket{le=\"100\"} 5\n"));
        // The f64::MAX overflow bucket folds into +Inf == total count.
        assert!(text.contains("wb_serve_request_latency_us_bucket{le=\"+Inf\"} 6\n"));
        assert!(!text.contains("179769313486231"), "raw f64::MAX must not leak");
        assert!(text.contains("wb_serve_request_latency_us_sum 1234\n"));
        assert!(text.contains("wb_serve_request_latency_us_count 6\n"));
    }

    #[test]
    fn bucket_counts_are_monotone_nondecreasing() {
        let text = render(&sample_snapshot());
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "bucket counts must be cumulative: {line}");
            last = n;
        }
    }

    #[test]
    fn span_paths_become_labels() {
        let text = render(&sample_snapshot());
        assert!(text.contains("wb_span_count{path=\"serve/brief\"} 4\n"));
        assert!(text.contains("wb_span_total_ns{path=\"serve/brief\"} 1000\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn empty_snapshot_still_renders_uptime() {
        let text = render(&Snapshot::default());
        assert!(text.starts_with("# HELP wb_uptime_milliseconds"));
        assert!(text.contains("wb_uptime_milliseconds 0\n"));
    }

    fn sample_window() -> WindowSnapshot {
        let mut w = WindowSnapshot::default();
        w.counters.insert(
            "serve.requests".into(),
            WindowCounterSnapshot {
                sum_10s: 50,
                sum_60s: 240,
                rate_10s: 5.0,
                rate_60s: 4.0,
                total: 10_000,
            },
        );
        w.histograms.insert(
            "serve.request.latency_us".into(),
            WindowHistogramSnapshot {
                w10s: HistogramSnapshot {
                    count: 50,
                    sum: 500.0,
                    min: Some(1.0),
                    max: Some(40.0),
                    buckets: vec![(10.0, 40), (100.0, 10)],
                },
                w60s: HistogramSnapshot {
                    count: 0,
                    sum: 0.0,
                    min: None,
                    max: None,
                    buckets: vec![],
                },
            },
        );
        w
    }

    #[test]
    fn window_counters_render_sums_and_rates_per_window() {
        let text = render_window(&sample_window());
        assert!(text.contains("# TYPE wb_window_serve_requests_sum gauge"));
        assert!(text.contains("wb_window_serve_requests_sum{window=\"10s\"} 50\n"));
        assert!(text.contains("wb_window_serve_requests_sum{window=\"60s\"} 240\n"));
        assert!(text.contains("wb_window_serve_requests_per_sec{window=\"10s\"} 5\n"));
        assert!(text.contains("wb_window_serve_requests_per_sec{window=\"60s\"} 4\n"));
    }

    #[test]
    fn window_histograms_render_quantiles_and_counts() {
        let text = render_window(&sample_window());
        let p = "wb_window_serve_request_latency_us";
        assert!(text.contains(&format!("# TYPE {p} gauge")));
        for q in ["0.5", "0.9", "0.99"] {
            assert!(
                text.contains(&format!("{p}{{window=\"10s\",quantile=\"{q}\"}}")),
                "missing {q} quantile:\n{text}"
            );
        }
        assert!(text.contains(&format!("{p}_count{{window=\"10s\"}} 50\n")));
        // The empty 60 s window emits its count but no quantiles.
        assert!(text.contains(&format!("{p}_count{{window=\"60s\"}} 0\n")));
        assert!(!text.contains("window=\"60s\",quantile"));
    }

    #[test]
    fn window_names_use_the_window_prefix() {
        assert_eq!(window_metric_name("serve.requests"), "wb_window_serve_requests");
        assert_eq!(window_metric_name("a-b c"), "wb_window_a_b_c");
    }
}
