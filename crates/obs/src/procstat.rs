//! Process runtime stats from `/proc/self`, exported as `proc.*`
//! gauges.
//!
//! [`sample_now`] reads resident set size and thread count from
//! `/proc/self/status` and counts `/proc/self/fd` entries, then sets
//! the `proc.rss_bytes`, `proc.threads` and `proc.open_fds` gauges so
//! `/varz`, `wb top` and the Prometheus exposition all see them.
//! [`spawn_sampler`] keeps them fresh from a background thread.
//!
//! Off Linux (or when `/proc` is unreadable) the reads quietly return
//! `None` and the gauges stay untouched — same graceful degradation as
//! the rest of the crate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// One reading of `/proc/self`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcStats {
    /// Resident set size in bytes (`VmRSS`).
    pub rss_bytes: u64,
    /// Kernel thread count (`Threads`).
    pub threads: u64,
    /// Open file descriptors (entries in `/proc/self/fd`).
    pub open_fds: u64,
}

/// Parses a `Key:   12345 kB`-style line out of `/proc/self/status`.
fn status_field(status: &str, key: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with(key))?;
    line[key.len()..].split_ascii_whitespace().next()?.parse().ok()
}

/// Reads `/proc/self`; `None` where procfs is unavailable.
pub fn read() -> Option<ProcStats> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let rss_kb = status_field(&status, "VmRSS:")?;
    let threads = status_field(&status, "Threads:")?;
    let open_fds = std::fs::read_dir("/proc/self/fd").ok()?.count() as u64;
    Some(ProcStats { rss_bytes: rss_kb * 1024, threads, open_fds })
}

/// Takes one reading and publishes it to the `proc.*` gauges. Returns
/// the reading for callers that want the values directly.
pub fn sample_now() -> Option<ProcStats> {
    let s = read()?;
    crate::gauge!("proc.rss_bytes", s.rss_bytes);
    crate::gauge!("proc.threads", s.threads);
    crate::gauge!("proc.open_fds", s.open_fds);
    Some(s)
}

static SAMPLER_RUNNING: AtomicBool = AtomicBool::new(false);

/// Starts (at most once per process) a background thread that refreshes
/// the `proc.*` gauges every `interval`. Takes an immediate first
/// sample so the gauges are populated before the first scrape.
pub fn spawn_sampler(interval: Duration) {
    sample_now();
    if SAMPLER_RUNNING.swap(true, Ordering::AcqRel) {
        return;
    }
    let _ =
        std::thread::Builder::new().name("wb-obs-procstat".to_string()).spawn(move || loop {
            std::thread::sleep(interval);
            sample_now();
        });
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;

    #[test]
    fn status_field_parses_kb_lines() {
        let status = "Name:\twb\nVmRSS:\t  123456 kB\nThreads:\t7\n";
        assert_eq!(status_field(status, "VmRSS:"), Some(123_456));
        assert_eq!(status_field(status, "Threads:"), Some(7));
        assert_eq!(status_field(status, "VmSwap:"), None);
    }

    #[test]
    fn read_reports_plausible_numbers() {
        let s = read().expect("/proc/self must be readable on Linux");
        assert!(s.rss_bytes > 1024 * 1024, "rss {} implausibly small", s.rss_bytes);
        assert!(s.threads >= 1);
        assert!(s.open_fds >= 3, "stdin/stdout/stderr alone give 3 fds");
    }

    #[test]
    fn sample_now_publishes_gauges() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        let s = sample_now().expect("sample");
        let snap = crate::metrics::snapshot();
        assert_eq!(snap.gauges.get("proc.threads").copied(), Some(s.threads as f64));
        assert!(snap.gauges.get("proc.rss_bytes").copied().unwrap_or(0.0) > 0.0);
        assert!(snap.gauges.contains_key("proc.open_fds"));
    }
}
