//! A minimal JSON value, writer and recursive-descent parser.
//!
//! `wb-obs` must stay dependency-free, so metric snapshots cannot use the
//! vendored `serde_json`. This module implements just enough of RFC 8259
//! for the snapshot format (and anything shaped like it): objects, arrays,
//! strings with escapes, numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value. Objects use [`BTreeMap`] so rendering is
/// deterministic (keys sorted).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// A field of an object (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a JSON number. Non-finite values have no JSON representation and
/// fall back to `null` (snapshots never contain them; see
/// [`crate::metrics::Snapshot`]).
fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        // `{}` on f64 prints the shortest representation that parses back
        // to the same value, which is exactly what a round-trip needs.
        let _ = write!(out, "{n}");
    } else {
        out.push_str("null");
    }
}

/// Writes a JSON string literal with the mandatory escapes.
pub(crate) fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected character at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            // Surrogates are not needed by the snapshot
                            // format; map them to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_renders_roundtrip() {
        // Canonically rendered source survives a parse → render cycle
        // byte-for-byte…
        let src = r#"{"a":[1,2.5,-300],"b":{"c":"hi\nthere","d":true,"e":null}}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        // …and exponent notation parses to the same value.
        assert_eq!(Json::parse("-3e2").unwrap(), Json::Num(-300.0));
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"n": 4, "s": "x", "a": [1]}"#).unwrap();
        assert_eq!(v.get("n").and_then(Json::as_num), Some(4.0));
        assert_eq!(v.get("a").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escapes_survive() {
        let v = Json::Str("quote \" slash \\ tab \t ctrl \u{1}".to_string());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nope").is_err());
    }

    /// The shortest-roundtrip `{}` float formatting must agree with what
    /// the vendored serde_json (used by `wb report`'s tests) parses.
    #[test]
    fn float_precision_roundtrips() {
        for &x in &[0.1, 1.0 / 3.0, 1e-9, 123456.789, f64::MAX] {
            let v = Json::Num(x);
            assert_eq!(Json::parse(&v.render()).unwrap().as_num(), Some(x));
        }
    }
}
