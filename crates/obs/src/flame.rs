//! Hand-rolled flamegraph SVG rendering for collapsed-stack text.
//!
//! Input is the canonical collapsed format one line per stack —
//! `root;child;leaf weight` — as produced by
//! [`crate::profile::Profile::to_collapsed`] (or any other flamegraph
//! tooling). Output is a self-contained SVG: an icicle layout (roots on
//! top), one `<g><title/><rect/><text/></g>` group per frame, widths
//! proportional to subtree weight, deterministic warm colors hashed
//! from the frame name. No dependencies, no JavaScript — like the JSON
//! writer, careful string assembly only.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The Content-Type a capture endpoint should serve this format under.
pub const CONTENT_TYPE: &str = "image/svg+xml";

const WIDTH: f64 = 1200.0;
const PAD: f64 = 10.0;
const FRAME_H: f64 = 16.0;
const HEADER_H: f64 = 40.0;
/// Frames narrower than this render as nothing (with their subtrees);
/// keeps pathological profiles from emitting megabytes of invisible
/// rects.
const MIN_W: f64 = 0.3;

#[derive(Default)]
struct Node {
    self_weight: u64,
    total: u64,
    children: BTreeMap<String, Node>,
}

/// Parses collapsed-stack text into `(frames, weight)` rows. Empty and
/// whitespace-only lines are skipped; anything else must end in a
/// `u64` weight.
pub fn parse_collapsed(text: &str) -> Result<Vec<(Vec<String>, u64)>, String> {
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (path, w) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: expected `stack weight`", i + 1))?;
        let w: u64 =
            w.parse().map_err(|_| format!("line {}: weight `{w}` is not a number", i + 1))?;
        let frames: Vec<String> =
            path.split(';').filter(|f| !f.is_empty()).map(str::to_string).collect();
        if frames.is_empty() {
            return Err(format!("line {}: empty stack", i + 1));
        }
        rows.push((frames, w));
    }
    Ok(rows)
}

fn build_tree(rows: &[(Vec<String>, u64)]) -> Node {
    let mut root = Node::default();
    for (frames, w) in rows {
        let mut node = &mut root;
        for f in frames {
            node = node.children.entry(f.clone()).or_default();
        }
        node.self_weight += w;
    }
    fn total(n: &mut Node) -> u64 {
        let kids: u64 = n.children.values_mut().map(total).sum();
        n.total = n.self_weight + kids;
        n.total
    }
    total(&mut root);
    root
}

fn depth_of(n: &Node) -> usize {
    1 + n.children.values().map(depth_of).max().unwrap_or(0)
}

fn escape_xml(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// FNV-1a, the same deterministic hash the rest of the workspace leans
/// on for seed-stable choices.
fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The classic flamegraph warm palette, chosen deterministically per
/// name so the same span keeps its color across captures.
fn color(name: &str) -> String {
    let h = fnv(name);
    let r = 205 + (h % 50) as u8;
    let g = ((h >> 8) % 180) as u8;
    let b = ((h >> 16) % 55) as u8;
    format!("rgb({r},{g},{b})")
}

fn emit_frame(out: &mut String, name: &str, node: &Node, x: f64, y: f64, w: f64, total: u64) {
    let pct = 100.0 * node.total as f64 / total.max(1) as f64;
    let esc = escape_xml(name);
    let _ = writeln!(out, "<g>");
    let _ = writeln!(out, "<title>{esc} ({} samples, {pct:.2}%)</title>", node.total);
    let _ = writeln!(
        out,
        "<rect x=\"{x:.2}\" y=\"{y:.2}\" width=\"{w:.2}\" height=\"{:.0}\" fill=\"{}\" rx=\"1\"/>",
        FRAME_H - 1.0,
        color(name)
    );
    // Only label frames wide enough to fit a few characters.
    if w >= 30.0 {
        let max_chars = (w / 6.5) as usize;
        let label: String = if esc.chars().count() > max_chars {
            let cut: String = name.chars().take(max_chars.saturating_sub(2)).collect();
            format!("{}..", escape_xml(&cut))
        } else {
            esc
        };
        let _ = writeln!(
            out,
            "<text x=\"{:.2}\" y=\"{:.2}\" font-size=\"11\" font-family=\"monospace\">{label}</text>",
            x + 2.0,
            y + FRAME_H - 5.0
        );
    }
    let _ = writeln!(out, "</g>");
    let mut cx = x;
    for (cname, child) in &node.children {
        let cw = w * child.total as f64 / node.total.max(1) as f64;
        if cw >= MIN_W {
            emit_frame(out, cname, child, cx, y + FRAME_H, cw, total);
        }
        cx += cw;
    }
}

/// Renders collapsed-stack text as a flamegraph SVG. An input with no
/// stacks renders a valid SVG carrying a "no samples" banner; malformed
/// lines are an error.
pub fn render_svg(collapsed: &str, title: &str) -> Result<String, String> {
    let rows = parse_collapsed(collapsed)?;
    let root = build_tree(&rows);
    let depth = if root.children.is_empty() { 1 } else { depth_of(&root) };
    // Root pseudo-frame plus every real level.
    let height = HEADER_H + depth as f64 * FRAME_H + PAD;
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" standalone=\"no\"?>\n");
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{WIDTH:.0}\" height=\"{height:.0}\" \
         viewBox=\"0 0 {WIDTH:.0} {height:.0}\">"
    );
    let _ = writeln!(
        out,
        "<rect x=\"0\" y=\"0\" width=\"{WIDTH:.0}\" height=\"{height:.0}\" fill=\"#f8f8f8\"/>"
    );
    let _ = writeln!(
        out,
        "<text x=\"{:.0}\" y=\"24\" font-size=\"14\" font-family=\"monospace\">{}</text>",
        PAD,
        escape_xml(title)
    );
    if root.children.is_empty() {
        let _ = writeln!(
            out,
            "<text x=\"{:.0}\" y=\"{:.0}\" font-size=\"12\" font-family=\"monospace\">(no samples)</text>",
            PAD,
            HEADER_H + 12.0
        );
    } else {
        let usable = WIDTH - 2.0 * PAD;
        let mut cx = PAD;
        for (name, child) in &root.children {
            let cw = usable * child.total as f64 / root.total.max(1) as f64;
            if cw >= MIN_W {
                emit_frame(&mut out, name, child, cx, HEADER_H, cw, root.total);
            }
            cx += cw;
        }
    }
    out.push_str("</svg>\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "serve.request 40\n\
                          serve.batch;serve.batch.model 120\n\
                          serve.batch;serve.batch.model;brief.page 30\n";

    #[test]
    fn parse_collapsed_accepts_canonical_lines() {
        let rows = parse_collapsed(SAMPLE).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].0, vec!["serve.batch", "serve.batch.model"]);
        assert_eq!(rows[1].1, 120);
    }

    #[test]
    fn parse_collapsed_rejects_malformed_lines() {
        assert!(parse_collapsed("no-weight-here").is_err());
        assert!(parse_collapsed("path twelve").is_err());
        assert!(parse_collapsed(" 5").is_err(), "empty stack must be rejected");
        // Blank lines are tolerated.
        assert_eq!(parse_collapsed("\n\n  \n").unwrap().len(), 0);
    }

    #[test]
    fn svg_is_well_formed_and_balanced() {
        let svg = render_svg(SAMPLE, "test profile").unwrap();
        assert!(svg.starts_with("<?xml"));
        assert!(svg.contains("<svg "));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One <g> per emitted frame, each carrying exactly one rect and
        // one title — the xmllint-free well-formedness check CI uses.
        let opens = svg.matches("<g>").count();
        let closes = svg.matches("</g>").count();
        let titles = svg.matches("<title>").count();
        assert_eq!(opens, closes, "unbalanced groups");
        assert_eq!(opens, titles, "every frame needs a hover title");
        assert_eq!(opens, 4, "sample has 4 distinct frames");
    }

    #[test]
    fn frame_widths_are_proportional_to_weight() {
        let svg = render_svg(SAMPLE, "t").unwrap();
        // Total weight 190 over usable width 1180: serve.batch subtree
        // (150) must be wider than serve.request (40).
        let width_of = |name: &str| -> f64 {
            let pos = svg.find(&format!("<title>{name} ")).expect(name);
            let rect = svg[pos..].find("width=\"").unwrap() + pos + 7;
            svg[rect..].split('"').next().unwrap().parse().unwrap()
        };
        assert!(width_of("serve.batch") > width_of("serve.request"));
        // The child never exceeds its parent.
        assert!(width_of("serve.batch.model") <= width_of("serve.batch") + 0.01);
    }

    #[test]
    fn names_are_xml_escaped() {
        let svg = render_svg("a<b>&\"c 7\n", "t<&>").unwrap();
        assert!(svg.contains("a&lt;b&gt;&amp;&quot;c"));
        assert!(svg.contains("t&lt;&amp;&gt;"));
        assert!(!svg.contains("<b>"), "raw angle brackets must not survive");
    }

    #[test]
    fn empty_profile_renders_a_valid_banner_svg() {
        let svg = render_svg("", "idle").unwrap();
        assert!(svg.starts_with("<?xml"));
        assert!(svg.contains("(no samples)"));
        assert_eq!(svg.matches("<g>").count(), 0);
    }
}
