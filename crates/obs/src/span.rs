//! RAII wall-clock span timers with per-thread nesting.
//!
//! [`enter`] pushes a frame on a thread-local stack and returns a guard;
//! dropping the guard records the span. Two aggregates are fed:
//!
//! * a duration histogram named after the span's *leaf* name, in
//!   microseconds (so `train.step` spans merge across parents), and
//! * a [`crate::metrics::SpanStat`] keyed by the `/`-joined nesting
//!   *path* (e.g. `train.epoch/train.step`), carrying count, total time
//!   and self time — the flamegraph-style view `wb report` renders.
//!
//! Self time is total minus the time spent in same-thread child spans.
//! Spans opened on a rayon worker start a fresh stack on that thread, so
//! work fanned out by a parent appears as a root path rather than being
//! subtracted from the parent's self time — cross-thread attribution is
//! deliberately out of scope for a counter-cheap instrument.
//!
//! Timing reads the clock and atomics only: a span can never perturb
//! model math, RNG draws or reduction order.

use crate::metrics::registry;
use std::cell::RefCell;
use std::time::Instant;

struct Frame {
    /// `/`-joined nesting path ending in this span's name.
    path: String,
    /// Leaf name, kept so the profiler can rebuild its shadow mirror
    /// from the real stack at any enter/exit.
    name: &'static str,
    /// Nanoseconds accumulated by completed same-thread child spans.
    child_ns: u64,
    /// Thread-cumulative allocation totals at entry (see
    /// [`crate::alloc::thread_totals`]).
    base_alloc: (u64, u64),
    /// Allocation `(bytes, count)` attributed to completed same-thread
    /// child spans.
    child_alloc: (u64, u64),
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// The number of open spans on the current thread. Exposed so tests can
/// assert stack integrity (e.g. after a `catch_unwind`).
pub fn depth() -> usize {
    STACK.try_with(|s| s.borrow().len()).unwrap_or(0)
}

/// An open span; records itself when dropped.
#[must_use = "bind the span guard (`let _span = …`) or it times nothing"]
pub struct SpanGuard {
    /// `None` when recording was disabled at entry (drop is then free).
    start: Option<Instant>,
    name: &'static str,
}

/// Opens a span. Prefer the [`crate::span!`] macro.
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { start: None, name };
    }
    let base_alloc = crate::alloc::thread_totals();
    STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{}/{name}", parent.path),
            None => name.to_string(),
        };
        stack.push(Frame { path, name, child_ns: 0, base_alloc, child_alloc: (0, 0) });
        // One relaxed load when no capture is armed; while armed, the
        // profiler's shadow mirror is rebuilt from the real stack.
        if crate::profile::armed() {
            crate::profile::sync_stack(stack.iter().map(|f| f.name));
        }
    });
    SpanGuard { start: Some(Instant::now()), name }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let total_ns = start.elapsed().as_nanos() as u64;
        let now_alloc = crate::alloc::thread_totals();
        let frame = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack.pop();
            if let Some(f) = &frame {
                let total_alloc = (
                    now_alloc.0.wrapping_sub(f.base_alloc.0),
                    now_alloc.1.wrapping_sub(f.base_alloc.1),
                );
                if let Some(parent) = stack.last_mut() {
                    parent.child_ns += total_ns;
                    parent.child_alloc.0 += total_alloc.0;
                    parent.child_alloc.1 += total_alloc.1;
                }
            }
            if crate::profile::armed() {
                crate::profile::sync_stack(stack.iter().map(|f| f.name));
            }
            frame
        });
        // Guards are dropped in LIFO scope order, so the popped frame is
        // this span's own (enter/drop always pair on one thread).
        let Some(frame) = frame else { return };
        let self_ns = total_ns.saturating_sub(frame.child_ns);
        // Allocation attributed to this span alone: the thread's delta
        // over the span's lifetime minus what completed children claimed.
        let total_bytes = now_alloc.0.wrapping_sub(frame.base_alloc.0);
        let total_allocs = now_alloc.1.wrapping_sub(frame.base_alloc.1);
        let self_bytes = total_bytes.saturating_sub(frame.child_alloc.0);
        let self_allocs = total_allocs.saturating_sub(frame.child_alloc.1);
        registry().span_stat(&frame.path).record(total_ns, self_ns, self_bytes, self_allocs);
        registry().histogram(self.name).observe(total_ns as f64 / 1_000.0);
        // Every aggregated span also lands on the event timeline when
        // trace collection is armed (one relaxed load when it is not).
        if crate::trace::active() {
            crate::trace::record_span(self.name, start, total_ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::snapshot;
    use std::time::Duration;

    #[test]
    fn nested_spans_produce_paths_and_self_time() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        {
            let _outer = enter("test.span.outer");
            std::thread::sleep(Duration::from_millis(4));
            {
                let _inner = enter("test.span.inner");
                std::thread::sleep(Duration::from_millis(8));
            }
            {
                let _inner = enter("test.span.inner");
                std::thread::sleep(Duration::from_millis(8));
            }
        }
        let s = snapshot();
        let outer = &s.spans["test.span.outer"];
        let inner = &s.spans["test.span.outer/test.span.inner"];
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        // The outer span contains both inner runs…
        assert!(outer.total_ns >= inner.total_ns);
        // …and its self time excludes them: ~4ms of a ~20ms total.
        assert!(outer.self_ns >= Duration::from_millis(3).as_nanos() as u64);
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns);
        // Leaf-name histograms merge both inner runs.
        assert!(s.histograms["test.span.inner"].count >= 2);
    }

    #[test]
    fn recursive_same_name_spans_keep_self_total_accounting() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        fn rec(depth: usize) {
            let _s = enter("test.span.rec");
            std::thread::sleep(Duration::from_millis(2));
            if depth > 0 {
                rec(depth - 1);
            }
        }
        rec(2);
        let s = snapshot();
        // Each recursion level is its own path with exactly one span.
        let root = &s.spans["test.span.rec"];
        let mid = &s.spans["test.span.rec/test.span.rec"];
        let leaf = &s.spans["test.span.rec/test.span.rec/test.span.rec"];
        for sp in [root, mid, leaf] {
            assert_eq!(sp.count, 1);
            assert!(sp.self_ns <= sp.total_ns, "self exceeds total: {sp:?}");
        }
        // Totals nest: each level contains its child entirely.
        assert!(root.total_ns >= mid.total_ns);
        assert!(mid.total_ns >= leaf.total_ns);
        // Self time excludes the child: root spent ~2ms of its own time.
        assert!(root.self_ns >= Duration::from_millis(1).as_nanos() as u64);
        assert!(root.self_ns <= root.total_ns - mid.total_ns);
        assert!(mid.self_ns <= mid.total_ns - leaf.total_ns);
        // The leaf-name histogram merges all three recursion levels.
        assert!(s.histograms["test.span.rec"].count >= 3);
    }

    #[test]
    fn nested_same_name_guards_in_one_scope_pair_lifo() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        {
            let _a = enter("test.span.twice");
            let _b = enter("test.span.twice");
            std::thread::sleep(Duration::from_millis(2));
        } // _b drops first (LIFO), then _a: inner pops the inner frame.
        let s = snapshot();
        let outer = &s.spans["test.span.twice"];
        let inner = &s.spans["test.span.twice/test.span.twice"];
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns.saturating_sub(inner.self_ns));
    }

    #[test]
    fn disabled_span_is_inert() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        crate::set_enabled(false);
        {
            let _span = enter("test.span.disabled");
        }
        crate::set_enabled(true);
        assert!(!snapshot().spans.contains_key("test.span.disabled"));
    }

    #[test]
    fn sibling_threads_do_not_share_stacks() {
        let _guard = crate::TEST_FLAG_LOCK.lock().unwrap();
        let _outer = enter("test.span.main_thread");
        std::thread::spawn(|| {
            let _worker = enter("test.span.worker");
            std::thread::sleep(Duration::from_millis(1));
        })
        .join()
        .unwrap();
        drop(_outer);
        let s = snapshot();
        // The worker's span is a root path, not nested under the main
        // thread's span.
        assert!(s.spans.contains_key("test.span.worker"));
        assert!(!s.spans.keys().any(|k| k.contains("main_thread/test.span.worker")));
    }
}
