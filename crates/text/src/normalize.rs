//! Text normalisation following §IV-A3 of the paper: lowercase everything,
//! replace digit runs with the `<digit>` token, and keep newline characters
//! and punctuation as standalone tokens.

/// The token substituted for every maximal run of ASCII digits
/// (optionally containing `.`/`,` separators, e.g. `40.13` or `1,500`).
pub const DIGIT_TOKEN: &str = "<digit>";

/// The token emitted for every newline character.
pub const NEWLINE_TOKEN: &str = "<nl>";

/// Lowercases `text` and splits it into pre-tokens: words, `<digit>`,
/// `<nl>`, and single punctuation marks.
pub fn normalize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut word = String::new();
    let mut chars = text.chars().peekable();
    let flush = |word: &mut String, out: &mut Vec<String>| {
        if !word.is_empty() {
            out.push(std::mem::take(word));
        }
    };
    while let Some(c) = chars.next() {
        if c == '\n' {
            flush(&mut word, &mut out);
            out.push(NEWLINE_TOKEN.to_string());
        } else if c.is_whitespace() {
            flush(&mut word, &mut out);
        } else if c.is_ascii_digit() {
            flush(&mut word, &mut out);
            // Consume the full numeric run including inner ./, separators.
            while let Some(&next) = chars.peek() {
                let separator = (next == '.' || next == ',')
                    && chars
                        .clone()
                        .nth(1)
                        .map(|after| after.is_ascii_digit())
                        .unwrap_or(false);
                if next.is_ascii_digit() || separator {
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(DIGIT_TOKEN.to_string());
        } else if c.is_alphanumeric() || c == '\'' {
            word.extend(c.to_lowercase());
        } else {
            // Punctuation and symbols are single tokens.
            flush(&mut word, &mut out);
            out.push(c.to_string());
        }
    }
    flush(&mut word, &mut out);
    out
}

/// Splits raw text into sentences on `.`, `!`, `?` and newlines, keeping the
/// terminator with its sentence. A `.` flanked by digits (a decimal point,
/// e.g. `40.13`) does not terminate. Empty sentences are dropped.
pub fn split_sentences(text: &str) -> Vec<String> {
    let mut sentences = Vec::new();
    let mut current = String::new();
    let mut prev: Option<char> = None;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if c == '\n' {
            let trimmed = current.trim();
            if !trimmed.is_empty() {
                sentences.push(trimmed.to_string());
            }
            current.clear();
            prev = None;
            continue;
        }
        current.push(c);
        let decimal_point = c == '.'
            && prev.map(|p| p.is_ascii_digit()).unwrap_or(false)
            && chars.peek().map(|n| n.is_ascii_digit()).unwrap_or(false);
        if (c == '.' || c == '!' || c == '?') && !decimal_point {
            let trimmed = current.trim();
            if !trimmed.is_empty() {
                sentences.push(trimmed.to_string());
            }
            current.clear();
        }
        prev = Some(c);
    }
    let trimmed = current.trim();
    if !trimmed.is_empty() {
        sentences.push(trimmed.to_string());
    }
    sentences
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_splits() {
        assert_eq!(normalize("Hello World"), vec!["hello", "world"]);
    }

    #[test]
    fn digits_become_digit_token() {
        assert_eq!(normalize("price 42"), vec!["price", DIGIT_TOKEN]);
        assert_eq!(normalize("$40.13!"), vec!["$", DIGIT_TOKEN, "!"]);
        assert_eq!(normalize("1,500 pages"), vec![DIGIT_TOKEN, "pages"]);
    }

    #[test]
    fn digit_runs_collapse_but_words_with_digits_split() {
        // "b2b" -> "b", "<digit>", "b": digits always break out.
        assert_eq!(normalize("b2b"), vec!["b", DIGIT_TOKEN, "b"]);
    }

    #[test]
    fn newline_preserved_as_token() {
        assert_eq!(normalize("a\nb"), vec!["a", NEWLINE_TOKEN, "b"]);
    }

    #[test]
    fn punctuation_is_single_token() {
        assert_eq!(normalize("wait, stop."), vec!["wait", ",", "stop", "."]);
    }

    #[test]
    fn apostrophes_stay_in_words() {
        assert_eq!(normalize("don't"), vec!["don't"]);
    }

    #[test]
    fn empty_input() {
        assert!(normalize("").is_empty());
        assert!(split_sentences("  \n ").is_empty());
    }

    #[test]
    fn sentence_split_on_terminators() {
        let s = split_sentences("First. Second! Third? Fourth");
        assert_eq!(s, vec!["First.", "Second!", "Third?", "Fourth"]);
    }

    #[test]
    fn sentence_split_on_newlines() {
        let s = split_sentences("Heading\nBody sentence.");
        assert_eq!(s, vec!["Heading", "Body sentence."]);
    }

    #[test]
    fn decimal_points_do_not_split_sentences() {
        let s = split_sentences("price is 40.13 today. next");
        assert_eq!(s, vec!["price is 40.13 today.", "next"]);
    }

    #[test]
    fn trailing_decimal_not_swallowed() {
        // "42." at end of sentence: the '.' is a terminator, not a decimal
        // separator (no digit follows).
        assert_eq!(normalize("42."), vec![DIGIT_TOKEN, "."]);
    }
}
