//! Document representation following §IV-A3: a `[CLS]` token is inserted at
//! the start of every sentence (BERTSUM-style), the document is zero-padded
//! to a fixed length, and split into fixed-size sub-documents to respect the
//! encoder's input limit (the paper pads to 2,048 and splits into four
//! 512-token sub-documents).

use crate::vocab::{CLS, PAD};
use crate::wordpiece::WordPiece;

/// Chunking configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkConfig {
    /// Target padded document length.
    pub doc_len: usize,
    /// Sub-document length; must divide `doc_len`.
    pub sub_len: usize,
}

impl ChunkConfig {
    /// The paper's setting: 2,048-token documents in four 512-token chunks.
    pub fn paper() -> Self {
        ChunkConfig { doc_len: 2048, sub_len: 512 }
    }

    /// A CPU-sized setting used by tests and experiments.
    pub fn scaled(doc_len: usize, sub_len: usize) -> Self {
        ChunkConfig { doc_len, sub_len }
    }
}

/// A tokenised, `[CLS]`-annotated, padded document.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedDoc {
    /// Token ids, padded with `[PAD]` to `doc_len`.
    pub tokens: Vec<u32>,
    /// Positions of each sentence's `[CLS]` token within `tokens`.
    pub cls_positions: Vec<usize>,
    /// For every position, the index of the sentence it belongs to
    /// (padding positions map to `usize::MAX`).
    pub sentence_of: Vec<usize>,
    /// Number of real (non-padding) tokens.
    pub real_len: usize,
}

impl EncodedDoc {
    /// Encodes pre-split sentences. Sentences that no longer fit inside
    /// `cfg.doc_len` are truncated away; a sentence is never split across
    /// the document boundary mid-way (it is cut at the boundary).
    pub fn from_sentences(sentences: &[String], wp: &WordPiece, cfg: ChunkConfig) -> Self {
        assert!(
            cfg.sub_len > 0 && cfg.doc_len.is_multiple_of(cfg.sub_len),
            "sub_len must divide doc_len"
        );
        let mut tokens = Vec::with_capacity(cfg.doc_len);
        let mut cls_positions = Vec::new();
        let mut sentence_of = Vec::with_capacity(cfg.doc_len);
        for (s_idx, sent) in sentences.iter().enumerate() {
            if tokens.len() + 1 >= cfg.doc_len {
                break;
            }
            cls_positions.push(tokens.len());
            tokens.push(CLS);
            sentence_of.push(s_idx);
            for id in wp.encode(sent) {
                if tokens.len() >= cfg.doc_len {
                    break;
                }
                tokens.push(id);
                sentence_of.push(s_idx);
            }
        }
        let real_len = tokens.len();
        tokens.resize(cfg.doc_len, PAD);
        sentence_of.resize(cfg.doc_len, usize::MAX);
        EncodedDoc { tokens, cls_positions, sentence_of, real_len }
    }

    /// Number of sentences that made it into the document.
    pub fn num_sentences(&self) -> usize {
        self.cls_positions.len()
    }

    /// The token ids of the `i`-th sub-document.
    pub fn sub_document(&self, i: usize, cfg: ChunkConfig) -> &[u32] {
        &self.tokens[i * cfg.sub_len..(i + 1) * cfg.sub_len]
    }

    /// Number of sub-documents under `cfg`.
    pub fn num_sub_documents(&self, cfg: ChunkConfig) -> usize {
        self.tokens.len() / cfg.sub_len
    }

    /// The non-padding token ids.
    pub fn real_tokens(&self) -> &[u32] {
        &self.tokens[..self.real_len]
    }

    /// Token index range `[start, end)` of sentence `s`.
    pub fn sentence_span(&self, s: usize) -> (usize, usize) {
        let start = self.cls_positions[s];
        let end = self.cls_positions.get(s + 1).copied().unwrap_or(self.real_len);
        (start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wordpiece::{WordPiece, WordPieceConfig};

    fn wp() -> WordPiece {
        WordPiece::train(
            ["alpha beta gamma delta epsilon zeta eta theta"].into_iter(),
            WordPieceConfig {
                max_words: 50,
                max_pieces: 50,
                min_word_freq: 1,
                max_piece_len: 4,
            },
        )
    }

    #[test]
    fn cls_at_every_sentence_start() {
        let doc = EncodedDoc::from_sentences(
            &["alpha beta".into(), "gamma".into()],
            &wp(),
            ChunkConfig::scaled(16, 8),
        );
        assert_eq!(doc.num_sentences(), 2);
        for &p in &doc.cls_positions {
            assert_eq!(doc.tokens[p], CLS);
        }
        assert_eq!(doc.cls_positions[0], 0);
    }

    #[test]
    fn pads_to_doc_len() {
        let doc =
            EncodedDoc::from_sentences(&["alpha".into()], &wp(), ChunkConfig::scaled(16, 8));
        assert_eq!(doc.tokens.len(), 16);
        assert_eq!(doc.real_len, 2); // [CLS] + alpha
        assert!(doc.tokens[2..].iter().all(|&t| t == PAD));
        assert!(doc.sentence_of[2..].iter().all(|&s| s == usize::MAX));
    }

    #[test]
    fn truncates_overlong_documents() {
        let sentences: Vec<String> = (0..100).map(|_| "alpha beta gamma".to_string()).collect();
        let doc = EncodedDoc::from_sentences(&sentences, &wp(), ChunkConfig::scaled(32, 8));
        assert_eq!(doc.tokens.len(), 32);
        assert!(doc.real_len <= 32);
        assert!(doc.num_sentences() < 100);
    }

    #[test]
    fn sub_documents_partition_tokens() {
        let sentences: Vec<String> = (0..10).map(|_| "alpha beta".to_string()).collect();
        let cfg = ChunkConfig::scaled(24, 8);
        let doc = EncodedDoc::from_sentences(&sentences, &wp(), cfg);
        assert_eq!(doc.num_sub_documents(cfg), 3);
        let total: usize = (0..3).map(|i| doc.sub_document(i, cfg).len()).sum();
        assert_eq!(total, 24);
    }

    #[test]
    fn sentence_span_covers_tokens() {
        let doc = EncodedDoc::from_sentences(
            &["alpha beta".into(), "gamma delta".into()],
            &wp(),
            ChunkConfig::scaled(16, 8),
        );
        let (s0, e0) = doc.sentence_span(0);
        let (s1, e1) = doc.sentence_span(1);
        assert_eq!(e0, s1);
        assert_eq!(e1, doc.real_len);
        assert!(doc.sentence_of[s0..e0].iter().all(|&s| s == 0));
        assert!(doc.sentence_of[s1..e1].iter().all(|&s| s == 1));
    }

    #[test]
    #[should_panic(expected = "sub_len")]
    fn bad_chunk_config_panics() {
        let _ = EncodedDoc::from_sentences(&[], &wp(), ChunkConfig::scaled(10, 3));
    }

    #[test]
    fn paper_config_shape() {
        let cfg = ChunkConfig::paper();
        assert_eq!(cfg.doc_len, 2048);
        assert_eq!(cfg.sub_len, 512);
        assert_eq!(cfg.doc_len / cfg.sub_len, 4);
    }
}
