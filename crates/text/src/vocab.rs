//! Token vocabulary with the special tokens used throughout the pipeline.

use std::collections::HashMap;

/// Id of the padding token.
pub const PAD: u32 = 0;
/// Id of the unknown token.
pub const UNK: u32 = 1;
/// Id of the sentence-start classification token (BERTSUM-style).
pub const CLS: u32 = 2;
/// Id of the separator token.
pub const SEP: u32 = 3;
/// Id of the begin-of-sequence token used by decoders.
pub const BOS: u32 = 4;
/// Id of the end-of-sequence token used by decoders.
pub const EOS: u32 = 5;

/// String forms of the special tokens in id order.
pub const SPECIALS: [&str; 6] = ["[PAD]", "[UNK]", "[CLS]", "[SEP]", "[BOS]", "[EOS]"];

/// A bidirectional token ↔ id map. Ids `0..6` are always the special tokens.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Vocab {
    token_to_id: HashMap<String, u32>,
    id_to_token: Vec<String>,
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

impl Vocab {
    /// A vocabulary containing only the special tokens.
    pub fn new() -> Self {
        let mut v = Vocab { token_to_id: HashMap::new(), id_to_token: Vec::new() };
        for s in SPECIALS {
            v.add(s);
        }
        v
    }

    /// Adds a token if absent and returns its id.
    pub fn add(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.token_to_id.get(token) {
            return id;
        }
        let id = self.id_to_token.len() as u32;
        self.id_to_token.push(token.to_string());
        self.token_to_id.insert(token.to_string(), id);
        id
    }

    /// Looks up a token's id.
    pub fn id(&self, token: &str) -> Option<u32> {
        self.token_to_id.get(token).copied()
    }

    /// Looks up a token's id, falling back to `[UNK]`.
    pub fn id_or_unk(&self, token: &str) -> u32 {
        self.id(token).unwrap_or(UNK)
    }

    /// The token string for an id.
    pub fn token(&self, id: u32) -> &str {
        &self.id_to_token[id as usize]
    }

    /// Number of tokens including specials.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// Always false: specials are present from construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Decodes ids to strings, skipping `[PAD]`.
    pub fn decode(&self, ids: &[u32]) -> Vec<String> {
        ids.iter().filter(|&&id| id != PAD).map(|&id| self.token(id).to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_have_fixed_ids() {
        let v = Vocab::new();
        assert_eq!(v.id("[PAD]"), Some(PAD));
        assert_eq!(v.id("[UNK]"), Some(UNK));
        assert_eq!(v.id("[CLS]"), Some(CLS));
        assert_eq!(v.id("[SEP]"), Some(SEP));
        assert_eq!(v.id("[BOS]"), Some(BOS));
        assert_eq!(v.id("[EOS]"), Some(EOS));
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn add_is_idempotent() {
        let mut v = Vocab::new();
        let a = v.add("book");
        let b = v.add("book");
        assert_eq!(a, b);
        assert_eq!(v.len(), 7);
    }

    #[test]
    fn unknown_falls_back() {
        let v = Vocab::new();
        assert_eq!(v.id_or_unk("nope"), UNK);
    }

    #[test]
    fn decode_skips_pad() {
        let mut v = Vocab::new();
        let b = v.add("book");
        assert_eq!(v.decode(&[PAD, b, PAD]), vec!["book"]);
    }
}
