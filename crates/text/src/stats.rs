//! Corpus/vocabulary statistics: token frequencies, coverage of a tokenizer
//! over a corpus, and type/token counts — the numbers §IV-A1 reports about
//! the dataset (vocabulary size, average lengths).

use crate::wordpiece::WordPiece;
use crate::{normalize, UNK};
use std::collections::HashMap;

/// Frequency table over normalised word types.
#[derive(Debug, Clone, Default)]
pub struct FrequencyTable {
    counts: HashMap<String, usize>,
    total: usize,
}

impl FrequencyTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds all tokens of a text.
    pub fn add_text(&mut self, text: &str) {
        for tok in normalize(text) {
            *self.counts.entry(tok).or_insert(0) += 1;
            self.total += 1;
        }
    }

    /// Number of distinct word types.
    pub fn types(&self) -> usize {
        self.counts.len()
    }

    /// Total token count.
    pub fn tokens(&self) -> usize {
        self.total
    }

    /// Frequency of one word.
    pub fn count(&self, word: &str) -> usize {
        self.counts.get(word).copied().unwrap_or(0)
    }

    /// The `n` most frequent words (ties broken alphabetically).
    pub fn top(&self, n: usize) -> Vec<(&str, usize)> {
        let mut entries: Vec<(&str, usize)> =
            self.counts.iter().map(|(w, &c)| (w.as_str(), c)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        entries.truncate(n);
        entries
    }

    /// Fraction of token mass covered by the `n` most frequent types —
    /// the Zipfian head the tokenizer keeps as whole words.
    pub fn head_coverage(&self, n: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let head: usize = self.top(n).iter().map(|(_, c)| c).sum();
        head as f64 / self.total as f64
    }
}

/// Tokenizer coverage over a corpus.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Coverage {
    /// Total WordPiece tokens produced.
    pub pieces: usize,
    /// `[UNK]` tokens among them.
    pub unknown: usize,
    /// Words kept whole (single piece).
    pub whole_words: usize,
    /// Input words processed.
    pub words: usize,
}

impl Coverage {
    /// Fraction of pieces that are `[UNK]`.
    pub fn unk_rate(&self) -> f64 {
        if self.pieces == 0 {
            0.0
        } else {
            self.unknown as f64 / self.pieces as f64
        }
    }

    /// Fraction of words kept whole.
    pub fn whole_word_rate(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            self.whole_words as f64 / self.words as f64
        }
    }

    /// Mean pieces per word.
    pub fn fertility(&self) -> f64 {
        if self.words == 0 {
            0.0
        } else {
            self.pieces as f64 / self.words as f64
        }
    }
}

/// Measures `wp`'s coverage over an iterator of texts.
pub fn coverage<'a>(wp: &WordPiece, texts: impl Iterator<Item = &'a str>) -> Coverage {
    let mut cov = Coverage::default();
    for text in texts {
        for word in normalize(text) {
            cov.words += 1;
            let ids = wp.encode(&word);
            cov.pieces += ids.len();
            cov.unknown += ids.iter().filter(|&&id| id == UNK).count();
            if ids.len() == 1 && ids[0] != UNK {
                cov.whole_words += 1;
            }
        }
    }
    cov
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wordpiece::WordPieceConfig;

    #[test]
    fn frequency_counting() {
        let mut f = FrequencyTable::new();
        f.add_text("the cat and the dog");
        assert_eq!(f.count("the"), 2);
        assert_eq!(f.count("cat"), 1);
        assert_eq!(f.types(), 4);
        assert_eq!(f.tokens(), 5);
        assert_eq!(f.top(1)[0].0, "the");
    }

    #[test]
    fn head_coverage_monotone() {
        let mut f = FrequencyTable::new();
        f.add_text("a a a b b c d e f g");
        assert!(f.head_coverage(1) < f.head_coverage(3));
        assert!((f.head_coverage(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_on_training_corpus_is_high() {
        let corpus = "the quick brown fox jumps over the lazy dog again and again";
        let wp = WordPiece::train(
            [corpus].into_iter(),
            WordPieceConfig {
                max_words: 50,
                max_pieces: 50,
                min_word_freq: 1,
                max_piece_len: 4,
            },
        );
        let cov = coverage(&wp, [corpus].into_iter());
        assert_eq!(cov.unk_rate(), 0.0);
        assert!((cov.whole_word_rate() - 1.0).abs() < 1e-12);
        assert!((cov.fertility() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_degrades_on_unseen_words() {
        let wp = WordPiece::train(
            ["alpha beta"].into_iter(),
            WordPieceConfig {
                max_words: 10,
                max_pieces: 10,
                min_word_freq: 1,
                max_piece_len: 3,
            },
        );
        let cov = coverage(&wp, ["gamma delta epsilon"].into_iter());
        assert!(cov.fertility() > 1.0 || cov.unk_rate() > 0.0);
        assert!(cov.whole_word_rate() < 1.0);
    }

    #[test]
    fn empty_everything() {
        let f = FrequencyTable::new();
        assert_eq!(f.head_coverage(5), 0.0);
        let wp = WordPiece::train(["x"].into_iter(), WordPieceConfig::default());
        let cov = coverage(&wp, std::iter::empty());
        assert_eq!(cov.unk_rate(), 0.0);
        assert_eq!(cov.fertility(), 0.0);
    }
}
