#![warn(missing_docs)]
//! # wb-text
//!
//! Text preprocessing for Webpage Briefing, following §IV-A3 of the paper:
//!
//! 1. [`normalize`] lowercases, replaces digit runs with `<digit>`, and keeps
//!    newlines and punctuation as standalone tokens.
//! 2. [`split_sentences`] segments visible text into sentences.
//! 3. [`WordPiece`] is a trainable WordPiece-style subword tokenizer
//!    (greedy longest-match with `##` continuations).
//! 4. [`EncodedDoc`] inserts a `[CLS]` token per sentence (BERTSUM-style),
//!    zero-pads to a fixed document length and splits into fixed-size
//!    sub-documents.
//!
//! ```
//! use wb_text::{WordPiece, WordPieceConfig, EncodedDoc, ChunkConfig, split_sentences};
//!
//! let wp = WordPiece::train(
//!     ["deep learning books on sale. free shipping today."].into_iter(),
//!     WordPieceConfig::default(),
//! );
//! let sentences = split_sentences("Deep learning books. Free shipping.");
//! let doc = EncodedDoc::from_sentences(&sentences, &wp, ChunkConfig::scaled(32, 8));
//! assert_eq!(doc.num_sentences(), 2);
//! ```

mod chunk;
mod normalize;
mod stats;
mod vocab;
mod wordpiece;

pub use chunk::{ChunkConfig, EncodedDoc};
pub use normalize::{normalize, split_sentences, DIGIT_TOKEN, NEWLINE_TOKEN};
pub use stats::{coverage, Coverage, FrequencyTable};
pub use vocab::{Vocab, BOS, CLS, EOS, PAD, SEP, SPECIALS, UNK};
pub use wordpiece::{WordPiece, WordPieceConfig};
