//! A WordPiece-style subword tokenizer.
//!
//! The paper tokenises with BERT's WordPiece. We reimplement the same
//! interface: a vocabulary is *trained* from a corpus (frequent whole words
//! plus subword pieces, continuation pieces prefixed `##`), and encoding uses
//! greedy longest-match-first within each pre-token, falling back to `[UNK]`
//! when a word cannot be covered.

use crate::normalize::normalize;
use crate::vocab::{Vocab, UNK};
use std::collections::HashMap;

/// Configuration for [`WordPiece::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordPieceConfig {
    /// Keep at most this many whole words (by frequency).
    pub max_words: usize,
    /// Keep at most this many subword pieces (by frequency).
    pub max_pieces: usize,
    /// Minimum corpus frequency for a whole word to enter the vocabulary.
    pub min_word_freq: usize,
    /// Maximum subword piece length in characters.
    pub max_piece_len: usize,
}

impl Default for WordPieceConfig {
    fn default() -> Self {
        WordPieceConfig {
            max_words: 8000,
            max_pieces: 2000,
            min_word_freq: 2,
            max_piece_len: 6,
        }
    }
}

/// A trained WordPiece tokenizer.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WordPiece {
    vocab: Vocab,
    max_word_chars: usize,
}

impl WordPiece {
    /// Trains a vocabulary over an iterator of raw texts.
    pub fn train<'a>(texts: impl Iterator<Item = &'a str>, cfg: WordPieceConfig) -> Self {
        let mut word_freq: HashMap<String, usize> = HashMap::new();
        for text in texts {
            for tok in normalize(text) {
                *word_freq.entry(tok).or_insert(0) += 1;
            }
        }

        let mut vocab = Vocab::new();
        // Normalisation markers are always representable.
        vocab.add(crate::normalize::DIGIT_TOKEN);
        vocab.add(crate::normalize::NEWLINE_TOKEN);

        // 1. Frequent whole words.
        let mut words: Vec<(&String, &usize)> =
            word_freq.iter().filter(|(_, &f)| f >= cfg.min_word_freq).collect();
        words.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        for (w, _) in words.iter().take(cfg.max_words) {
            vocab.add(w);
        }

        // 2. Single characters (initial and continuation) so every word is
        //    coverable without [UNK] unless it contains unseen characters.
        let mut char_freq: HashMap<char, usize> = HashMap::new();
        for (w, f) in &word_freq {
            for c in w.chars() {
                *char_freq.entry(c).or_insert(0) += f;
            }
        }
        // Sorted so id assignment is reproducible run-to-run: HashMap
        // iteration order would otherwise leak into every checkpoint.
        let mut chars: Vec<char> = char_freq.keys().copied().collect();
        chars.sort_unstable();
        for c in chars {
            vocab.add(&c.to_string());
            vocab.add(&format!("##{c}"));
        }

        // 3. Frequent multi-character pieces harvested from word prefixes and
        //    suffixes (a cheap stand-in for BPE merges).
        let mut piece_freq: HashMap<String, usize> = HashMap::new();
        for (w, f) in &word_freq {
            let chars: Vec<char> = w.chars().collect();
            if chars.len() < 3 {
                continue;
            }
            for len in 2..=cfg.max_piece_len.min(chars.len() - 1) {
                let prefix: String = chars[..len].iter().collect();
                let suffix: String = chars[chars.len() - len..].iter().collect();
                *piece_freq.entry(prefix).or_insert(0) += f;
                *piece_freq.entry(format!("##{suffix}")).or_insert(0) += f;
            }
        }
        let mut pieces: Vec<(&String, &usize)> = piece_freq.iter().collect();
        pieces.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        for (p, _) in pieces.iter().take(cfg.max_pieces) {
            vocab.add(p);
        }

        WordPiece { vocab, max_word_chars: 64 }
    }

    /// A tokenizer over a fixed, externally-built vocabulary (for tests).
    pub fn from_vocab(vocab: Vocab) -> Self {
        WordPiece { vocab, max_word_chars: 64 }
    }

    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// Tokenises raw text into WordPiece strings. The normalisation markers
    /// `<digit>` / `<nl>` are atomic: text that already contains them (e.g.
    /// pre-normalised corpus words) keeps them as single tokens.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        use crate::normalize::{DIGIT_TOKEN, NEWLINE_TOKEN};
        if text == DIGIT_TOKEN || text == NEWLINE_TOKEN {
            return vec![text.to_string()];
        }
        let mut out = Vec::new();
        for word in normalize(text) {
            self.tokenize_word(&word, &mut out);
        }
        out
    }

    /// Encodes raw text to token ids.
    pub fn encode(&self, text: &str) -> Vec<u32> {
        self.tokenize(text).iter().map(|t| self.vocab.id_or_unk(t)).collect()
    }

    /// Greedy longest-match-first WordPiece tokenisation of a single word.
    fn tokenize_word(&self, word: &str, out: &mut Vec<String>) {
        if self.vocab.id(word).is_some() {
            out.push(word.to_string());
            return;
        }
        let chars: Vec<char> = word.chars().collect();
        if chars.len() > self.max_word_chars {
            out.push("[UNK]".to_string());
            return;
        }
        let mut pieces = Vec::new();
        let mut start = 0;
        while start < chars.len() {
            let mut end = chars.len();
            let mut found = None;
            while end > start {
                let sub: String = chars[start..end].iter().collect();
                let candidate = if start == 0 { sub } else { format!("##{sub}") };
                if self.vocab.id(&candidate).is_some() {
                    found = Some(candidate);
                    break;
                }
                end -= 1;
            }
            match found {
                Some(p) => {
                    pieces.push(p);
                    start = end;
                }
                None => {
                    out.push("[UNK]".to_string());
                    return;
                }
            }
        }
        out.extend(pieces);
    }

    /// Reassembles WordPiece tokens into words (inverse of tokenisation up
    /// to `[UNK]`).
    pub fn detokenize(tokens: &[String]) -> Vec<String> {
        let mut words: Vec<String> = Vec::new();
        for t in tokens {
            if let Some(cont) = t.strip_prefix("##") {
                if let Some(last) = words.last_mut() {
                    last.push_str(cont);
                    continue;
                }
            }
            words.push(t.clone());
        }
        words
    }

    /// Encodes and maps ids back to strings — convenience for decoders.
    pub fn decode_ids(&self, ids: &[u32]) -> Vec<String> {
        Self::detokenize(&self.vocab.decode(ids))
    }

    /// True when `id` is the unknown token.
    pub fn is_unk(&self, id: u32) -> bool {
        id == UNK
    }

    /// Serialises the tokenizer to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("tokenizer serialises")
    }

    /// Restores a tokenizer from [`WordPiece::to_json`] output.
    pub fn from_json(json: &str) -> Result<WordPiece, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> WordPiece {
        let corpus = [
            "the quick brown fox jumps over the lazy dog",
            "the quick brown book is a good book",
            "booking bookshop bookstore books",
            "deep learning with tensorflow and python",
        ];
        WordPiece::train(
            corpus.iter().copied(),
            WordPieceConfig {
                max_words: 100,
                max_pieces: 200,
                min_word_freq: 1,
                max_piece_len: 6,
            },
        )
    }

    #[test]
    fn whole_words_stay_whole() {
        let wp = trained();
        assert_eq!(wp.tokenize("the quick fox"), vec!["the", "quick", "fox"]);
    }

    #[test]
    fn unseen_word_splits_into_pieces() {
        let wp = trained();
        let toks = wp.tokenize("bookish");
        assert!(toks.len() >= 2, "expected subword split, got {toks:?}");
        assert!(toks[0] == "book" || toks[0].starts_with('b'));
        assert!(toks[1..].iter().all(|t| t.starts_with("##")));
    }

    #[test]
    fn detokenize_inverts_tokenize() {
        let wp = trained();
        let toks = wp.tokenize("bookish dogs");
        let words = WordPiece::detokenize(&toks);
        assert_eq!(words, vec!["bookish", "dogs"]);
    }

    #[test]
    fn unknown_characters_become_unk() {
        let wp = trained();
        let toks = wp.tokenize("日本語");
        assert_eq!(toks, vec!["[UNK]"]);
    }

    #[test]
    fn encode_roundtrip_known() {
        let wp = trained();
        let ids = wp.encode("the book");
        assert!(ids.iter().all(|&id| id != UNK));
        assert_eq!(wp.decode_ids(&ids), vec!["the", "book"]);
    }

    #[test]
    fn digits_tokenize_to_digit_token() {
        let wp = trained();
        let toks = wp.tokenize("costs 42 dollars");
        assert!(toks.contains(&"<digit>".to_string()), "{toks:?}");
    }

    #[test]
    fn empty_text() {
        let wp = trained();
        assert!(wp.tokenize("").is_empty());
    }

    #[test]
    fn json_roundtrip_preserves_tokenisation() {
        let wp = trained();
        let restored = WordPiece::from_json(&wp.to_json()).unwrap();
        for text in ["the quick fox", "bookish dogs", "costs 42 dollars"] {
            assert_eq!(wp.encode(text), restored.encode(text));
        }
    }

    #[test]
    fn training_twice_yields_byte_identical_vocabularies() {
        // Two freshly-trained tokenizers must serialise identically; id
        // assignment may not depend on hash-map iteration order.
        assert_eq!(trained().to_json(), trained().to_json());
    }

    #[test]
    fn marker_tokens_are_atomic() {
        let wp = trained();
        assert_eq!(wp.tokenize("<digit>"), vec!["<digit>"]);
        assert_eq!(wp.tokenize("<nl>"), vec!["<nl>"]);
        // And they map to real vocabulary ids, not [UNK].
        assert_ne!(wp.encode("<digit>")[0], crate::vocab::UNK);
    }
}
