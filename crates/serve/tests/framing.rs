//! Property tests of HTTP/1.1 request framing — the parser alone and a
//! live keep-alive server.
//!
//! The bugs these pin down all came from the same root: treating "one
//! socket read" as "one request". A read can deliver half a request, one
//! and a half, or three; headers can lie about the body length in ways
//! that make two parsers disagree (request smuggling). The parser half of
//! the suite drives [`wb_serve::http::RequestParser`] over adversarial
//! chunkings; the server half replays the same shapes against a running
//! server over reused connections, where a framing slip would surface as
//! a desynced response stream.

use proptest::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;
use wb_serve::http::{Parsed, Request, RequestParser};

const MAX_BODY: usize = 64 * 1024;

/// Renders a well-formed request with the given body.
fn render_request(method: &str, path: &str, body: &[u8]) -> Vec<u8> {
    let mut raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    raw
}

/// Parses `raw` by appending it to the buffer in the given chunk sizes,
/// stepping the parser after every append — the event loop's exact usage.
/// Returns the requests completed and the bytes left unconsumed.
fn parse_chunked(raw: &[u8], chunks: &[usize]) -> Result<(Vec<Request>, Vec<u8>), String> {
    let mut parser = RequestParser::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut out = Vec::new();
    let mut offset = 0;
    let feed = |buf: &mut Vec<u8>, n: usize, offset: &mut usize| {
        let end = (*offset + n).min(raw.len());
        buf.extend_from_slice(&raw[*offset..end]);
        *offset = end;
    };
    for &n in chunks {
        feed(&mut buf, n.max(1), &mut offset);
        loop {
            match parser.step(&buf, MAX_BODY).map_err(|e| e.detail())? {
                Parsed::NeedMore => break,
                Parsed::Request { req, consumed } => {
                    buf.drain(..consumed);
                    out.push(req);
                }
            }
        }
    }
    // Whatever the chunk list did not cover arrives as one final read.
    if offset < raw.len() {
        feed(&mut buf, raw.len() - offset, &mut offset);
        loop {
            match parser.step(&buf, MAX_BODY).map_err(|e| e.detail())? {
                Parsed::NeedMore => break,
                Parsed::Request { req, consumed } => {
                    buf.drain(..consumed);
                    out.push(req);
                }
            }
        }
    }
    Ok((out, buf))
}

fn body_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec((0u16..256).prop_map(|b| b as u8), 0..200)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// However a request is split across reads — byte-by-byte, straddling
    /// the `\r\n\r\n`, mid-body — the parse is identical to feeding it
    /// whole, and no bytes are lost or invented.
    #[test]
    fn split_writes_parse_identically(
        body in body_strategy(),
        chunks in proptest::collection::vec(1usize..40, 0..24),
    ) {
        let raw = render_request("POST", "/brief", &body);
        let (whole, rest_whole) = parse_chunked(&raw, &[raw.len()]).unwrap();
        let (split, rest_split) = parse_chunked(&raw, &chunks).unwrap();
        prop_assert_eq!(whole.len(), 1);
        prop_assert_eq!(split.len(), 1);
        prop_assert_eq!(&split[0].body, &whole[0].body);
        prop_assert_eq!(&split[0].body, &body);
        prop_assert_eq!(&split[0].method, "POST");
        prop_assert!(rest_whole.is_empty() && rest_split.is_empty());
    }

    /// Several requests written back-to-back all parse, in order, with
    /// their own bodies — bytes beyond one request belong to the next, not
    /// to the floor. This is the leftover-pipelined-bytes bug.
    #[test]
    fn pipelined_requests_all_parse_in_order(
        bodies in proptest::collection::vec(body_strategy(), 1..5),
        chunks in proptest::collection::vec(1usize..64, 0..32),
    ) {
        let mut raw = Vec::new();
        for (i, body) in bodies.iter().enumerate() {
            raw.extend_from_slice(&render_request("POST", &format!("/brief?i={i}"), body));
        }
        let (reqs, rest) = parse_chunked(&raw, &chunks).unwrap();
        prop_assert_eq!(reqs.len(), bodies.len());
        prop_assert!(rest.is_empty(), "unconsumed bytes after the last request");
        for (i, (req, body)) in reqs.iter().zip(&bodies).enumerate() {
            prop_assert_eq!(&req.body, body);
            let expected = format!("{i}");
            prop_assert_eq!(req.query_param("i"), Some(expected.as_str()));
        }
    }

    /// Duplicate `Content-Length` headers that agree are accepted;
    /// disagreeing ones are rejected no matter how the request is chunked.
    #[test]
    fn duplicate_content_length_only_parses_when_agreeing(
        len_a in 0usize..50,
        delta in 1usize..50,
        agree in 0u8..2,
        chunks in proptest::collection::vec(1usize..32, 0..16),
    ) {
        let agree = agree == 1;
        let len_b = if agree { len_a } else { len_a + delta };
        let mut raw = format!(
            "POST /brief HTTP/1.1\r\nContent-Length: {len_a}\r\nContent-Length: {len_b}\r\n\r\n"
        )
        .into_bytes();
        raw.extend_from_slice(&vec![b'x'; len_a.max(len_b)]);
        let result = parse_chunked(&raw, &chunks);
        if agree {
            let (reqs, _) = result.unwrap();
            prop_assert_eq!(reqs.len(), 1);
            prop_assert_eq!(reqs[0].body.len(), len_a);
        } else {
            prop_assert!(result.is_err(), "conflicting Content-Length must be rejected");
        }
    }

    /// `Content-Length` values that `usize::parse` would tolerate but HTTP
    /// forbids — sign prefixes, embedded junk, empty — are rejected.
    #[test]
    fn non_digit_content_length_is_rejected(
        junk in "[+x._\\-]{1,3}",
        digits in "[0-9]{0,4}",
        prefix in 0u8..2,
    ) {
        let value = if prefix == 1 {
            format!("{junk}{digits}")
        } else {
            format!("{digits}{junk}")
        };
        let raw =
            format!("POST /brief HTTP/1.1\r\nContent-Length: {value}\r\n\r\n").into_bytes();
        let result = parse_chunked(&raw, &[raw.len()]);
        prop_assert!(result.is_err(), "Content-Length `{}` must be rejected", value);
    }

    /// A header line without a colon is rejected, not silently skipped —
    /// skipping means client and server disagree about what was sent.
    #[test]
    fn colonless_header_line_is_rejected(garbage in "[a-zA-Z][a-zA-Z0-9 _\\-]{0,29}") {
        let raw = format!(
            "GET /healthz HTTP/1.1\r\nHost: t\r\n{garbage}\r\nAccept: */*\r\n\r\n"
        )
        .into_bytes();
        let result = parse_chunked(&raw, &[raw.len()]);
        prop_assert!(result.is_err(), "colon-less line `{}` must be rejected", garbage);
    }
}

// ---------------------------------------------------------------------------
// Live-server half: the same shapes over real sockets with keep-alive.
// ---------------------------------------------------------------------------

/// One shared server for every live test in this file: briefer
/// construction dominates startup, and these tests only need an address.
/// The handle is leaked so the server outlives every test thread.
fn shared_server() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let d = wb_corpus::Dataset::generate(&wb_corpus::DatasetConfig::tiny());
        let cfg = wb_core::ModelConfig::scaled(d.tokenizer.vocab().len());
        let briefer = wb_core::Briefer::from_model(
            wb_core::JointModel::new(wb_core::JointVariant::JointWb, cfg, 11),
            d.tokenizer.clone(),
        );
        let handle = wb_serve::start(
            briefer,
            wb_serve::ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: 2,
                queue_capacity: 32,
                cache_capacity: 32,
                max_body_bytes: MAX_BODY,
                ..wb_serve::ServeConfig::default()
            },
        )
        .expect("start framing test server");
        let addr = handle.addr();
        std::mem::forget(handle);
        addr
    })
}

const PAGE: &str = "<html><body><section><p>great velcro books , price : $ 9.99 .\
                    </p></section></body></html>";

/// Reads `n` `Content-Length`-framed responses off one connection,
/// carrying leftover bytes between responses.
fn read_responses(s: &mut TcpStream, n: usize) -> Vec<String> {
    let _ = s.set_read_timeout(Some(Duration::from_secs(30)));
    let mut buf: Vec<u8> = Vec::new();
    let mut tmp = [0u8; 4096];
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let head_end = loop {
            if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p + 4;
            }
            match s.read(&mut tmp) {
                Ok(0) => panic!("connection closed early: {:?}", String::from_utf8_lossy(&buf)),
                Ok(read) => buf.extend_from_slice(&tmp[..read]),
                Err(e) => panic!("no response: {e}"),
            }
        };
        let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (k, v) = l.split_once(':')?;
                k.eq_ignore_ascii_case("content-length").then(|| v.trim().parse().ok())?
            })
            .expect("Content-Length in response");
        while buf.len() < head_end + content_length {
            match s.read(&mut tmp) {
                Ok(0) => panic!("connection closed mid-body"),
                Ok(read) => buf.extend_from_slice(&tmp[..read]),
                Err(e) => panic!("read failed mid-body: {e}"),
            }
        }
        out.push(String::from_utf8_lossy(&buf[..head_end + content_length]).to_string());
        buf.drain(..head_end + content_length);
    }
    out
}

fn status_of(response: &str) -> u16 {
    response.split_ascii_whitespace().nth(1).unwrap().parse().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A request trickled to the live server in arbitrary chunks gets the
    /// same 200 and the same body as one sent whole on the same reused
    /// connection: split writes and keep-alive reuse do not change bytes.
    #[test]
    fn live_split_writes_and_reuse_are_byte_identical(
        chunks in proptest::collection::vec(1usize..30, 1..12),
    ) {
        let addr = shared_server();
        let raw = render_request("POST", "/brief", PAGE.as_bytes());
        let mut s = TcpStream::connect(addr).unwrap();
        // First: the request dribbled in `chunks`-sized writes.
        let mut offset = 0;
        for &n in &chunks {
            let end = (offset + n).min(raw.len());
            s.write_all(&raw[offset..end]).unwrap();
            s.flush().unwrap();
            offset = end;
            if offset == raw.len() {
                break;
            }
        }
        s.write_all(&raw[offset..]).unwrap();
        let trickled = read_responses(&mut s, 1).pop().unwrap();
        prop_assert_eq!(status_of(&trickled), 200);
        // Then: the same request sent whole on the SAME connection.
        s.write_all(&raw).unwrap();
        let whole = read_responses(&mut s, 1).pop().unwrap();
        prop_assert_eq!(status_of(&whole), 200);
        let body = |r: &str| r.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap();
        prop_assert_eq!(body(&trickled), body(&whole));
    }

    /// Pipelined requests over a live connection are each answered, in
    /// order, with the same body the request would get alone.
    #[test]
    fn live_pipelining_answers_every_request(n in 2usize..5) {
        let addr = shared_server();
        let raw = render_request("POST", "/brief", PAGE.as_bytes());
        let mut s = TcpStream::connect(addr).unwrap();
        let mut burst = Vec::new();
        for _ in 0..n {
            burst.extend_from_slice(&raw);
        }
        s.write_all(&burst).unwrap();
        let responses = read_responses(&mut s, n);
        let body = |r: &str| r.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap();
        for r in &responses {
            prop_assert_eq!(status_of(r), 200);
            prop_assert_eq!(body(r), body(&responses[0]));
        }
    }
}

/// Smuggling-shaped requests — conflicting duplicate `Content-Length`,
/// sign-prefixed values, `Transfer-Encoding: chunked`, colon-less header
/// lines — are rejected (`400`, or `501` for chunked) and the connection
/// is closed, both on a
/// fresh connection and after a successful keep-alive request. A parser
/// that honoured the second CL or skipped the garbage line would instead
/// desync and answer the smuggled payload.
#[test]
fn smuggling_shapes_get_400_on_fresh_and_reused_connections() {
    let addr = shared_server();
    let good = render_request("POST", "/brief", PAGE.as_bytes());
    let shapes: &[(&[u8], u16)] = &[
        (b"POST /brief HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 11\r\n\r\nGET / HTTP/1.1\r\n\r\n", 400),
        (b"POST /brief HTTP/1.1\r\nContent-Length: +5\r\n\r\nhello", 400),
        (b"POST /brief HTTP/1.1\r\nContent-Length: 5, 5\r\n\r\nhello", 400),
        // Chunked framing is deliberately unimplemented (501) — honouring
        // only part of it is how smuggling happens.
        (b"POST /brief HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n", 501),
        (b"GET /healthz HTTP/1.1\r\nthis line has no colon\r\n\r\n", 400),
    ];
    for &(shape, expected) in shapes {
        // Fresh connection.
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(shape);
        let response = read_responses(&mut s, 1).pop().unwrap();
        assert_eq!(status_of(&response), expected, "fresh: {response}");
        // Framing errors must close: the server cannot know where the
        // next request starts. EOF (Ok(0)) is the only acceptable next read.
        let mut rest = Vec::new();
        let closed = matches!(s.read_to_end(&mut rest), Ok(0));
        assert!(closed && rest.is_empty(), "connection must close after framing error");

        // Reused connection: one good request first, then the attack.
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&good).unwrap();
        let first = read_responses(&mut s, 1).pop().unwrap();
        assert_eq!(status_of(&first), 200);
        let _ = s.write_all(shape);
        let response = read_responses(&mut s, 1).pop().unwrap();
        assert_eq!(status_of(&response), expected, "reused: {response}");
        let mut rest = Vec::new();
        let closed = matches!(s.read_to_end(&mut rest), Ok(0));
        assert!(closed && rest.is_empty(), "connection must close after framing error");
    }
}
