//! A circuit breaker in front of the model: repeated model panics trip it
//! open, degrading `/brief` to cache-only + `503 Retry-After` instead of
//! feeding every request into a failing model; after a cooldown a single
//! probe request is let through, and its outcome closes or re-opens the
//! circuit.
//!
//! State machine:
//!
//! ```text
//! Closed --(threshold failures within window)--> Open
//! Open   --(cooldown elapsed, one probe admitted)--> HalfOpen
//! HalfOpen --(probe succeeds)--> Closed
//! HalfOpen --(probe fails)-----> Open (fresh cooldown)
//! ```
//!
//! Failures are recorded per *batch* (the executor runs batches strictly
//! sequentially, so batch granularity keeps the accounting race-free).
//! Metrics: `serve.breaker.state` gauge (0 closed, 1 open, 0.5 half-open),
//! `serve.breaker.opened` / `serve.breaker.reopened` / `serve.breaker.closed`
//! transition counters and `serve.breaker.rejected` for turned-away
//! requests.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning, exposed as `wb serve --breaker-*` flags.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Model failures within `window` that trip the circuit; `0` disables
    /// the breaker entirely (every request admitted, nothing recorded).
    pub threshold: u32,
    /// Sliding window the failures must fall into.
    pub window: Duration,
    /// How long the circuit stays open before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 5,
            window: Duration::from_secs(30),
            cooldown: Duration::from_secs(5),
        }
    }
}

enum State {
    Closed { failures: Vec<Instant> },
    Open { until: Instant },
    HalfOpen,
}

/// What the breaker says about one incoming model request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Circuit closed: proceed normally.
    Allow,
    /// Circuit half-open: proceed — this request is the probe whose
    /// outcome decides whether the circuit closes.
    Probe,
    /// Circuit open: answer `503` with this `Retry-After` without
    /// touching the model (cache hits are still served upstream).
    Reject {
        /// Whole seconds until a probe will be admitted (at least 1).
        retry_after_secs: u64,
    },
}

/// The breaker itself; shared between request workers (admission) and the
/// batch executor (outcome recording).
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker { cfg, state: Mutex::new(State::Closed { failures: Vec::new() }) }
    }

    /// The current state for dashboards (`/varz`, `wb top`): `"closed"`,
    /// `"open"` or `"half-open"`. A pure peek — it never transitions the
    /// state machine, so an elapsed cooldown still reads `"open"` until
    /// the next [`CircuitBreaker::admit`] turns it into a probe.
    pub fn state_name(&self) -> &'static str {
        match &*self.state.lock().unwrap() {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen => "half-open",
        }
    }

    /// Decides whether a model-path request may proceed right now.
    pub fn admit(&self) -> Admission {
        if self.cfg.threshold == 0 {
            return Admission::Allow;
        }
        let mut state = self.state.lock().unwrap();
        match &*state {
            State::Closed { .. } => Admission::Allow,
            State::Open { until } => {
                let now = Instant::now();
                if now >= *until {
                    *state = State::HalfOpen;
                    wb_obs::gauge!("serve.breaker.state", 0.5);
                    wb_obs::info!("circuit breaker half-open: admitting one probe");
                    Admission::Probe
                } else {
                    wb_obs::counter!("serve.breaker.rejected");
                    let secs = (*until - now).as_secs_f64().ceil().max(1.0) as u64;
                    Admission::Reject { retry_after_secs: secs }
                }
            }
            // One probe is already in flight; everyone else keeps backing
            // off until its outcome is known.
            State::HalfOpen => {
                wb_obs::counter!("serve.breaker.rejected");
                let secs = self.cfg.cooldown.as_secs_f64().ceil().max(1.0) as u64;
                Admission::Reject { retry_after_secs: secs }
            }
        }
    }

    /// Records one successful model batch.
    pub fn record_success(&self) {
        if self.cfg.threshold == 0 {
            return;
        }
        let mut state = self.state.lock().unwrap();
        match &mut *state {
            State::Closed { failures } => failures.clear(),
            State::HalfOpen => {
                *state = State::Closed { failures: Vec::new() };
                wb_obs::counter!("serve.breaker.closed");
                wb_obs::gauge!("serve.breaker.state", 0.0);
                wb_obs::info!("circuit breaker closed: probe succeeded");
            }
            // A success while open can only be a batch that was already
            // running when the circuit tripped; the cooldown stands.
            State::Open { .. } => {}
        }
    }

    /// Records one failed (panicked) model batch.
    pub fn record_failure(&self) {
        if self.cfg.threshold == 0 {
            return;
        }
        let now = Instant::now();
        let mut state = self.state.lock().unwrap();
        match &mut *state {
            State::Closed { failures } => {
                failures.push(now);
                failures.retain(|t| now.duration_since(*t) <= self.cfg.window);
                if failures.len() >= self.cfg.threshold as usize {
                    *state = State::Open { until: now + self.cfg.cooldown };
                    wb_obs::counter!("serve.breaker.opened");
                    wb_obs::gauge!("serve.breaker.state", 1.0);
                    wb_obs::warn!(
                        "circuit breaker opened: {} model failures within {:?}; \
                         cache-only for {:?}",
                        self.cfg.threshold,
                        self.cfg.window,
                        self.cfg.cooldown
                    );
                }
            }
            State::HalfOpen => {
                *state = State::Open { until: now + self.cfg.cooldown };
                wb_obs::counter!("serve.breaker.reopened");
                wb_obs::gauge!("serve.breaker.state", 1.0);
                wb_obs::warn!("circuit breaker re-opened: probe failed");
            }
            State::Open { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(threshold: u32, cooldown_ms: u64) -> BreakerConfig {
        BreakerConfig {
            threshold,
            window: Duration::from_secs(10),
            cooldown: Duration::from_millis(cooldown_ms),
        }
    }

    #[test]
    fn stays_closed_below_threshold() {
        let b = CircuitBreaker::new(cfg(3, 50));
        b.record_failure();
        b.record_failure();
        assert_eq!(b.admit(), Admission::Allow);
    }

    #[test]
    fn trips_open_at_threshold_and_rejects() {
        let b = CircuitBreaker::new(cfg(2, 10_000));
        b.record_failure();
        b.record_failure();
        match b.admit() {
            Admission::Reject { retry_after_secs } => assert!(retry_after_secs >= 1),
            other => panic!("expected Reject, got {other:?}"),
        }
    }

    #[test]
    fn success_clears_the_failure_window() {
        let b = CircuitBreaker::new(cfg(2, 50));
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.admit(), Admission::Allow, "success must reset the count");
    }

    #[test]
    fn half_open_probe_success_closes() {
        let b = CircuitBreaker::new(cfg(1, 20));
        b.record_failure();
        assert!(matches!(b.admit(), Admission::Reject { .. }));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.admit(), Admission::Probe);
        // While the probe is out, everyone else is still rejected.
        assert!(matches!(b.admit(), Admission::Reject { .. }));
        b.record_success();
        assert_eq!(b.admit(), Admission::Allow);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let b = CircuitBreaker::new(cfg(1, 20));
        b.record_failure();
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.admit(), Admission::Probe);
        b.record_failure();
        assert!(matches!(b.admit(), Admission::Reject { .. }), "failed probe must re-open");
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.admit(), Admission::Probe, "a fresh cooldown admits another probe");
    }

    #[test]
    fn state_name_tracks_transitions() {
        let b = CircuitBreaker::new(cfg(1, 20));
        assert_eq!(b.state_name(), "closed");
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(b.admit(), Admission::Probe);
        assert_eq!(b.state_name(), "half-open");
        b.record_success();
        assert_eq!(b.state_name(), "closed");
    }

    #[test]
    fn threshold_zero_disables_everything() {
        let b = CircuitBreaker::new(cfg(0, 10));
        for _ in 0..100 {
            b.record_failure();
        }
        assert_eq!(b.admit(), Admission::Allow);
    }
}
