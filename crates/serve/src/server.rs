//! The briefing server: a bounded accept queue feeding a fixed worker
//! pool, with briefing fan-out delegated to the batch executor and an LRU
//! response cache in front of the model.
//!
//! Load-shedding contract: an accepted connection is always answered —
//! queued-and-served, or `503 + Retry-After` when the queue is full — and
//! no handler can hang: socket reads, socket writes and the wait for the
//! batch executor are all bounded by the request timeout. A model panic
//! fails the affected requests with 500 and the server keeps serving.

use crate::batch::{Batcher, BriefOutcome, Job};
use crate::breaker::{Admission, BreakerConfig, CircuitBreaker};
use crate::cache::{fnv1a, Fingerprint, LruCache};
use crate::http::{self, HttpError};
use crate::telemetry::{self, StageTimings};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wb_core::Briefer;

/// Server tuning knobs, exposed one-to-one as `wb serve` flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, `HOST:PORT` (port 0 picks a free port — used by tests).
    pub addr: String,
    /// Request worker threads (the model fan-out has its own rayon pool).
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker before new
    /// arrivals are shed with 503.
    pub queue_capacity: usize,
    /// LRU response-cache entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Bound on socket reads/writes and on waiting for the batch executor.
    pub request_timeout_ms: u64,
    /// Artificial per-batch stall before the model runs — a load-testing
    /// knob that makes overload reproducible; 0 (the default) in
    /// production.
    pub handler_delay_ms: u64,
    /// Model failures (panicked batches) within the breaker window that
    /// trip the circuit breaker; 0 disables the breaker.
    pub breaker_threshold: u32,
    /// Sliding failure window of the circuit breaker.
    pub breaker_window_ms: u64,
    /// How long a tripped breaker serves cache-only before probing.
    pub breaker_cooldown_ms: u64,
    /// Emit a structured JSON access-log line for 1 in N `/brief`
    /// requests; 0 (the default) disables sampling. Slow requests log
    /// unconditionally regardless of this setting.
    pub access_log_sample: u64,
    /// `/brief` requests slower than this always log their full stage
    /// breakdown at WARN; 0 disables slow-request logging.
    pub slow_request_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let breaker = BreakerConfig::default();
        ServeConfig {
            addr: "127.0.0.1:8660".to_string(),
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8),
            queue_capacity: 256,
            cache_capacity: 1024,
            max_body_bytes: 2 * 1024 * 1024,
            request_timeout_ms: 30_000,
            handler_delay_ms: 0,
            breaker_threshold: breaker.threshold,
            breaker_window_ms: breaker.window.as_millis() as u64,
            breaker_cooldown_ms: breaker.cooldown.as_millis() as u64,
            access_log_sample: 0,
            slow_request_ms: 1000,
        }
    }
}

struct Shared {
    briefer: Briefer,
    cfg: ServeConfig,
    cache: Mutex<LruCache<Arc<String>>>,
    batcher: Batcher,
    breaker: CircuitBreaker,
    stopping: AtomicBool,
    queue_depth: AtomicUsize,
    access_log_seq: AtomicU64,
    shutdown_tx: Mutex<mpsc::Sender<()>>,
}

/// The running server. Dropping the handle shuts the server down
/// gracefully (finish queued and in-flight requests, then stop).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    executor: Option<JoinHandle<()>>,
    shutdown_rx: Receiver<()>,
}

/// Starts the briefing server; returns once the listener is bound and the
/// worker pool is running.
pub fn start(briefer: Briefer, cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    // Nonblocking accept + short poll lets the acceptor notice `stopping`
    // on its own — no wake-up connection needed at shutdown.
    listener.set_nonblocking(true)?;
    let workers = cfg.workers.max(1);
    let queue_capacity = cfg.queue_capacity.max(1);
    let (shutdown_tx, shutdown_rx) = mpsc::channel();
    let breaker = CircuitBreaker::new(BreakerConfig {
        threshold: cfg.breaker_threshold,
        window: Duration::from_millis(cfg.breaker_window_ms),
        cooldown: Duration::from_millis(cfg.breaker_cooldown_ms),
    });
    let shared = Arc::new(Shared {
        cache: Mutex::new(LruCache::new(cfg.cache_capacity)),
        batcher: Batcher::new(),
        breaker,
        stopping: AtomicBool::new(false),
        queue_depth: AtomicUsize::new(0),
        access_log_seq: AtomicU64::new(0),
        shutdown_tx: Mutex::new(shutdown_tx),
        briefer,
        cfg,
    });
    // Pin the observability epoch so `/varz` and snapshot uptimes count
    // from server start even if no metric was recorded earlier.
    let _ = wb_obs::window::epoch();
    // Keep the `proc.*` runtime gauges (RSS, threads, open fds) fresh
    // for `/varz`, `wb top` and Prometheus scrapes.
    wb_obs::procstat::spawn_sampler(Duration::from_secs(1));
    wb_obs::info!(
        "wb serve listening on {addr} ({workers} workers, queue {queue_capacity}, cache {})",
        shared.cfg.cache_capacity
    );
    wb_obs::gauge!("serve.workers", workers as f64);

    // Each queued connection carries its accept instant so the worker can
    // attribute the time it sat in the queue (`queue_wait` stage).
    let (conn_tx, conn_rx) = mpsc::sync_channel::<(TcpStream, Instant)>(queue_capacity);
    let conn_rx = Arc::new(Mutex::new(conn_rx));

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("wb-serve-accept".to_string())
            .spawn(move || acceptor_loop(&shared, listener, conn_tx))?
    };
    let mut worker_handles = Vec::with_capacity(workers);
    for i in 0..workers {
        let shared = Arc::clone(&shared);
        let rx = Arc::clone(&conn_rx);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("wb-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, &rx))?,
        );
    }
    let executor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new().name("wb-serve-batch".to_string()).spawn(move || {
            let delay = Duration::from_millis(shared.cfg.handler_delay_ms);
            shared.batcher.run_executor(&shared.briefer, delay, &shared.breaker);
        })?
    };
    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers: worker_handles,
        executor: Some(executor),
        shutdown_rx,
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client posts `/shutdown`.
    pub fn wait_for_shutdown_request(&self) {
        let _ = self.shutdown_rx.recv();
    }

    /// Waits up to `timeout` for a `/shutdown` request; `true` once one
    /// has arrived. Lets `wb serve` interleave the wait with polling the
    /// process signal flag (SIGINT/SIGTERM).
    pub fn poll_shutdown_request(&self, timeout: Duration) -> bool {
        self.shutdown_rx.recv_timeout(timeout).is_ok()
    }

    /// Gracefully stops the server: stop accepting, serve everything
    /// already accepted, drain the batch queue, join every thread.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.acceptor.is_none() {
            return;
        }
        wb_obs::info!("wb serve shutting down (draining in-flight requests)");
        // The acceptor's nonblocking poll loop sees `stopping` within one
        // poll interval and exits, dropping the queue sender so the
        // workers drain what is left and stop.
        self.shared.stopping.store(true, Ordering::SeqCst);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // All workers are done, so no further job can arrive: close the
        // batcher and let the executor finish its final batch.
        self.shared.batcher.close();
        if let Some(e) = self.executor.take() {
            let _ = e.join();
        }
        wb_obs::info!("wb serve stopped");
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

/// How long the acceptor sleeps when no connection is pending; bounds how
/// long shutdown waits for it to notice `stopping`.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

fn acceptor_loop(
    shared: &Shared,
    listener: TcpListener,
    conn_tx: SyncSender<(TcpStream, Instant)>,
) {
    loop {
        if shared.stopping.load(Ordering::SeqCst) {
            break;
        }
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(e) => {
                wb_obs::warn!("accept failed: {e}");
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
        };
        // The listener is nonblocking for the poll loop; each accepted
        // connection goes back to blocking reads/writes with timeouts.
        if let Err(e) = stream.set_nonblocking(false) {
            wb_obs::warn!("cannot make accepted connection blocking: {e}");
            continue;
        }
        let depth = shared.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        wb_obs::gauge!("serve.queue.depth", depth as f64);
        wb_obs::gauge_max!("serve.queue.depth.peak", depth as f64);
        match conn_tx.try_send((stream, Instant::now())) {
            Ok(()) => {}
            Err(TrySendError::Full((stream, _))) => {
                shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                wb_obs::counter!("serve.requests");
                wb_obs::counter!("serve.rejected.queue_full");
                wb_obs::counter!("serve.responses.5xx");
                // Answer the shed connection off-thread so one slow client
                // cannot stall the accept loop mid-overload.
                let spawned = std::thread::Builder::new()
                    .name("wb-serve-shed".to_string())
                    .spawn(move || shed_overloaded(stream));
                if spawned.is_err() {
                    wb_obs::warn!("could not spawn shed thread; dropping connection");
                }
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
}

/// Tells one over-capacity client to back off: `503 + Retry-After`, then a
/// bounded drain so the close is a clean FIN.
fn shed_overloaded(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(1000)));
    let _ = http::respond(
        &mut stream,
        503,
        "application/json",
        &http::error_body("server overloaded; retry shortly"),
        &[("Retry-After", "1")],
    );
    http::drain(&mut stream, 64 * 1024);
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<(TcpStream, Instant)>>) {
    loop {
        // Holding the lock while blocked in recv is the hand-off point for
        // the whole pool: whichever worker holds it takes the next
        // connection, the rest queue on the mutex.
        let (stream, accepted) = match rx.lock().unwrap().recv() {
            Ok(s) => s,
            Err(_) => return, // acceptor gone and queue drained
        };
        let depth = shared.queue_depth.fetch_sub(1, Ordering::Relaxed) - 1;
        wb_obs::gauge!("serve.queue.depth", depth as f64);
        handle_connection(shared, stream, accepted);
    }
}

fn bump_status(status: u16) {
    match status / 100 {
        2 => wb_obs::counter!("serve.responses.2xx"),
        4 => wb_obs::counter!("serve.responses.4xx"),
        5 => wb_obs::counter!("serve.responses.5xx"),
        _ => {}
    }
}

/// Writes a response with an explicit content type, records its
/// status-class counter and returns the microseconds spent writing (the
/// `write` stage).
fn send_typed(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> u64 {
    bump_status(status);
    let t0 = Instant::now();
    if let Err(e) = http::respond(stream, status, content_type, body, extra_headers) {
        wb_obs::counter!("serve.responses.write_failed");
        wb_obs::debug!("response write failed: {e}");
    }
    telemetry::micros_since(t0)
}

/// [`send_typed`] with the JSON content type every normal response uses.
fn send(
    stream: &mut TcpStream,
    status: u16,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> u64 {
    send_typed(stream, status, "application/json", body, extra_headers)
}

fn handle_connection(shared: &Shared, mut stream: TcpStream, accepted: Instant) {
    let t0 = Instant::now();
    let _span = wb_obs::span!("serve.request");
    let mut timings = StageTimings {
        queue_wait_us: u64::try_from(t0.saturating_duration_since(accepted).as_micros())
            .unwrap_or(u64::MAX),
        ..StageTimings::default()
    };
    let _ = stream.set_nodelay(true);
    let timeout = Duration::from_millis(shared.cfg.request_timeout_ms.max(1));
    let _ = stream.set_write_timeout(Some(timeout));
    // read_request manages its own read timeouts: `timeout` bounds the
    // *total* time spent reading the request, however slowly the client
    // trickles bytes.
    let req = match http::read_request(&mut stream, shared.cfg.max_body_bytes, timeout) {
        Ok(r) => r,
        Err(HttpError::Empty) => return, // port probe; nothing to answer
        Err(e) => {
            wb_obs::counter!("serve.requests");
            let status = e.status();
            match status {
                408 => wb_obs::counter!("serve.rejected.timeout"),
                413 => wb_obs::counter!("serve.rejected.too_large"),
                _ => {}
            }
            // The request never parsed, so no inbound id exists; mint one
            // anyway so even rejections are correlatable.
            let id = telemetry::next_request_id();
            send(
                &mut stream,
                status,
                &http::error_body(&e.detail()),
                &[("X-Request-Id", id.as_str())],
            );
            // The request was rejected without being consumed; drain a
            // bounded amount so closing sends FIN, not RST (see
            // http::drain).
            http::drain(&mut stream, 256 * 1024);
            wb_obs::histogram!("serve.request.latency_us", t0.elapsed().as_micros());
            wb_obs::window_histogram!(
                "serve.request.latency_us",
                t0.elapsed().as_micros() as f64
            );
            wb_obs::window_counter!("serve.requests");
            return;
        }
    };
    timings.parse_us = telemetry::micros_since(t0);
    let id = telemetry::request_id(req.header("x-request-id"));
    wb_obs::counter!("serve.requests");
    let data_plane = req.method == "POST" && req.path == "/brief";
    let (status, cache_state) = if data_plane {
        handle_brief(shared, &mut stream, &req, &id, &mut timings)
    } else {
        (handle_control(shared, &mut stream, &req, &id), "-")
    };
    let total_us = telemetry::micros_since(t0);
    if data_plane {
        // Only model-serving requests feed the request-latency histogram
        // and the windowed live metrics; control-plane chatter (health
        // probes, metric scrapes) has its own histogram below so it
        // cannot skew serving percentiles.
        wb_obs::histogram!("serve.request.latency_us", total_us);
        wb_obs::window_histogram!("serve.request.latency_us", total_us);
        wb_obs::window_counter!("serve.requests");
        if status >= 500 {
            wb_obs::window_counter!("serve.errors");
        }
        timings.record();
        let slow = shared.cfg.slow_request_ms > 0
            && total_us >= shared.cfg.slow_request_ms.saturating_mul(1000);
        let sampled = shared.cfg.access_log_sample > 0
            && shared
                .access_log_seq
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(shared.cfg.access_log_sample);
        if slow || sampled {
            let line = telemetry::access_log_line(
                &id,
                &req.method,
                &req.path,
                status,
                total_us,
                cache_state,
                &timings,
            );
            if slow {
                wb_obs::warn!("slow request: {line}");
            } else {
                wb_obs::info!("access: {line}");
            }
        }
    } else {
        wb_obs::histogram!("serve.control.latency_us", total_us);
    }
}

/// Handles every non-`/brief` route (the control plane); returns the
/// response status. These requests are recorded under
/// `serve.control.latency_us`, never under the serving-path histogram.
fn handle_control(
    shared: &Shared,
    stream: &mut TcpStream,
    req: &http::Request,
    id: &str,
) -> u16 {
    let id_header = ("X-Request-Id", id);
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            send(stream, 200, b"{\"status\":\"ok\"}", &[id_header]);
            200
        }
        ("GET", "/metrics") => match req.query_param("format") {
            None | Some("json") => {
                let body = wb_obs::metrics::snapshot().to_json();
                send(stream, 200, body.as_bytes(), &[id_header]);
                200
            }
            Some("prometheus") => {
                // Cumulative families, then the windowed live view plus
                // the derived gauges `/varz` computes, so both endpoints
                // agree on "what is happening now".
                let mut body = wb_obs::prometheus::render(&wb_obs::metrics::snapshot());
                let ws = wb_obs::window::snapshot();
                body.push_str(&wb_obs::prometheus::render_window(&ws));
                body.push_str(&prometheus_window_derived(&ws));
                send_typed(
                    stream,
                    200,
                    wb_obs::prometheus::CONTENT_TYPE,
                    body.as_bytes(),
                    &[id_header],
                );
                200
            }
            Some(other) => {
                send(
                    stream,
                    400,
                    &http::error_body(&format!(
                        "unknown metrics format `{other}` (expected `json` or `prometheus`)"
                    )),
                    &[id_header],
                );
                400
            }
        },
        ("GET", "/varz") => {
            let body = varz_body(shared);
            send(stream, 200, body.as_bytes(), &[id_header]);
            200
        }
        ("GET", "/pprof") => handle_pprof(stream, req, id),
        ("POST", "/shutdown") => {
            send(stream, 200, b"{\"status\":\"shutting down\"}", &[id_header]);
            let _ = shared.shutdown_tx.lock().unwrap().send(());
            200
        }
        (_, "/brief") | (_, "/shutdown") => {
            send(
                stream,
                405,
                &http::error_body("method not allowed"),
                &[("Allow", "POST"), id_header],
            );
            405
        }
        (_, "/healthz") | (_, "/metrics") | (_, "/varz") | (_, "/pprof") => {
            send(
                stream,
                405,
                &http::error_body("method not allowed"),
                &[("Allow", "GET"), id_header],
            );
            405
        }
        (_, path) => {
            send(stream, 404, &http::error_body(&format!("no route for {path}")), &[id_header]);
            404
        }
    }
}

/// Serves `GET /pprof?seconds=N&hz=N&mode=wall|cpu&format=collapsed|svg`:
/// runs a timed span-stack capture on the calling worker thread and
/// streams the folded result (or a rendered flamegraph). The worker is
/// hidden from the sampler for the duration — otherwise its own
/// `serve.request` span, open for the whole capture, would dominate
/// every profile. One capture runs at a time; concurrent requests get
/// 409 with a Retry-After hint.
fn handle_pprof(stream: &mut TcpStream, req: &http::Request, id: &str) -> u16 {
    let id_header = ("X-Request-Id", id);
    let bad = |stream: &mut TcpStream, msg: String| -> u16 {
        send(stream, 400, &http::error_body(&msg), &[id_header]);
        400
    };
    let seconds = match req.query_param("seconds").unwrap_or("2").parse::<f64>() {
        Ok(s) if s > 0.0 && s <= 60.0 => s,
        _ => return bad(stream, "seconds must be a number in (0, 60]".to_string()),
    };
    let hz = match req.query_param("hz").unwrap_or("99").parse::<u32>() {
        Ok(h) if (1..=1000).contains(&h) => h,
        _ => return bad(stream, "hz must be an integer in 1..=1000".to_string()),
    };
    let mode = req.query_param("mode").unwrap_or("wall");
    let Some(mode) = wb_obs::profile::Mode::parse(mode) else {
        return bad(stream, format!("unknown mode `{mode}` (expected `wall` or `cpu`)"));
    };
    let format = req.query_param("format").unwrap_or("collapsed");
    if format != "collapsed" && format != "svg" {
        return bad(
            stream,
            format!("unknown format `{format}` (expected `collapsed` or `svg`)"),
        );
    }
    let _hidden = wb_obs::profile::hide_current_thread();
    let opts = wb_obs::profile::Options { hz, mode };
    match wb_obs::profile::capture(Duration::from_secs_f64(seconds), opts) {
        Ok(profile) => {
            let collapsed = profile.to_collapsed();
            if format == "svg" {
                let title = format!(
                    "wb serve {} profile — {:.1}s at {} hz, {} samples",
                    profile.mode.as_str(),
                    profile.duration.as_secs_f64(),
                    profile.hz,
                    profile.total_weight
                );
                match wb_obs::flame::render_svg(&collapsed, &title) {
                    Ok(svg) => {
                        send_typed(
                            stream,
                            200,
                            wb_obs::flame::CONTENT_TYPE,
                            svg.as_bytes(),
                            &[id_header],
                        );
                        200
                    }
                    Err(e) => {
                        send(
                            stream,
                            500,
                            &http::error_body(&format!("flamegraph: {e}")),
                            &[id_header],
                        );
                        500
                    }
                }
            } else {
                send_typed(
                    stream,
                    200,
                    "text/plain; charset=utf-8",
                    collapsed.as_bytes(),
                    &[id_header],
                );
                200
            }
        }
        Err(e) => {
            // The single-capture guard is the only runtime failure mode.
            let retry = format!("{}", seconds.ceil() as u64);
            send(
                stream,
                409,
                &http::error_body(&e),
                &[("Retry-After", retry.as_str()), id_header],
            );
            409
        }
    }
}

/// The derived live gauges `/varz` computes (rps and error rate per
/// window), rendered for the Prometheus exposition so both endpoints
/// tell one story.
fn prometheus_window_derived(ws: &wb_obs::window::WindowSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let sum = |name: &str, secs: u64| {
        ws.counters
            .get(name)
            .map(|c| if secs == 10 { c.sum_10s } else { c.sum_60s })
            .unwrap_or(0)
    };
    out.push_str("# HELP wb_window_rps Live requests per second over the trailing window.\n");
    out.push_str("# TYPE wb_window_rps gauge\n");
    for secs in [10u64, 60] {
        let _ = writeln!(
            out,
            "wb_window_rps{{window=\"{secs}s\"}} {}",
            sum("serve.requests", secs) as f64 / secs as f64
        );
    }
    out.push_str("# HELP wb_window_error_rate Errors per request over the trailing window.\n");
    out.push_str("# TYPE wb_window_error_rate gauge\n");
    for secs in [10u64, 60] {
        let (req, err) = (sum("serve.requests", secs), sum("serve.errors", secs));
        let rate = if req > 0 { err as f64 / req as f64 } else { 0.0 };
        let _ = writeln!(out, "wb_window_error_rate{{window=\"{secs}s\"}} {rate}");
    }
    out
}

/// Builds the `/varz` body: the windowed live view (10 s and 60 s) plus
/// instantaneous server state — what `wb top` polls.
fn varz_body(shared: &Shared) -> String {
    use std::collections::BTreeMap;
    use wb_obs::json::Json;
    let ws = wb_obs::window::snapshot();
    let window_view = |secs: u64| -> Json {
        let csum = |name: &str| {
            ws.counters
                .get(name)
                .map(|c| if secs == 10 { c.sum_10s } else { c.sum_60s })
                .unwrap_or(0)
        };
        let hist_view = |name: &str| -> Json {
            let mut o = BTreeMap::new();
            if let Some(h) = ws.histograms.get(name) {
                let hs = if secs == 10 { &h.w10s } else { &h.w60s };
                o.insert("count".to_string(), Json::Num(hs.count as f64));
                o.insert("mean".to_string(), Json::Num(hs.mean()));
                for (key, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                    if let Some(v) = hs.quantile(q) {
                        o.insert(key.to_string(), Json::Num(v));
                    }
                }
            }
            Json::Obj(o)
        };
        let requests = csum("serve.requests");
        let errors = csum("serve.errors");
        let (hits, misses) = (csum("serve.cache.hit"), csum("serve.cache.miss"));
        let mut o = BTreeMap::new();
        o.insert("requests".to_string(), Json::Num(requests as f64));
        o.insert("rps".to_string(), Json::Num(requests as f64 / secs as f64));
        o.insert("errors".to_string(), Json::Num(errors as f64));
        o.insert(
            "error_rate".to_string(),
            Json::Num(if requests > 0 { errors as f64 / requests as f64 } else { 0.0 }),
        );
        let mut cache = BTreeMap::new();
        cache.insert("hits".to_string(), Json::Num(hits as f64));
        cache.insert("misses".to_string(), Json::Num(misses as f64));
        cache.insert(
            "hit_ratio".to_string(),
            Json::Num(if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            }),
        );
        o.insert("cache".to_string(), Json::Obj(cache));
        o.insert("latency_us".to_string(), hist_view("serve.request.latency_us"));
        let stages =
            ["queue_wait", "parse", "cache", "batch_wait", "model", "serialize", "write"]
                .iter()
                .map(|stage| (stage.to_string(), hist_view(&format!("serve.stage.{stage}_us"))))
                .collect();
        o.insert("stages_us".to_string(), Json::Obj(stages));
        Json::Obj(o)
    };
    let mut windows = BTreeMap::new();
    windows.insert("10s".to_string(), window_view(10));
    windows.insert("60s".to_string(), window_view(60));
    let mut queue = BTreeMap::new();
    queue.insert(
        "depth".to_string(),
        Json::Num(shared.queue_depth.load(Ordering::Relaxed) as f64),
    );
    queue.insert(
        "peak".to_string(),
        Json::Num(wb_obs::metrics::registry().gauge("serve.queue.depth.peak").get()),
    );
    let mut cache = BTreeMap::new();
    cache.insert("size".to_string(), Json::Num(shared.cache.lock().unwrap().len() as f64));
    cache.insert("capacity".to_string(), Json::Num(shared.cfg.cache_capacity as f64));
    let mut root = BTreeMap::new();
    root.insert(
        "uptime_ms".to_string(),
        Json::Num(wb_obs::window::epoch().elapsed().as_secs_f64() * 1e3),
    );
    root.insert("windows".to_string(), Json::Obj(windows));
    root.insert("queue".to_string(), Json::Obj(queue));
    root.insert("cache".to_string(), Json::Obj(cache));
    // Runtime stats from the background procstat sampler; read through
    // the gauges (not /proc directly) so /varz never blocks on procfs
    // and `wb top` sees exactly what Prometheus scrapes. Empty object
    // where procfs is unavailable.
    let mut proc = BTreeMap::new();
    let g = |name: &str| wb_obs::metrics::registry().gauge(name).get();
    if g("proc.threads") > 0.0 {
        proc.insert("rss_bytes".to_string(), Json::Num(g("proc.rss_bytes")));
        proc.insert("threads".to_string(), Json::Num(g("proc.threads")));
        proc.insert("open_fds".to_string(), Json::Num(g("proc.open_fds")));
    }
    root.insert("proc".to_string(), Json::Obj(proc));
    root.insert("breaker".to_string(), Json::Str(shared.breaker.state_name().to_string()));
    root.insert("workers".to_string(), Json::Num(shared.cfg.workers.max(1) as f64));
    Json::Obj(root).render()
}

/// Serves one `POST /brief`, filling `t` with the stage breakdown as the
/// request moves through the pipeline. Every response echoes the request
/// id and carries a `Server-Timing` header with the stages known at send
/// time (the `write` stage itself lands only in metrics and the access
/// log). Returns the response status and the cache disposition.
fn handle_brief(
    shared: &Shared,
    stream: &mut TcpStream,
    req: &http::Request,
    id: &str,
    t: &mut StageTimings,
) -> (u16, &'static str) {
    // Every exit funnels through here so no response can forget the id or
    // the timing header, and the write stage is always captured.
    macro_rules! reply {
        ($status:expr, $cache:expr, $body:expr, $($extra:expr),*) => {{
            let st = t.server_timing();
            t.write_us = send(
                stream,
                $status,
                $body,
                &[("X-Request-Id", id), ("Server-Timing", st.as_str()), $($extra),*],
            );
            return ($status, $cache);
        }};
    }
    let body = req.body.as_slice();
    if body.is_empty() {
        reply!(400, "-", &http::error_body("POST /brief expects an HTML body"),);
    }
    let cache_t0 = Instant::now();
    let key = fnv1a(body);
    // The fingerprint guards against FNV-1a collisions: a colliding page is
    // treated as a miss instead of being served another page's brief.
    let fp = Fingerprint::of(body);
    // Cache first: cached pages keep being served even while the circuit
    // breaker has the model path disabled.
    if shared.cfg.cache_capacity > 0 {
        let cached = shared.cache.lock().unwrap().get(key, fp).cloned();
        if let Some(json) = cached {
            wb_obs::counter!("serve.cache.hit");
            wb_obs::window_counter!("serve.cache.hit");
            t.cache_us = telemetry::micros_since(cache_t0);
            reply!(200, "hit", json.as_bytes(), ("X-Cache", "hit"));
        }
        wb_obs::counter!("serve.cache.miss");
        wb_obs::window_counter!("serve.cache.miss");
    }
    t.cache_us = telemetry::micros_since(cache_t0);
    // Per-request deadline: `X-Deadline-Ms` can only tighten the server's
    // request timeout, never extend it.
    let deadline_ms = match req.header("x-deadline-ms") {
        None => shared.cfg.request_timeout_ms,
        Some(v) => match v.parse::<u64>() {
            Ok(ms) if ms > 0 => ms.min(shared.cfg.request_timeout_ms),
            _ => {
                reply!(
                    400,
                    "miss",
                    &http::error_body(&format!(
                        "bad X-Deadline-Ms `{v}` (expected a positive number of milliseconds)"
                    )),
                );
            }
        },
    };
    match shared.breaker.admit() {
        Admission::Allow | Admission::Probe => {}
        Admission::Reject { retry_after_secs } => {
            let retry = retry_after_secs.to_string();
            reply!(
                503,
                "miss",
                &http::error_body(
                    "briefing disabled after repeated model failures; \
                     cached pages are still served",
                ),
                ("Retry-After", retry.as_str())
            );
        }
    }
    let html = String::from_utf8_lossy(body).into_owned();
    let deadline = Instant::now() + Duration::from_millis(deadline_ms.max(1));
    let (tx, rx) = mpsc::channel();
    if !shared.batcher.submit(Job { html, deadline, submitted: Instant::now(), tx }) {
        reply!(503, "miss", &http::error_body("server is shutting down"), ("Retry-After", "1"));
    }
    let timeout = Duration::from_millis(shared.cfg.request_timeout_ms.max(1));
    let completion = match rx.recv_timeout(timeout) {
        Ok(c) => c,
        Err(RecvTimeoutError::Timeout) => {
            wb_obs::counter!("serve.rejected.timeout");
            reply!(
                503,
                "miss",
                &http::error_body("briefing did not finish within the request timeout"),
                ("Retry-After", "1")
            );
        }
        Err(RecvTimeoutError::Disconnected) => {
            reply!(500, "miss", &http::error_body("batch executor is gone"),);
        }
    };
    t.batch_wait_us = completion.batch_wait_us;
    t.model_us = completion.model_us;
    t.serialize_us = completion.serialize_us;
    match completion.outcome {
        BriefOutcome::Ok(json) => {
            if shared.cfg.cache_capacity > 0 {
                let fill_t0 = Instant::now();
                let mut cache = shared.cache.lock().unwrap();
                cache.insert(key, fp, Arc::clone(&json));
                wb_obs::gauge!("serve.cache.size", cache.len() as f64);
                drop(cache);
                t.cache_us += telemetry::micros_since(fill_t0);
            }
            reply!(200, "miss", json.as_bytes(), ("X-Cache", "miss"));
        }
        BriefOutcome::Unbriefable(detail) => {
            wb_obs::counter!("serve.unbriefable");
            reply!(422, "miss", &http::error_body(&detail),);
        }
        BriefOutcome::Internal(detail) => {
            reply!(500, "miss", &http::error_body(&detail),);
        }
        BriefOutcome::Expired => {
            reply!(
                504,
                "miss",
                &http::error_body("request deadline expired before briefing started"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use wb_core::{JointModel, JointVariant, ModelConfig};
    use wb_corpus::{Dataset, DatasetConfig};

    fn tiny_briefer() -> Briefer {
        let d = Dataset::generate(&DatasetConfig::tiny());
        let cfg = ModelConfig::scaled(d.tokenizer.vocab().len());
        Briefer::from_model(
            JointModel::new(JointVariant::JointWb, cfg, 11),
            d.tokenizer.clone(),
        )
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 16,
            max_body_bytes: 64 * 1024,
            request_timeout_ms: 10_000,
            handler_delay_ms: 0,
            ..ServeConfig::default()
        }
    }

    /// Sends one raw HTTP request and returns (status, body). Write errors
    /// are tolerated (the server may respond-and-close before consuming a
    /// rejected request); the response read is what matters.
    fn roundtrip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(raw);
        let _ = s.flush();
        let mut text = String::new();
        let mut buf = [0u8; 4096];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => text.push_str(&String::from_utf8_lossy(&buf[..n])),
                Err(_) if !text.is_empty() => break,
                Err(e) => panic!("no response from server: {e}"),
            }
        }
        let status: u16 =
            text.split_ascii_whitespace().nth(1).expect("status code").parse().unwrap();
        let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    fn post_brief(addr: SocketAddr, html: &str) -> (u16, String) {
        let raw = format!(
            "POST /brief HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{html}",
            html.len()
        );
        roundtrip(addr, raw.as_bytes())
    }

    /// Like `roundtrip`, but returns the whole response text including the
    /// status line and headers.
    fn roundtrip_full(addr: SocketAddr, raw: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(raw);
        let _ = s.flush();
        let mut text = String::new();
        let mut buf = [0u8; 4096];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => text.push_str(&String::from_utf8_lossy(&buf[..n])),
                Err(_) if !text.is_empty() => break,
                Err(e) => panic!("no response from server: {e}"),
            }
        }
        text
    }

    const PAGE: &str = "<html><body><section><p>great velcro books , price : $ 9.99 .\
                        </p></section></body></html>";

    #[test]
    fn routes_brief_healthz_metrics_and_errors() {
        let briefer = tiny_briefer();
        let expected =
            serde_json::to_string_pretty(&briefer.brief_html(PAGE).unwrap()).unwrap();
        let h = start(briefer, test_config()).unwrap();
        let addr = h.addr();

        let (status, body) = post_brief(addr, PAGE);
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, expected, "served brief must equal the library brief byte-for-byte");
        // Second request: cached, still byte-identical.
        let (status, body2) = post_brief(addr, PAGE);
        assert_eq!(status, 200);
        assert_eq!(body2, expected);

        let (status, body) = roundtrip(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));

        let (status, body) = roundtrip(addr, b"GET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"counters\""), "metrics body not a snapshot: {body}");

        let (status, _) = roundtrip(addr, b"GET /nope HTTP/1.1\r\n\r\n");
        assert_eq!(status, 404);
        let (status, _) = roundtrip(addr, b"GET /brief HTTP/1.1\r\n\r\n");
        assert_eq!(status, 405);
        let (status, _) = post_brief(addr, "");
        assert_eq!(status, 400);
        // A page with no visible text is unbriefable, not a server error.
        let (status, body) = post_brief(addr, "<html><head><title>x</title></head></html>");
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("error"), "{body}");

        h.shutdown();
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err(),
            "listener must be closed after shutdown"
        );
    }

    #[test]
    fn brief_responses_carry_request_id_and_server_timing() {
        let h = start(tiny_briefer(), test_config()).unwrap();
        let addr = h.addr();
        let raw = format!(
            "POST /brief HTTP/1.1\r\nHost: t\r\nX-Request-Id: test-rid-7\r\n\
             Content-Length: {}\r\n\r\n{PAGE}",
            PAGE.len()
        );
        let text = roundtrip_full(addr, raw.as_bytes());
        assert!(
            text.contains("X-Request-Id: test-rid-7\r\n"),
            "inbound id not echoed:\n{text}"
        );
        assert!(text.contains("Server-Timing: "), "missing Server-Timing:\n{text}");
        assert!(text.contains("model;dur="), "miss must attribute model time:\n{text}");
        // A cache hit has no model stage but still reports cache time.
        let raw = format!(
            "POST /brief HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{PAGE}",
            PAGE.len()
        );
        let text = roundtrip_full(addr, raw.as_bytes());
        assert!(text.contains("X-Cache: hit\r\n"), "{text}");
        assert!(!text.contains("model;dur="), "cache hit must not claim model time:\n{text}");
        assert!(text.contains("X-Request-Id: wb-"), "hit must mint an id:\n{text}");
        // Control-plane responses echo ids too.
        let text = roundtrip_full(addr, b"GET /healthz HTTP/1.1\r\nX-Request-Id: cp-1\r\n\r\n");
        assert!(text.contains("X-Request-Id: cp-1\r\n"), "{text}");
        h.shutdown();
    }

    #[test]
    fn varz_and_prometheus_routes_serve_live_views() {
        let h = start(tiny_briefer(), test_config()).unwrap();
        let addr = h.addr();
        let (status, _) = post_brief(addr, PAGE);
        assert_eq!(status, 200);
        let text = roundtrip_full(addr, b"GET /varz HTTP/1.1\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        let body = text.split_once("\r\n\r\n").unwrap().1;
        let v: serde_json::Value = serde_json::from_str(body).expect("valid varz JSON");
        assert_eq!(v.get("breaker").and_then(|b| b.as_str()), Some("closed"));
        let w10 = v.get("windows").and_then(|w| w.get("10s")).expect("10s window");
        assert!(
            w10.get("requests").and_then(|r| r.as_f64()).unwrap_or(0.0) >= 1.0,
            "the brief above must show up in the live window: {body}"
        );
        assert!(w10.get("stages_us").is_some());
        // The proc.* runtime stats section rides along on /varz.
        let proc = v.get("proc").expect("proc section");
        #[cfg(target_os = "linux")]
        assert!(
            proc.get("threads").and_then(|t| t.as_f64()).unwrap_or(0.0) >= 1.0,
            "procstat sampler must populate threads: {proc:?}"
        );
        // Prometheus exposition next to the JSON snapshot.
        let text = roundtrip_full(addr, b"GET /metrics?format=prometheus HTTP/1.1\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"), "{text}");
        assert!(text.contains("# TYPE wb_serve_requests counter"), "{text}");
        assert!(text.contains("wb_serve_request_latency_us_bucket{le=\"+Inf\"}"), "{text}");
        // The windowed live view rides along so Prometheus and /varz
        // agree: generic wb_window_* families plus the derived gauges.
        assert!(text.contains("# TYPE wb_window_rps gauge"), "{text}");
        assert!(text.contains("wb_window_rps{window=\"10s\"}"), "{text}");
        assert!(text.contains("wb_window_error_rate{window=\"60s\"}"), "{text}");
        assert!(text.contains("wb_window_serve_requests_sum{window=\"10s\"}"), "{text}");
        // And the procstat sampler's runtime gauges are scrapable too.
        #[cfg(target_os = "linux")]
        assert!(text.contains("wb_proc_threads"), "{text}");
        // The JSON view is unchanged, and unknown formats are a 400.
        let (status, body) = roundtrip(addr, b"GET /metrics?format=json HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"counters\""), "{body}");
        let (status, body) = roundtrip(addr, b"GET /metrics?format=xml HTTP/1.1\r\n\r\n");
        assert_eq!(status, 400, "{body}");
        let (status, _) = roundtrip(addr, b"POST /varz HTTP/1.1\r\n\r\n");
        assert_eq!(status, 405);
        h.shutdown();
    }

    // The profiler's single-capture guard is process-global, so the
    // pprof tests must not overlap in the parallel test runner.
    static PPROF_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn pprof_route_streams_collapsed_and_svg_captures() {
        let _serial = PPROF_LOCK.lock().unwrap();
        let h = start(tiny_briefer(), test_config()).unwrap();
        let addr = h.addr();
        // Background load so the capture has spans to see.
        let stop = Arc::new(AtomicBool::new(false));
        let load = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    let page = format!(
                        "<html><body><section><p>load page {i} with words .</p></section>\
                         </body></html>"
                    );
                    let _ = post_brief(addr, &page);
                }
            })
        };
        let (status, body) =
            roundtrip(addr, b"GET /pprof?seconds=1&format=collapsed HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200, "{body}");
        // Every line of the body is canonical collapsed-stack form.
        wb_obs::flame::parse_collapsed(&body).expect("collapsed output parses");
        assert!(
            body.lines().any(|l| l.contains("serve.")),
            "capture under load must see server spans:\n{body}"
        );
        let text = roundtrip_full(addr, b"GET /pprof?seconds=1&format=svg HTTP/1.1\r\n\r\n");
        stop.store(true, Ordering::Relaxed);
        load.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("Content-Type: image/svg+xml\r\n"), "{text}");
        let svg = text.split_once("\r\n\r\n").unwrap().1;
        assert!(svg.starts_with("<?xml"), "{svg}");
        assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
        h.shutdown();
    }

    #[test]
    fn pprof_rejects_bad_params_and_concurrent_captures() {
        let _serial = PPROF_LOCK.lock().unwrap();
        let h = start(tiny_briefer(), test_config()).unwrap();
        let addr = h.addr();
        for bad in [
            "GET /pprof?seconds=0 HTTP/1.1\r\n\r\n".as_bytes(),
            b"GET /pprof?seconds=61 HTTP/1.1\r\n\r\n",
            b"GET /pprof?hz=0 HTTP/1.1\r\n\r\n",
            b"GET /pprof?mode=flux HTTP/1.1\r\n\r\n",
            b"GET /pprof?format=pdf HTTP/1.1\r\n\r\n",
        ] {
            let (status, body) = roundtrip(addr, bad);
            assert_eq!(status, 400, "{body}");
        }
        let (status, _) = roundtrip(addr, b"POST /pprof HTTP/1.1\r\n\r\n");
        assert_eq!(status, 405);
        // A second capture while one runs is refused with Retry-After.
        let first = std::thread::spawn(move || {
            roundtrip(addr, b"GET /pprof?seconds=1 HTTP/1.1\r\n\r\n")
        });
        std::thread::sleep(Duration::from_millis(300));
        let text = roundtrip_full(addr, b"GET /pprof?seconds=1 HTTP/1.1\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 409"), "{text}");
        assert!(text.contains("Retry-After:"), "{text}");
        let (status, _) = first.join().unwrap();
        assert_eq!(status, 200);
        h.shutdown();
    }

    #[test]
    fn control_plane_does_not_pollute_request_latency() {
        // A fresh registry view is impossible (global), so measure deltas.
        let count_of = |name: &str| {
            wb_obs::metrics::snapshot().histograms.get(name).map(|h| h.count).unwrap_or(0)
        };
        let h = start(tiny_briefer(), test_config()).unwrap();
        let addr = h.addr();
        let before_req = count_of("serve.request.latency_us");
        let before_ctl = count_of("serve.control.latency_us");
        for _ in 0..3 {
            let (status, _) = roundtrip(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
            assert_eq!(status, 200);
        }
        let (status, _) = roundtrip(addr, b"GET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert_eq!(
            count_of("serve.request.latency_us"),
            before_req,
            "control-plane requests must not feed the serving histogram"
        );
        assert!(count_of("serve.control.latency_us") >= before_ctl + 4);
        let (status, _) = post_brief(addr, PAGE);
        assert_eq!(status, 200);
        assert!(count_of("serve.request.latency_us") > before_req);
        h.shutdown();
    }

    #[test]
    fn oversized_body_is_413() {
        let mut cfg = test_config();
        cfg.max_body_bytes = 128;
        let h = start(tiny_briefer(), cfg).unwrap();
        let big = "x".repeat(4096);
        let (status, body) = post_brief(h.addr(), &big);
        assert_eq!(status, 413, "{body}");
        h.shutdown();
    }

    #[test]
    fn overload_sheds_with_503_and_never_hangs() {
        let mut cfg = test_config();
        cfg.workers = 1;
        cfg.queue_capacity = 1;
        cfg.handler_delay_ms = 400; // every batch stalls; the queue backs up
        cfg.request_timeout_ms = 5_000;
        let h = start(tiny_briefer(), cfg).unwrap();
        let addr = h.addr();
        let threads: Vec<_> =
            (0..8).map(|_| std::thread::spawn(move || post_brief(addr, PAGE))).collect();
        let results: Vec<(u16, String)> =
            threads.into_iter().map(|t| t.join().expect("request thread")).collect();
        let ok = results.iter().filter(|(s, _)| *s == 200).count();
        let shed = results.iter().filter(|(s, _)| *s == 503).count();
        assert_eq!(ok + shed, 8, "every request must be answered: {results:?}");
        assert!(ok >= 1, "at least the first request must be served");
        assert!(shed >= 1, "with 1 worker + queue of 1, overflow must shed: {results:?}");
        h.shutdown();
    }

    #[test]
    fn shutdown_endpoint_signals_the_run_loop() {
        let h = start(tiny_briefer(), test_config()).unwrap();
        let addr = h.addr();
        let poster =
            std::thread::spawn(move || roundtrip(addr, b"POST /shutdown HTTP/1.1\r\n\r\n"));
        h.wait_for_shutdown_request();
        let (status, body) = poster.join().unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("shutting down"), "{body}");
        h.shutdown();
    }

    #[test]
    fn poll_shutdown_request_times_out_then_fires() {
        let h = start(tiny_briefer(), test_config()).unwrap();
        let addr = h.addr();
        assert!(!h.poll_shutdown_request(Duration::from_millis(20)));
        let poster =
            std::thread::spawn(move || roundtrip(addr, b"POST /shutdown HTTP/1.1\r\n\r\n"));
        assert!(h.poll_shutdown_request(Duration::from_secs(10)));
        let (status, _) = poster.join().unwrap();
        assert_eq!(status, 200);
        h.shutdown();
    }

    #[test]
    fn expired_deadline_is_504_before_the_model_runs() {
        let mut cfg = test_config();
        cfg.cache_capacity = 0; // force the model path
        cfg.handler_delay_ms = 300; // the batch stalls past the deadline
        let h = start(tiny_briefer(), cfg).unwrap();
        let addr = h.addr();
        let raw = format!(
            "POST /brief HTTP/1.1\r\nHost: t\r\nX-Deadline-Ms: 50\r\n\
             Content-Length: {}\r\n\r\n{PAGE}",
            PAGE.len()
        );
        let (status, body) = roundtrip(addr, raw.as_bytes());
        assert_eq!(status, 504, "{body}");
        assert!(body.contains("deadline"), "{body}");
        // A generous deadline on the same page still gets briefed.
        let (status, _) = post_brief(addr, PAGE);
        assert_eq!(status, 200);
        // And a malformed deadline is a client error, not a hang.
        let raw = format!(
            "POST /brief HTTP/1.1\r\nHost: t\r\nX-Deadline-Ms: soon\r\n\
             Content-Length: {}\r\n\r\n{PAGE}",
            PAGE.len()
        );
        let (status, body) = roundtrip(addr, raw.as_bytes());
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("X-Deadline-Ms"), "{body}");
        h.shutdown();
    }
}
