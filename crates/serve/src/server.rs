//! The briefing server: a poll-based event loop ([`crate::event`]) feeds
//! parsed requests through a bounded work queue into a fixed worker pool,
//! with briefing fan-out sharded across model replicas
//! ([`crate::replica`]) — each with its own batch executor, LRU response
//! cache and circuit breaker, consistent-hashed by page content.
//!
//! Load-shedding contract: an accepted connection is always answered —
//! queued-and-served, or `503 + Retry-After` when the work queue is full —
//! and no request can hang: socket reads, socket writes and the wait for
//! a batch executor are all bounded by the request timeout. A model panic
//! fails the affected requests with 500, trips only that replica's
//! breaker, and the server keeps serving.
//!
//! Connections are HTTP/1.1 keep-alive by default (bounded by
//! `max_requests_per_conn` and `idle_timeout_ms`); framing errors always
//! close. Concurrency is bounded by `max_conns`, not by worker count —
//! idle keep-alive connections cost a slab slot, not a thread.

use crate::batch::{BriefOutcome, Job};
use crate::breaker::{Admission, BreakerConfig};
use crate::cache::{fnv1a, Fingerprint};
use crate::event::{self, Completions, Done, WorkItem};
use crate::http;
use crate::replica::ReplicaSet;
use crate::telemetry::{self, StageTimings};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use wb_core::Briefer;

/// Server tuning knobs, exposed one-to-one as `wb serve` flags.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, `HOST:PORT` (port 0 picks a free port — used by tests).
    pub addr: String,
    /// Request worker threads (the model fan-out has its own rayon pool).
    pub workers: usize,
    /// Parsed requests allowed to wait for a worker before new arrivals
    /// are shed with 503.
    pub queue_capacity: usize,
    /// LRU response-cache entries *per replica*; 0 disables caching.
    pub cache_capacity: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Bound on socket reads/writes and on waiting for the batch executor.
    pub request_timeout_ms: u64,
    /// Artificial per-batch stall before the model runs — a load-testing
    /// knob that makes overload reproducible; 0 (the default) in
    /// production.
    pub handler_delay_ms: u64,
    /// Model failures (panicked batches) within the breaker window that
    /// trip a replica's circuit breaker; 0 disables the breakers.
    pub breaker_threshold: u32,
    /// Sliding failure window of the circuit breakers.
    pub breaker_window_ms: u64,
    /// How long a tripped breaker serves cache-only before probing.
    pub breaker_cooldown_ms: u64,
    /// Emit a structured JSON access-log line for 1 in N `/brief`
    /// requests; 0 (the default) disables sampling. Slow requests log
    /// unconditionally regardless of this setting.
    pub access_log_sample: u64,
    /// `/brief` requests slower than this always log their full stage
    /// breakdown at WARN; 0 disables slow-request logging.
    pub slow_request_ms: u64,
    /// Model replicas: independent serving lanes (batcher + cache +
    /// breaker each) over the shared model weights.
    pub replicas: usize,
    /// Requests served on one connection before the server closes it
    /// (bounds how long one client can monopolize a slot); 0 = unlimited.
    pub max_requests_per_conn: u64,
    /// Idle keep-alive connections are closed after this long; 0 = never.
    pub idle_timeout_ms: u64,
    /// Most concurrent connections the event loop will hold open; beyond
    /// this, accepts wait in the listen backlog.
    pub max_conns: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let breaker = BreakerConfig::default();
        ServeConfig {
            addr: "127.0.0.1:8660".to_string(),
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(8),
            queue_capacity: 256,
            cache_capacity: 1024,
            max_body_bytes: 2 * 1024 * 1024,
            request_timeout_ms: 30_000,
            handler_delay_ms: 0,
            breaker_threshold: breaker.threshold,
            breaker_window_ms: breaker.window.as_millis() as u64,
            breaker_cooldown_ms: breaker.cooldown.as_millis() as u64,
            access_log_sample: 0,
            slow_request_ms: 1000,
            replicas: 1,
            max_requests_per_conn: 10_000,
            idle_timeout_ms: 30_000,
            max_conns: 4096,
        }
    }
}

pub(crate) struct Shared {
    pub(crate) briefer: Briefer,
    pub(crate) cfg: ServeConfig,
    pub(crate) replicas: ReplicaSet,
    pub(crate) completions: Completions,
    pub(crate) stopping: AtomicBool,
    pub(crate) queue_depth: AtomicUsize,
    pub(crate) access_log_seq: AtomicU64,
    pub(crate) shutdown_tx: Mutex<mpsc::Sender<()>>,
}

/// The running server. Dropping the handle shuts the server down
/// gracefully (finish queued and in-flight requests, then stop).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    io: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
    shutdown_rx: Receiver<()>,
}

/// Starts the briefing server; returns once the listener is bound and the
/// event loop and worker pool are running.
pub fn start(briefer: Briefer, cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    // The event loop drives everything off poll readiness.
    listener.set_nonblocking(true)?;
    let workers = cfg.workers.max(1);
    let queue_capacity = cfg.queue_capacity.max(1);
    let replica_count = cfg.replicas.max(1);
    let (shutdown_tx, shutdown_rx) = mpsc::channel();
    let replicas = ReplicaSet::new(
        replica_count,
        cfg.cache_capacity,
        BreakerConfig {
            threshold: cfg.breaker_threshold,
            window: Duration::from_millis(cfg.breaker_window_ms),
            cooldown: Duration::from_millis(cfg.breaker_cooldown_ms),
        },
    );
    let completions = Completions::new()?;
    let shared = Arc::new(Shared {
        replicas,
        completions,
        stopping: AtomicBool::new(false),
        queue_depth: AtomicUsize::new(0),
        access_log_seq: AtomicU64::new(0),
        shutdown_tx: Mutex::new(shutdown_tx),
        briefer,
        cfg,
    });
    // Pin the observability epoch so `/varz` and snapshot uptimes count
    // from server start even if no metric was recorded earlier.
    let _ = wb_obs::window::epoch();
    // Keep the `proc.*` runtime gauges (RSS, threads, open fds) fresh
    // for `/varz`, `wb top` and Prometheus scrapes.
    wb_obs::procstat::spawn_sampler(Duration::from_secs(1));
    wb_obs::info!(
        "wb serve listening on {addr} ({workers} workers, {replica_count} replicas, \
         queue {queue_capacity}, cache {})",
        shared.cfg.cache_capacity
    );
    wb_obs::gauge!("serve.workers", workers as f64);

    let (work_tx, work_rx) = mpsc::sync_channel::<WorkItem>(queue_capacity);
    let work_rx = Arc::new(Mutex::new(work_rx));

    let io = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("wb-serve-io".to_string())
            .spawn(move || event::run(shared, listener, work_tx))?
    };
    let mut worker_handles = Vec::with_capacity(workers);
    for i in 0..workers {
        let shared = Arc::clone(&shared);
        let rx = Arc::clone(&work_rx);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("wb-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, &rx))?,
        );
    }
    let mut executors = Vec::with_capacity(replica_count);
    for r in 0..replica_count {
        let shared = Arc::clone(&shared);
        executors.push(std::thread::Builder::new().name(format!("wb-serve-batch-{r}")).spawn(
            move || {
                let delay = Duration::from_millis(shared.cfg.handler_delay_ms);
                let replica = &shared.replicas.all()[r];
                replica.batcher.run_executor(&shared.briefer, delay, &replica.breaker);
            },
        )?);
    }
    Ok(ServerHandle {
        addr,
        shared,
        io: Some(io),
        workers: worker_handles,
        executors,
        shutdown_rx,
    })
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until a client posts `/shutdown`.
    pub fn wait_for_shutdown_request(&self) {
        let _ = self.shutdown_rx.recv();
    }

    /// Waits up to `timeout` for a `/shutdown` request; `true` once one
    /// has arrived. Lets `wb serve` interleave the wait with polling the
    /// process signal flag (SIGINT/SIGTERM).
    pub fn poll_shutdown_request(&self, timeout: Duration) -> bool {
        self.shutdown_rx.recv_timeout(timeout).is_ok()
    }

    /// Gracefully stops the server: stop accepting, serve everything
    /// already accepted, drain the batch queues, join every thread.
    pub fn shutdown(mut self) {
        self.do_shutdown();
    }

    fn do_shutdown(&mut self) {
        if self.io.is_none() {
            return;
        }
        wb_obs::info!("wb serve shutting down (draining in-flight requests)");
        // The event loop sees `stopping` (the wake pipe interrupts its
        // poll), closes idle connections, finishes in-flight ones under
        // their deadlines, and exits — dropping the work sender so the
        // workers drain what is left and stop.
        self.shared.stopping.store(true, Ordering::SeqCst);
        self.shared.completions.wake();
        if let Some(io) = self.io.take() {
            let _ = io.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // All workers are done, so no further job can arrive: close the
        // batchers and let each executor finish its final batch.
        self.shared.replicas.close_all();
        for e in self.executors.drain(..) {
            let _ = e.join();
        }
        wb_obs::info!("wb serve stopped");
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.do_shutdown();
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<WorkItem>>) {
    loop {
        // Holding the lock while blocked in recv is the hand-off point for
        // the whole pool: whichever worker holds it takes the next
        // request, the rest queue on the mutex.
        let item = match rx.lock().unwrap().recv() {
            Ok(item) => item,
            Err(_) => return, // event loop gone and queue drained
        };
        let depth = shared.queue_depth.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
        wb_obs::gauge!("serve.queue.depth", depth as f64);
        let done = handle_request(shared, item);
        shared.completions.push(done);
    }
}

fn bump_status(status: u16) {
    match status / 100 {
        2 => wb_obs::counter!("serve.responses.2xx"),
        4 => wb_obs::counter!("serve.responses.4xx"),
        5 => wb_obs::counter!("serve.responses.5xx"),
        _ => {}
    }
}

/// Renders a complete response and records its status-class counter —
/// the single choke point for every response the server produces.
pub(crate) fn render_counted(
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
    keep_alive: bool,
) -> Vec<u8> {
    bump_status(status);
    http::render_response(status, content_type, body, extra_headers, keep_alive)
}

/// Data-plane completion telemetry shared by the worker path and the
/// event loop's inline cache-hit path: latency histograms, live windows,
/// stage recording and the (sampled or slow) access log.
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_data_plane(
    shared: &Shared,
    id: &str,
    method: &str,
    path: &str,
    status: u16,
    total_us: u64,
    cache_state: &str,
    timings: &StageTimings,
) {
    wb_obs::histogram!("serve.request.latency_us", total_us);
    wb_obs::window_histogram!("serve.request.latency_us", total_us as f64);
    wb_obs::window_counter!("serve.requests");
    if status >= 500 {
        wb_obs::window_counter!("serve.errors");
    }
    timings.record();
    let slow = shared.cfg.slow_request_ms > 0
        && total_us >= shared.cfg.slow_request_ms.saturating_mul(1000);
    let sampled = shared.cfg.access_log_sample > 0
        && shared
            .access_log_seq
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(shared.cfg.access_log_sample);
    if slow || sampled {
        let line = telemetry::access_log_line(
            id,
            method,
            path,
            status,
            total_us,
            cache_state,
            timings,
        );
        if slow {
            wb_obs::warn!("slow request: {line}");
        } else {
            wb_obs::info!("access: {line}");
        }
    }
}

/// A handler's response before rendering: the worker attaches the request
/// id, `Server-Timing` and keep-alive framing, then renders to bytes.
struct Reply {
    status: u16,
    content_type: &'static str,
    body: Vec<u8>,
    extra: Vec<(&'static str, String)>,
    /// Cache disposition for the access log (`hit` / `miss` / `-`).
    cache_state: &'static str,
}

impl Reply {
    fn json(status: u16, body: Vec<u8>, cache_state: &'static str) -> Reply {
        Reply { status, content_type: "application/json", body, extra: Vec::new(), cache_state }
    }

    fn typed(status: u16, content_type: &'static str, body: Vec<u8>) -> Reply {
        Reply { status, content_type, body, extra: Vec::new(), cache_state: "-" }
    }

    fn header(mut self, name: &'static str, value: impl Into<String>) -> Reply {
        self.extra.push((name, value.into()));
        self
    }
}

/// Serves one parsed request on a worker thread and returns the rendered
/// response for the event loop to flush.
fn handle_request(shared: &Shared, item: WorkItem) -> Done {
    let _span = wb_obs::span!("serve.request");
    let WorkItem {
        conn,
        generation,
        req,
        queued,
        started,
        parse_us,
        allow_keep_alive,
        key_fp,
        cache_probed,
    } = item;
    let mut timings = StageTimings {
        queue_wait_us: telemetry::micros_since(queued),
        parse_us,
        ..StageTimings::default()
    };
    let id = telemetry::request_id(req.header("x-request-id"));
    let data_plane = req.method == "POST" && req.path == "/brief";
    let reply = if data_plane {
        handle_brief(shared, &req, &mut timings, key_fp, cache_probed)
    } else {
        handle_control(shared, &req)
    };
    let keep_alive =
        allow_keep_alive && req.wants_keep_alive() && !shared.stopping.load(Ordering::Relaxed);
    let server_timing = timings.server_timing();
    let mut headers: Vec<(&str, &str)> = vec![("X-Request-Id", id.as_str())];
    if data_plane {
        headers.push(("Server-Timing", server_timing.as_str()));
    }
    for (name, value) in &reply.extra {
        headers.push((name, value.as_str()));
    }
    let bytes =
        render_counted(reply.status, reply.content_type, &reply.body, &headers, keep_alive);
    // Total latency excludes the write stage, which only the event loop
    // knows; the write lands in its own stage histogram at flush time.
    let total_us = telemetry::micros_since(started);
    if data_plane {
        // Only model-serving requests feed the request-latency histogram
        // and the windowed live metrics; control-plane chatter (health
        // probes, metric scrapes) has its own histogram so it cannot skew
        // serving percentiles.
        finish_data_plane(
            shared,
            &id,
            &req.method,
            &req.path,
            reply.status,
            total_us,
            reply.cache_state,
            &timings,
        );
    } else {
        wb_obs::histogram!("serve.control.latency_us", total_us);
    }
    Done { conn, generation, bytes, keep_alive, record_write: data_plane }
}

/// Handles every non-`/brief` route (the control plane). These requests
/// are recorded under `serve.control.latency_us`, never under the
/// serving-path histogram.
fn handle_control(shared: &Shared, req: &http::Request) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Reply::json(200, b"{\"status\":\"ok\"}".to_vec(), "-"),
        ("GET", "/metrics") => match req.query_param("format") {
            None | Some("json") => {
                Reply::json(200, wb_obs::metrics::snapshot().to_json().into_bytes(), "-")
            }
            Some("prometheus") => {
                // Cumulative families, then the windowed live view plus
                // the derived gauges `/varz` computes, so both endpoints
                // agree on "what is happening now".
                let mut body = wb_obs::prometheus::render(&wb_obs::metrics::snapshot());
                let ws = wb_obs::window::snapshot();
                body.push_str(&wb_obs::prometheus::render_window(&ws));
                body.push_str(&prometheus_window_derived(&ws));
                Reply::typed(200, wb_obs::prometheus::CONTENT_TYPE, body.into_bytes())
            }
            Some(other) => Reply::json(
                400,
                http::error_body(&format!(
                    "unknown metrics format `{other}` (expected `json` or `prometheus`)"
                )),
                "-",
            ),
        },
        ("GET", "/varz") => Reply::json(200, varz_body(shared).into_bytes(), "-"),
        ("GET", "/pprof") => handle_pprof(req),
        ("POST", "/shutdown") => {
            let _ = shared.shutdown_tx.lock().unwrap().send(());
            Reply::json(200, b"{\"status\":\"shutting down\"}".to_vec(), "-")
        }
        (_, "/brief") | (_, "/shutdown") => {
            Reply::json(405, http::error_body("method not allowed"), "-")
                .header("Allow", "POST")
        }
        (_, "/healthz") | (_, "/metrics") | (_, "/varz") | (_, "/pprof") => {
            Reply::json(405, http::error_body("method not allowed"), "-").header("Allow", "GET")
        }
        (_, path) => Reply::json(404, http::error_body(&format!("no route for {path}")), "-"),
    }
}

/// Serves `GET /pprof?seconds=N&hz=N&mode=wall|cpu&format=collapsed|svg`:
/// runs a timed span-stack capture on the calling worker thread and
/// returns the folded result (or a rendered flamegraph). The worker is
/// hidden from the sampler for the duration — otherwise its own
/// `serve.request` span, open for the whole capture, would dominate
/// every profile. One capture runs at a time; concurrent requests get
/// 409 with a Retry-After hint.
fn handle_pprof(req: &http::Request) -> Reply {
    let bad = |msg: String| Reply::json(400, http::error_body(&msg), "-");
    let seconds = match req.query_param("seconds").unwrap_or("2").parse::<f64>() {
        Ok(s) if s > 0.0 && s <= 60.0 => s,
        _ => return bad("seconds must be a number in (0, 60]".to_string()),
    };
    let hz = match req.query_param("hz").unwrap_or("99").parse::<u32>() {
        Ok(h) if (1..=1000).contains(&h) => h,
        _ => return bad("hz must be an integer in 1..=1000".to_string()),
    };
    let mode = req.query_param("mode").unwrap_or("wall");
    let Some(mode) = wb_obs::profile::Mode::parse(mode) else {
        return bad(format!("unknown mode `{mode}` (expected `wall` or `cpu`)"));
    };
    let format = req.query_param("format").unwrap_or("collapsed");
    if format != "collapsed" && format != "svg" {
        return bad(format!("unknown format `{format}` (expected `collapsed` or `svg`)"));
    }
    let _hidden = wb_obs::profile::hide_current_thread();
    let opts = wb_obs::profile::Options { hz, mode };
    match wb_obs::profile::capture(Duration::from_secs_f64(seconds), opts) {
        Ok(profile) => {
            let collapsed = profile.to_collapsed();
            if format == "svg" {
                let title = format!(
                    "wb serve {} profile — {:.1}s at {} hz, {} samples",
                    profile.mode.as_str(),
                    profile.duration.as_secs_f64(),
                    profile.hz,
                    profile.total_weight
                );
                match wb_obs::flame::render_svg(&collapsed, &title) {
                    Ok(svg) => Reply::typed(200, wb_obs::flame::CONTENT_TYPE, svg.into_bytes()),
                    Err(e) => {
                        Reply::json(500, http::error_body(&format!("flamegraph: {e}")), "-")
                    }
                }
            } else {
                Reply::typed(200, "text/plain; charset=utf-8", collapsed.into_bytes())
            }
        }
        Err(e) => {
            // The single-capture guard is the only runtime failure mode.
            Reply::json(409, http::error_body(&e), "-")
                .header("Retry-After", format!("{}", seconds.ceil() as u64))
        }
    }
}

/// The derived live gauges `/varz` computes (rps and error rate per
/// window), rendered for the Prometheus exposition so both endpoints
/// tell one story.
fn prometheus_window_derived(ws: &wb_obs::window::WindowSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let sum = |name: &str, secs: u64| {
        ws.counters
            .get(name)
            .map(|c| if secs == 10 { c.sum_10s } else { c.sum_60s })
            .unwrap_or(0)
    };
    out.push_str("# HELP wb_window_rps Live requests per second over the trailing window.\n");
    out.push_str("# TYPE wb_window_rps gauge\n");
    for secs in [10u64, 60] {
        let _ = writeln!(
            out,
            "wb_window_rps{{window=\"{secs}s\"}} {}",
            sum("serve.requests", secs) as f64 / secs as f64
        );
    }
    out.push_str("# HELP wb_window_error_rate Errors per request over the trailing window.\n");
    out.push_str("# TYPE wb_window_error_rate gauge\n");
    for secs in [10u64, 60] {
        let (req, err) = (sum("serve.requests", secs), sum("serve.errors", secs));
        let rate = if req > 0 { err as f64 / req as f64 } else { 0.0 };
        let _ = writeln!(out, "wb_window_error_rate{{window=\"{secs}s\"}} {rate}");
    }
    out
}

/// Builds the `/varz` body: the windowed live view (10 s and 60 s) plus
/// instantaneous server state — what `wb top` polls.
fn varz_body(shared: &Shared) -> String {
    use std::collections::BTreeMap;
    use wb_obs::json::Json;
    let ws = wb_obs::window::snapshot();
    let window_view = |secs: u64| -> Json {
        let csum = |name: &str| {
            ws.counters
                .get(name)
                .map(|c| if secs == 10 { c.sum_10s } else { c.sum_60s })
                .unwrap_or(0)
        };
        let hist_view = |name: &str| -> Json {
            let mut o = BTreeMap::new();
            if let Some(h) = ws.histograms.get(name) {
                let hs = if secs == 10 { &h.w10s } else { &h.w60s };
                o.insert("count".to_string(), Json::Num(hs.count as f64));
                o.insert("mean".to_string(), Json::Num(hs.mean()));
                for (key, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
                    if let Some(v) = hs.quantile(q) {
                        o.insert(key.to_string(), Json::Num(v));
                    }
                }
            }
            Json::Obj(o)
        };
        let requests = csum("serve.requests");
        let errors = csum("serve.errors");
        let (hits, misses) = (csum("serve.cache.hit"), csum("serve.cache.miss"));
        let mut o = BTreeMap::new();
        o.insert("requests".to_string(), Json::Num(requests as f64));
        o.insert("rps".to_string(), Json::Num(requests as f64 / secs as f64));
        o.insert("errors".to_string(), Json::Num(errors as f64));
        o.insert(
            "error_rate".to_string(),
            Json::Num(if requests > 0 { errors as f64 / requests as f64 } else { 0.0 }),
        );
        let mut cache = BTreeMap::new();
        cache.insert("hits".to_string(), Json::Num(hits as f64));
        cache.insert("misses".to_string(), Json::Num(misses as f64));
        cache.insert(
            "hit_ratio".to_string(),
            Json::Num(if hits + misses > 0 {
                hits as f64 / (hits + misses) as f64
            } else {
                0.0
            }),
        );
        o.insert("cache".to_string(), Json::Obj(cache));
        o.insert("latency_us".to_string(), hist_view("serve.request.latency_us"));
        let stages =
            ["queue_wait", "parse", "cache", "batch_wait", "model", "serialize", "write"]
                .iter()
                .map(|stage| (stage.to_string(), hist_view(&format!("serve.stage.{stage}_us"))))
                .collect();
        o.insert("stages_us".to_string(), Json::Obj(stages));
        Json::Obj(o)
    };
    let mut windows = BTreeMap::new();
    windows.insert("10s".to_string(), window_view(10));
    windows.insert("60s".to_string(), window_view(60));
    let mut queue = BTreeMap::new();
    queue.insert(
        "depth".to_string(),
        Json::Num(shared.queue_depth.load(Ordering::Relaxed) as f64),
    );
    queue.insert(
        "peak".to_string(),
        Json::Num(wb_obs::metrics::registry().gauge("serve.queue.depth.peak").get()),
    );
    let mut cache = BTreeMap::new();
    cache.insert("size".to_string(), Json::Num(shared.replicas.cache_len() as f64));
    cache.insert(
        "capacity".to_string(),
        Json::Num((shared.cfg.cache_capacity * shared.replicas.len()) as f64),
    );
    let c = |name: &str| wb_obs::metrics::registry().counter(name).get() as f64;
    let g = |name: &str| wb_obs::metrics::registry().gauge(name).get();
    let mut conns = BTreeMap::new();
    conns.insert("active".to_string(), Json::Num(g("serve.conn.active")));
    conns.insert("accepted".to_string(), Json::Num(c("serve.conn.accepted")));
    conns.insert("reused".to_string(), Json::Num(c("serve.conn.reused")));
    conns.insert("idle_closed".to_string(), Json::Num(c("serve.conn.idle_closed")));
    conns.insert("framing_errors".to_string(), Json::Num(c("serve.conn.framing_errors")));
    let mut root = BTreeMap::new();
    root.insert(
        "uptime_ms".to_string(),
        Json::Num(wb_obs::window::epoch().elapsed().as_secs_f64() * 1e3),
    );
    root.insert("windows".to_string(), Json::Obj(windows));
    root.insert("queue".to_string(), Json::Obj(queue));
    root.insert("cache".to_string(), Json::Obj(cache));
    root.insert("conns".to_string(), Json::Obj(conns));
    // Runtime stats from the background procstat sampler; read through
    // the gauges (not /proc directly) so /varz never blocks on procfs
    // and `wb top` sees exactly what Prometheus scrapes. Empty object
    // where procfs is unavailable.
    let mut proc = BTreeMap::new();
    if g("proc.threads") > 0.0 {
        proc.insert("rss_bytes".to_string(), Json::Num(g("proc.rss_bytes")));
        proc.insert("threads".to_string(), Json::Num(g("proc.threads")));
        proc.insert("open_fds".to_string(), Json::Num(g("proc.open_fds")));
    }
    root.insert("proc".to_string(), Json::Obj(proc));
    root.insert(
        "breaker".to_string(),
        Json::Str(shared.replicas.breaker_summary().to_string()),
    );
    root.insert("replicas".to_string(), Json::Num(shared.replicas.len() as f64));
    root.insert("workers".to_string(), Json::Num(shared.cfg.workers.max(1) as f64));
    Json::Obj(root).render()
}

/// Serves one `POST /brief` on a worker, filling `t` with the stage
/// breakdown as the request moves through its replica's pipeline. The
/// event loop may have already routed and cache-probed (`key_fp`,
/// `cache_probed`); this avoids hashing and probing twice.
fn handle_brief(
    shared: &Shared,
    req: &http::Request,
    t: &mut StageTimings,
    key_fp: Option<(u64, Fingerprint)>,
    cache_probed: bool,
) -> Reply {
    let body = req.body.as_slice();
    if body.is_empty() {
        return Reply::json(400, http::error_body("POST /brief expects an HTML body"), "-");
    }
    let cache_t0 = Instant::now();
    // The fingerprint guards against FNV-1a collisions: a colliding page is
    // treated as a miss instead of being served another page's brief.
    let (key, fp) = key_fp.unwrap_or_else(|| (fnv1a(body), Fingerprint::of(body)));
    let replica = shared.replicas.route(key);
    // Cache first: cached pages keep being served even while a circuit
    // breaker has the model path disabled.
    if shared.cfg.cache_capacity > 0 {
        if cache_probed {
            // The event loop probed (and missed) without counting.
            wb_obs::counter!("serve.cache.miss");
            wb_obs::window_counter!("serve.cache.miss");
        } else {
            let cached = replica.cache.lock().unwrap().get(key, fp).cloned();
            if let Some(json) = cached {
                wb_obs::counter!("serve.cache.hit");
                wb_obs::window_counter!("serve.cache.hit");
                t.cache_us = telemetry::micros_since(cache_t0);
                return Reply::json(200, json.as_bytes().to_vec(), "hit")
                    .header("X-Cache", "hit");
            }
            wb_obs::counter!("serve.cache.miss");
            wb_obs::window_counter!("serve.cache.miss");
        }
    }
    t.cache_us = telemetry::micros_since(cache_t0);
    // Per-request deadline: `X-Deadline-Ms` can only tighten the server's
    // request timeout, never extend it.
    let deadline_ms = match req.header("x-deadline-ms") {
        None => shared.cfg.request_timeout_ms,
        Some(v) => match v.parse::<u64>() {
            Ok(ms) if ms > 0 => ms.min(shared.cfg.request_timeout_ms),
            _ => {
                return Reply::json(
                    400,
                    http::error_body(&format!(
                        "bad X-Deadline-Ms `{v}` (expected a positive number of milliseconds)"
                    )),
                    "miss",
                );
            }
        },
    };
    match replica.breaker.admit() {
        Admission::Allow | Admission::Probe => {}
        Admission::Reject { retry_after_secs } => {
            return Reply::json(
                503,
                http::error_body(
                    "briefing disabled after repeated model failures; \
                     cached pages are still served",
                ),
                "miss",
            )
            .header("Retry-After", retry_after_secs.to_string());
        }
    }
    let html = String::from_utf8_lossy(body).into_owned();
    let deadline = Instant::now() + Duration::from_millis(deadline_ms.max(1));
    let (tx, rx) = mpsc::channel();
    if !replica.batcher.submit(Job { html, deadline, submitted: Instant::now(), tx }) {
        return Reply::json(503, http::error_body("server is shutting down"), "miss")
            .header("Retry-After", "1");
    }
    let timeout = Duration::from_millis(shared.cfg.request_timeout_ms.max(1));
    let completion = match rx.recv_timeout(timeout) {
        Ok(c) => c,
        Err(RecvTimeoutError::Timeout) => {
            wb_obs::counter!("serve.rejected.timeout");
            return Reply::json(
                503,
                http::error_body("briefing did not finish within the request timeout"),
                "miss",
            )
            .header("Retry-After", "1");
        }
        Err(RecvTimeoutError::Disconnected) => {
            return Reply::json(500, http::error_body("batch executor is gone"), "miss");
        }
    };
    t.batch_wait_us = completion.batch_wait_us;
    t.model_us = completion.model_us;
    t.serialize_us = completion.serialize_us;
    match completion.outcome {
        BriefOutcome::Ok(json) => {
            if shared.cfg.cache_capacity > 0 {
                let fill_t0 = Instant::now();
                let mut cache = replica.cache.lock().unwrap();
                cache.insert(key, fp, Arc::clone(&json));
                drop(cache);
                wb_obs::gauge!("serve.cache.size", shared.replicas.cache_len() as f64);
                t.cache_us += telemetry::micros_since(fill_t0);
            }
            Reply::json(200, json.as_bytes().to_vec(), "miss").header("X-Cache", "miss")
        }
        BriefOutcome::Unbriefable(detail) => {
            wb_obs::counter!("serve.unbriefable");
            Reply::json(422, http::error_body(&detail), "miss")
        }
        BriefOutcome::Internal(detail) => Reply::json(500, http::error_body(&detail), "miss"),
        BriefOutcome::Expired => Reply::json(
            504,
            http::error_body("request deadline expired before briefing started"),
            "miss",
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use wb_core::{JointModel, JointVariant, ModelConfig};
    use wb_corpus::{Dataset, DatasetConfig};

    fn tiny_briefer() -> Briefer {
        let d = Dataset::generate(&DatasetConfig::tiny());
        let cfg = ModelConfig::scaled(d.tokenizer.vocab().len());
        Briefer::from_model(
            JointModel::new(JointVariant::JointWb, cfg, 11),
            d.tokenizer.clone(),
        )
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            cache_capacity: 16,
            max_body_bytes: 64 * 1024,
            request_timeout_ms: 10_000,
            handler_delay_ms: 0,
            ..ServeConfig::default()
        }
    }

    /// Reads `n` `Content-Length`-framed responses off one connection —
    /// required now that connections keep alive (EOF never comes after a
    /// response) and responses to pipelined requests arrive back-to-back
    /// (one socket read can deliver parts of several responses).
    fn read_responses(s: &mut TcpStream, n: usize) -> Vec<String> {
        let _ = s.set_read_timeout(Some(Duration::from_secs(30)));
        let mut buf: Vec<u8> = Vec::new();
        let mut tmp = [0u8; 4096];
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let head_end = loop {
                if let Some(p) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                    break p + 4;
                }
                match s.read(&mut tmp) {
                    Ok(0) => panic!(
                        "connection closed before response head: {:?}",
                        String::from_utf8_lossy(&buf)
                    ),
                    Ok(read) => buf.extend_from_slice(&tmp[..read]),
                    Err(e) => panic!("no response from server: {e}"),
                }
            };
            let head = String::from_utf8_lossy(&buf[..head_end]).to_string();
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    if k.eq_ignore_ascii_case("content-length") {
                        v.trim().parse().ok()
                    } else {
                        None
                    }
                })
                .expect("Content-Length header in response");
            while buf.len() < head_end + content_length {
                match s.read(&mut tmp) {
                    Ok(0) => panic!("connection closed mid-body"),
                    Ok(read) => buf.extend_from_slice(&tmp[..read]),
                    Err(e) => panic!("read failed mid-body: {e}"),
                }
            }
            out.push(String::from_utf8_lossy(&buf[..head_end + content_length]).to_string());
            buf.drain(..head_end + content_length);
        }
        out
    }

    fn read_response(s: &mut TcpStream) -> String {
        read_responses(s, 1).pop().unwrap()
    }

    /// Sends one raw HTTP request on a fresh connection and returns the
    /// whole response text (status line, headers, body). Write errors are
    /// tolerated (the server may respond-and-close before consuming a
    /// rejected request); the response read is what matters.
    fn roundtrip_full(addr: SocketAddr, raw: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        let _ = s.write_all(raw);
        let _ = s.flush();
        read_response(&mut s)
    }

    /// Like `roundtrip_full` but parsed into (status, body).
    fn roundtrip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
        let text = roundtrip_full(addr, raw);
        let status: u16 =
            text.split_ascii_whitespace().nth(1).expect("status code").parse().unwrap();
        let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    fn post_brief(addr: SocketAddr, html: &str) -> (u16, String) {
        let raw = format!(
            "POST /brief HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{html}",
            html.len()
        );
        roundtrip(addr, raw.as_bytes())
    }

    const PAGE: &str = "<html><body><section><p>great velcro books , price : $ 9.99 .\
                        </p></section></body></html>";

    #[test]
    fn routes_brief_healthz_metrics_and_errors() {
        let briefer = tiny_briefer();
        let expected =
            serde_json::to_string_pretty(&briefer.brief_html(PAGE).unwrap()).unwrap();
        let h = start(briefer, test_config()).unwrap();
        let addr = h.addr();

        let (status, body) = post_brief(addr, PAGE);
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, expected, "served brief must equal the library brief byte-for-byte");
        // Second request: cached, still byte-identical.
        let (status, body2) = post_brief(addr, PAGE);
        assert_eq!(status, 200);
        assert_eq!(body2, expected);

        let (status, body) = roundtrip(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));

        let (status, body) = roundtrip(addr, b"GET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"counters\""), "metrics body not a snapshot: {body}");

        let (status, _) = roundtrip(addr, b"GET /nope HTTP/1.1\r\n\r\n");
        assert_eq!(status, 404);
        let (status, _) = roundtrip(addr, b"GET /brief HTTP/1.1\r\n\r\n");
        assert_eq!(status, 405);
        let (status, _) = post_brief(addr, "");
        assert_eq!(status, 400);
        // A page with no visible text is unbriefable, not a server error.
        let (status, body) = post_brief(addr, "<html><head><title>x</title></head></html>");
        assert_eq!(status, 422, "{body}");
        assert!(body.contains("error"), "{body}");

        h.shutdown();
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(300)).is_err(),
            "listener must be closed after shutdown"
        );
    }

    #[test]
    fn keep_alive_reuses_one_connection_for_many_requests() {
        let h = start(tiny_briefer(), test_config()).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        let raw = format!(
            "POST /brief HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{PAGE}",
            PAGE.len()
        );
        let mut bodies = Vec::new();
        for i in 0..3 {
            s.write_all(raw.as_bytes()).unwrap();
            let text = read_response(&mut s);
            assert!(text.starts_with("HTTP/1.1 200"), "request {i}:\n{text}");
            assert!(
                text.contains("Connection: keep-alive\r\n"),
                "request {i} must keep the connection:\n{text}"
            );
            bodies.push(text.split_once("\r\n\r\n").unwrap().1.to_string());
        }
        assert!(bodies.windows(2).all(|w| w[0] == w[1]), "reused-connection briefs must agree");
        // `Connection: close` is honored and ends the connection.
        s.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let text = read_response(&mut s);
        assert!(text.contains("Connection: close\r\n"), "{text}");
        let mut tail = Vec::new();
        s.read_to_end(&mut tail).expect("clean EOF after Connection: close");
        assert!(tail.is_empty(), "no bytes may follow the final response");
        h.shutdown();
    }

    #[test]
    fn pipelined_requests_are_all_answered_in_order() {
        let h = start(tiny_briefer(), test_config()).unwrap();
        let mut s = TcpStream::connect(h.addr()).unwrap();
        // Two briefs and a health check written back-to-back before any
        // response is read.
        let mut raw = Vec::new();
        for _ in 0..2 {
            raw.extend_from_slice(
                format!(
                    "POST /brief HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{PAGE}",
                    PAGE.len()
                )
                .as_bytes(),
            );
        }
        raw.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        s.write_all(&raw).unwrap();
        let responses = read_responses(&mut s, 3);
        let (first, second, third) = (&responses[0], &responses[1], &responses[2]);
        assert!(first.starts_with("HTTP/1.1 200"), "{first}");
        assert!(second.starts_with("HTTP/1.1 200"), "{second}");
        assert!(third.contains("{\"status\":\"ok\"}"), "{third}");
        h.shutdown();
    }

    #[test]
    fn brief_responses_carry_request_id_and_server_timing() {
        let h = start(tiny_briefer(), test_config()).unwrap();
        let addr = h.addr();
        let raw = format!(
            "POST /brief HTTP/1.1\r\nHost: t\r\nX-Request-Id: test-rid-7\r\n\
             Content-Length: {}\r\n\r\n{PAGE}",
            PAGE.len()
        );
        let text = roundtrip_full(addr, raw.as_bytes());
        assert!(
            text.contains("X-Request-Id: test-rid-7\r\n"),
            "inbound id not echoed:\n{text}"
        );
        assert!(text.contains("Server-Timing: "), "missing Server-Timing:\n{text}");
        assert!(text.contains("model;dur="), "miss must attribute model time:\n{text}");
        // A cache hit has no model stage but still reports cache time.
        let raw = format!(
            "POST /brief HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{PAGE}",
            PAGE.len()
        );
        let text = roundtrip_full(addr, raw.as_bytes());
        assert!(text.contains("X-Cache: hit\r\n"), "{text}");
        assert!(!text.contains("model;dur="), "cache hit must not claim model time:\n{text}");
        assert!(text.contains("X-Request-Id: wb-"), "hit must mint an id:\n{text}");
        // Control-plane responses echo ids too.
        let text = roundtrip_full(addr, b"GET /healthz HTTP/1.1\r\nX-Request-Id: cp-1\r\n\r\n");
        assert!(text.contains("X-Request-Id: cp-1\r\n"), "{text}");
        h.shutdown();
    }

    #[test]
    fn varz_and_prometheus_routes_serve_live_views() {
        let h = start(tiny_briefer(), test_config()).unwrap();
        let addr = h.addr();
        let (status, _) = post_brief(addr, PAGE);
        assert_eq!(status, 200);
        let text = roundtrip_full(addr, b"GET /varz HTTP/1.1\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        let body = text.split_once("\r\n\r\n").unwrap().1;
        let v: serde_json::Value = serde_json::from_str(body).expect("valid varz JSON");
        assert_eq!(v.get("breaker").and_then(|b| b.as_str()), Some("closed"));
        let w10 = v.get("windows").and_then(|w| w.get("10s")).expect("10s window");
        assert!(
            w10.get("requests").and_then(|r| r.as_f64()).unwrap_or(0.0) >= 1.0,
            "the brief above must show up in the live window: {body}"
        );
        assert!(w10.get("stages_us").is_some());
        // Connection accounting rides along for `wb top`.
        let conns = v.get("conns").expect("conns section");
        assert!(
            conns.get("accepted").and_then(|a| a.as_f64()).unwrap_or(0.0) >= 1.0,
            "accepted connections must be counted: {conns:?}"
        );
        assert_eq!(v.get("replicas").and_then(|r| r.as_f64()), Some(1.0));
        // The proc.* runtime stats section rides along on /varz.
        let proc = v.get("proc").expect("proc section");
        #[cfg(target_os = "linux")]
        assert!(
            proc.get("threads").and_then(|t| t.as_f64()).unwrap_or(0.0) >= 1.0,
            "procstat sampler must populate threads: {proc:?}"
        );
        // Prometheus exposition next to the JSON snapshot.
        let text = roundtrip_full(addr, b"GET /metrics?format=prometheus HTTP/1.1\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("Content-Type: text/plain; version=0.0.4\r\n"), "{text}");
        assert!(text.contains("# TYPE wb_serve_requests counter"), "{text}");
        assert!(text.contains("wb_serve_request_latency_us_bucket{le=\"+Inf\"}"), "{text}");
        // The windowed live view rides along so Prometheus and /varz
        // agree: generic wb_window_* families plus the derived gauges.
        assert!(text.contains("# TYPE wb_window_rps gauge"), "{text}");
        assert!(text.contains("wb_window_rps{window=\"10s\"}"), "{text}");
        assert!(text.contains("wb_window_error_rate{window=\"60s\"}"), "{text}");
        assert!(text.contains("wb_window_serve_requests_sum{window=\"10s\"}"), "{text}");
        // And the procstat sampler's runtime gauges are scrapable too.
        #[cfg(target_os = "linux")]
        assert!(text.contains("wb_proc_threads"), "{text}");
        // The JSON view is unchanged, and unknown formats are a 400.
        let (status, body) = roundtrip(addr, b"GET /metrics?format=json HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"counters\""), "{body}");
        let (status, body) = roundtrip(addr, b"GET /metrics?format=xml HTTP/1.1\r\n\r\n");
        assert_eq!(status, 400, "{body}");
        let (status, _) = roundtrip(addr, b"POST /varz HTTP/1.1\r\n\r\n");
        assert_eq!(status, 405);
        h.shutdown();
    }

    // The profiler's single-capture guard is process-global, so the
    // pprof tests must not overlap in the parallel test runner.
    static PPROF_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn pprof_route_streams_collapsed_and_svg_captures() {
        let _serial = PPROF_LOCK.lock().unwrap();
        let h = start(tiny_briefer(), test_config()).unwrap();
        let addr = h.addr();
        // Background load so the capture has spans to see.
        let stop = Arc::new(AtomicBool::new(false));
        let load = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    let page = format!(
                        "<html><body><section><p>load page {i} with words .</p></section>\
                         </body></html>"
                    );
                    let _ = post_brief(addr, &page);
                }
            })
        };
        let (status, body) =
            roundtrip(addr, b"GET /pprof?seconds=1&format=collapsed HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200, "{body}");
        // Every line of the body is canonical collapsed-stack form.
        wb_obs::flame::parse_collapsed(&body).expect("collapsed output parses");
        assert!(
            body.lines().any(|l| l.contains("serve.")),
            "capture under load must see server spans:\n{body}"
        );
        let text = roundtrip_full(addr, b"GET /pprof?seconds=1&format=svg HTTP/1.1\r\n\r\n");
        stop.store(true, Ordering::Relaxed);
        load.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 200"), "{text}");
        assert!(text.contains("Content-Type: image/svg+xml\r\n"), "{text}");
        let svg = text.split_once("\r\n\r\n").unwrap().1;
        assert!(svg.starts_with("<?xml"), "{svg}");
        assert_eq!(svg.matches("<g>").count(), svg.matches("</g>").count());
        h.shutdown();
    }

    #[test]
    fn pprof_rejects_bad_params_and_concurrent_captures() {
        let _serial = PPROF_LOCK.lock().unwrap();
        let h = start(tiny_briefer(), test_config()).unwrap();
        let addr = h.addr();
        for bad in [
            "GET /pprof?seconds=0 HTTP/1.1\r\n\r\n".as_bytes(),
            b"GET /pprof?seconds=61 HTTP/1.1\r\n\r\n",
            b"GET /pprof?hz=0 HTTP/1.1\r\n\r\n",
            b"GET /pprof?mode=flux HTTP/1.1\r\n\r\n",
            b"GET /pprof?format=pdf HTTP/1.1\r\n\r\n",
        ] {
            let (status, body) = roundtrip(addr, bad);
            assert_eq!(status, 400, "{body}");
        }
        let (status, _) = roundtrip(addr, b"POST /pprof HTTP/1.1\r\n\r\n");
        assert_eq!(status, 405);
        // A second capture while one runs is refused with Retry-After.
        let first = std::thread::spawn(move || {
            roundtrip(addr, b"GET /pprof?seconds=1 HTTP/1.1\r\n\r\n")
        });
        std::thread::sleep(Duration::from_millis(300));
        let text = roundtrip_full(addr, b"GET /pprof?seconds=1 HTTP/1.1\r\n\r\n");
        assert!(text.starts_with("HTTP/1.1 409"), "{text}");
        assert!(text.contains("Retry-After:"), "{text}");
        let (status, _) = first.join().unwrap();
        assert_eq!(status, 200);
        h.shutdown();
    }

    #[test]
    fn control_plane_does_not_pollute_request_latency() {
        // A fresh registry view is impossible (global), so measure deltas.
        let count_of = |name: &str| {
            wb_obs::metrics::snapshot().histograms.get(name).map(|h| h.count).unwrap_or(0)
        };
        let h = start(tiny_briefer(), test_config()).unwrap();
        let addr = h.addr();
        let before_req = count_of("serve.request.latency_us");
        let before_ctl = count_of("serve.control.latency_us");
        for _ in 0..3 {
            let (status, _) = roundtrip(addr, b"GET /healthz HTTP/1.1\r\n\r\n");
            assert_eq!(status, 200);
        }
        let (status, _) = roundtrip(addr, b"GET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert_eq!(
            count_of("serve.request.latency_us"),
            before_req,
            "control-plane requests must not feed the serving histogram"
        );
        assert!(count_of("serve.control.latency_us") >= before_ctl + 4);
        let (status, _) = post_brief(addr, PAGE);
        assert_eq!(status, 200);
        assert!(count_of("serve.request.latency_us") > before_req);
        h.shutdown();
    }

    #[test]
    fn oversized_body_is_413() {
        let mut cfg = test_config();
        cfg.max_body_bytes = 128;
        let h = start(tiny_briefer(), cfg).unwrap();
        let big = "x".repeat(4096);
        let (status, body) = post_brief(h.addr(), &big);
        assert_eq!(status, 413, "{body}");
        h.shutdown();
    }

    #[test]
    fn overload_sheds_with_503_and_never_hangs() {
        let mut cfg = test_config();
        cfg.workers = 1;
        cfg.queue_capacity = 1;
        cfg.cache_capacity = 0; // no inline hits: every request needs the model
        cfg.handler_delay_ms = 400; // every batch stalls; the queue backs up
        cfg.request_timeout_ms = 5_000;
        let h = start(tiny_briefer(), cfg).unwrap();
        let addr = h.addr();
        let threads: Vec<_> =
            (0..8).map(|_| std::thread::spawn(move || post_brief(addr, PAGE))).collect();
        let results: Vec<(u16, String)> =
            threads.into_iter().map(|t| t.join().expect("request thread")).collect();
        let ok = results.iter().filter(|(s, _)| *s == 200).count();
        let shed = results.iter().filter(|(s, _)| *s == 503).count();
        assert_eq!(ok + shed, 8, "every request must be answered: {results:?}");
        assert!(ok >= 1, "at least the first request must be served");
        assert!(shed >= 1, "with 1 worker + queue of 1, overflow must shed: {results:?}");
        h.shutdown();
    }

    #[test]
    fn concurrent_connections_exceed_worker_count_without_shedding() {
        let mut cfg = test_config();
        cfg.workers = 2;
        cfg.queue_capacity = 64;
        let h = start(tiny_briefer(), cfg).unwrap();
        let addr = h.addr();
        // Warm the cache so requests answer inline and quickly.
        let (status, _) = post_brief(addr, PAGE);
        assert_eq!(status, 200);
        // 24 simultaneous connections against 2 workers: the event loop
        // holds them all; nobody is shed.
        let threads: Vec<_> =
            (0..24).map(|_| std::thread::spawn(move || post_brief(addr, PAGE))).collect();
        let results: Vec<(u16, String)> =
            threads.into_iter().map(|t| t.join().expect("request thread")).collect();
        assert!(
            results.iter().all(|(s, _)| *s == 200),
            "no shedding below max_conns: {results:?}"
        );
        h.shutdown();
    }

    #[test]
    fn shutdown_endpoint_signals_the_run_loop() {
        let h = start(tiny_briefer(), test_config()).unwrap();
        let addr = h.addr();
        let poster =
            std::thread::spawn(move || roundtrip(addr, b"POST /shutdown HTTP/1.1\r\n\r\n"));
        h.wait_for_shutdown_request();
        let (status, body) = poster.join().unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("shutting down"), "{body}");
        h.shutdown();
    }

    #[test]
    fn poll_shutdown_request_times_out_then_fires() {
        let h = start(tiny_briefer(), test_config()).unwrap();
        let addr = h.addr();
        assert!(!h.poll_shutdown_request(Duration::from_millis(20)));
        let poster =
            std::thread::spawn(move || roundtrip(addr, b"POST /shutdown HTTP/1.1\r\n\r\n"));
        assert!(h.poll_shutdown_request(Duration::from_secs(10)));
        let (status, _) = poster.join().unwrap();
        assert_eq!(status, 200);
        h.shutdown();
    }

    #[test]
    fn expired_deadline_is_504_before_the_model_runs() {
        let mut cfg = test_config();
        cfg.cache_capacity = 0; // force the model path
        cfg.handler_delay_ms = 300; // the batch stalls past the deadline
        let h = start(tiny_briefer(), cfg).unwrap();
        let addr = h.addr();
        let raw = format!(
            "POST /brief HTTP/1.1\r\nHost: t\r\nX-Deadline-Ms: 50\r\n\
             Content-Length: {}\r\n\r\n{PAGE}",
            PAGE.len()
        );
        let (status, body) = roundtrip(addr, raw.as_bytes());
        assert_eq!(status, 504, "{body}");
        assert!(body.contains("deadline"), "{body}");
        // A generous deadline on the same page still gets briefed.
        let (status, _) = post_brief(addr, PAGE);
        assert_eq!(status, 200);
        // And a malformed deadline is a client error, not a hang.
        let raw = format!(
            "POST /brief HTTP/1.1\r\nHost: t\r\nX-Deadline-Ms: soon\r\n\
             Content-Length: {}\r\n\r\n{PAGE}",
            PAGE.len()
        );
        let (status, body) = roundtrip(addr, raw.as_bytes());
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("X-Deadline-Ms"), "{body}");
        h.shutdown();
    }

    #[test]
    fn requests_shard_across_replicas_with_per_replica_caches() {
        let mut cfg = test_config();
        cfg.replicas = 3;
        let h = start(tiny_briefer(), cfg).unwrap();
        let addr = h.addr();
        // Distinct pages spread over the ring; each brief lands in exactly
        // one replica's cache.
        for i in 0..6 {
            let page = format!(
                "<html><body><section><p>sharded page {i} with words . price : $ 1.{i}{i} .\
                 </p></section></body></html>"
            );
            let (status, body) = post_brief(addr, &page);
            assert!(status == 200 || status == 422, "page {i}: {status} {body}");
        }
        let total_cached = h.shared.replicas.cache_len();
        assert!(total_cached >= 1, "briefs must be cached somewhere");
        let populated = h
            .shared
            .replicas
            .all()
            .iter()
            .filter(|r| !r.cache.lock().unwrap().is_empty())
            .count();
        assert!(
            populated >= 2,
            "6 distinct pages should populate at least 2 of 3 replica caches \
             (got {populated}; ring badly skewed?)"
        );
        // Repeats of a cached page are hits, wherever it was routed.
        let page = "<html><body><section><p>sharded page 0 with words . price : $ 1.00 .\
                    </p></section></body></html>";
        let (s1, b1) = post_brief(addr, page);
        let (s2, b2) = post_brief(addr, page);
        assert_eq!((s1, s2), (200, 200));
        assert_eq!(b1, b2, "replica routing must be stable for a given page");
        h.shutdown();
    }
}
