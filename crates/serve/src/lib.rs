#![warn(missing_docs)]
//! # wb-serve
//!
//! A dependency-free HTTP/1.1 briefing server — the serving shape the
//! paper's system is meant to run in: long-lived, ingesting arbitrary real
//! pages, under concurrent load. Exposed on the command line as
//! `wb serve --model FILE`.
//!
//! ## Request path
//!
//! ```text
//!             ┌────────────── event loop (one thread, poll(2)) ──────────────┐
//! accept ──►  │ nonblocking reads ─► incremental parser ─► inline cache hit? │
//!             │        (per-conn buffer, keep-alive, pipelining)   │ yes ─► reply
//!             └────────────────────────────┬─────────────────────────────────┘
//!                                          │ miss / control route
//!                                bounded work queue ──► worker pool
//!                                          │ full?          │
//!                                          └─► 503          ├─► replica ring (consistent hash)
//!                                                           │     ├─ LRU cache ─► micro-batcher
//!                                                           │     └─ circuit breaker
//!                                                           └─► Briefer::brief_corpus
//! ```
//!
//! * **Event-loop I/O** — one thread multiplexes every connection with
//!   `poll(2)` ([`sys`]); reads and writes are nonblocking and
//!   readiness-driven, so concurrency is bounded by `--max-conns`, not by
//!   worker count. Parsed requests cross a fixed-capacity work queue to
//!   the worker pool; when the queue is full, new requests are shed
//!   immediately with `503` and a `Retry-After` header. An accepted
//!   request is never silently dropped.
//! * **Keep-alive + pipelining** — connections persist per HTTP/1.1
//!   semantics (`Connection:` headers honoured, `--max-requests-per-conn`
//!   and `--idle-timeout-ms` bound each connection's tenure); bytes
//!   beyond the current request stay in the connection buffer and are
//!   served in order. Framing errors always close the connection.
//! * **Replica sharding** — briefing fans out over `--replicas`
//!   independent lanes ([`replica`]): each owns an LRU cache, a
//!   micro-batcher with its own executor, and a circuit breaker, routed
//!   by a consistent-hash ring over the page-content hash so repeat pages
//!   hit the same hot cache and one lane's failures trip only its own
//!   breaker.
//! * **Micro-batching** — concurrent `/brief` requests on a replica drain
//!   into a single [`wb_core::Briefer::brief_corpus`] call so they share
//!   one rayon fan-out; identical pages in a batch run the model once.
//! * **Response cache** — an LRU keyed by page-content hash serves repeat
//!   pages without re-running the model — hot hits answer inline on the
//!   event-loop thread without a worker handoff. Briefing is pure, so
//!   cached and recomputed responses are byte-identical.
//! * **Bounded everything** — oversized bodies get `413` (from the
//!   `Content-Length` header alone), slow clients `408`, and a request
//!   whose batch cannot finish inside the timeout `503`; a model panic
//!   returns `500` to the affected requests and the server keeps serving.
//!
//! ## Routes
//!
//! | Route            | Behaviour                                          |
//! |------------------|----------------------------------------------------|
//! | `POST /brief`    | HTML body in → pretty-printed `Brief` JSON out (byte-identical to `wb brief --json`) |
//! | `GET /healthz`   | `{"status":"ok"}`                                  |
//! | `GET /metrics`   | the `wb-obs` metrics snapshot JSON; `?format=prometheus` for text exposition |
//! | `GET /varz`      | the windowed live view (RPS, error rate, windowed percentiles, stage breakdown) — what `wb top` polls |
//! | `POST /shutdown` | acknowledge, then shut down gracefully             |
//!
//! ## Request-scoped telemetry
//!
//! Every request carries an id (inbound `X-Request-Id` honoured,
//! otherwise minted; always echoed back) and a [`telemetry::StageTimings`]
//! breakdown — `queue_wait → parse → cache → batch_wait → model →
//! serialize → write` — recorded into the `serve.stage.*_us` histogram
//! family (cumulative and windowed), echoed as a `Server-Timing` response
//! header and emitted as a structured JSON access-log line (sampled via
//! `--access-log-sample`; requests slower than `--slow-request-ms`
//! always log at WARN). Control-plane routes (`/healthz`, `/metrics`,
//! `/varz`, `/shutdown`) record `serve.control.latency_us` so scrapes
//! and health probes never skew serving percentiles.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] (or `POST /shutdown`) stops accepting,
//! serves everything already accepted, drains the batch queue and joins
//! every thread; the `wb serve` command then flushes `--metrics-out` /
//! `--trace-out`. Every stage is instrumented under `serve.*` (see
//! `docs/OBSERVABILITY.md`).

pub mod batch;
pub mod breaker;
pub mod cache;
mod event;
pub mod http;
pub mod replica;
pub mod server;
pub mod signal;
pub mod sys;
pub mod telemetry;

pub use batch::{Batcher, BriefOutcome, Completion, Job};
pub use breaker::{Admission, BreakerConfig, CircuitBreaker};
pub use cache::{fnv1a, Fingerprint, LruCache};
pub use replica::{Replica, ReplicaSet};
pub use server::{start, ServeConfig, ServerHandle};
pub use signal::{install_handler, shutdown_signalled};
