//! Readiness primitives without a libc crate: `poll(2)` and a
//! nonblocking self-pipe, declared by hand against the platform libc that
//! std already links (the build environment has no registry access).
//!
//! This is the whole syscall surface the event loop needs. Sockets come
//! from std (`TcpListener`/`TcpStream` with `set_nonblocking`); only
//! readiness multiplexing and the worker→loop wakeup channel require
//! going below std. `poll` is chosen over `epoll` deliberately: it is
//! portable across unix targets, needs no extra fd lifecycle management,
//! and the server re-resolves per-fd interest every iteration anyway —
//! at the few thousand connections this binary is sized for, the O(n)
//! scan is noise next to request handling.

/// Interest/readiness flags for [`PollFd`], from `<poll.h>`.
pub const POLLIN: i16 = 0x001;
/// Writable-readiness flag.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLLHUP: i16 = 0x010;
/// Invalid fd (always reported, never requested).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set — layout-compatible with `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch (negative entries are ignored).
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events, filled in by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// An entry watching `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> Self {
        PollFd { fd, events, revents: 0 }
    }

    /// Whether any of `mask` came back in `revents`.
    pub fn has(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// Whether the fd is in a terminal state (error / hangup / invalid).
    pub fn failed(&self) -> bool {
        self.has(POLLERR | POLLHUP | POLLNVAL)
    }
}

#[cfg(unix)]
mod imp {
    use super::PollFd;
    use std::io;

    // Linux nfds_t is unsigned long; using u64 here matches every 64-bit
    // unix this repo targets.
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn close(fd: i32) -> i32;
    }

    const F_GETFL: i32 = 3;
    const F_SETFL: i32 = 4;
    #[cfg(target_os = "linux")]
    const O_NONBLOCK: i32 = 0o4000;
    #[cfg(not(target_os = "linux"))]
    const O_NONBLOCK: i32 = 0x0004;

    /// Blocks until an fd in `fds` is ready or `timeout_ms` elapses
    /// (`-1` = forever). Returns how many entries have nonzero `revents`.
    /// EINTR surfaces as `Ok(0)` — the caller's loop re-evaluates
    /// deadlines and polls again, which is exactly the EINTR contract.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        Err(err)
    }

    /// A nonblocking pipe: workers write a byte to wake the event loop
    /// out of `poll`, the loop drains it. Writes when the pipe is full
    /// fail with EAGAIN, which is fine — a full pipe is already a
    /// pending wakeup.
    pub struct WakePipe {
        read_fd: i32,
        write_fd: i32,
    }

    impl WakePipe {
        /// Opens the pipe with both ends nonblocking.
        pub fn new() -> io::Result<WakePipe> {
            let mut fds = [0i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
                return Err(io::Error::last_os_error());
            }
            for fd in fds {
                let flags = unsafe { fcntl(fd, F_GETFL, 0) };
                if flags < 0 || unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) } < 0 {
                    let err = io::Error::last_os_error();
                    unsafe {
                        close(fds[0]);
                        close(fds[1]);
                    }
                    return Err(err);
                }
            }
            Ok(WakePipe { read_fd: fds[0], write_fd: fds[1] })
        }

        /// The fd the event loop registers for POLLIN.
        pub fn read_fd(&self) -> i32 {
            self.read_fd
        }

        /// Makes the read end readable, interrupting a blocked `poll`.
        pub fn wake(&self) {
            let byte = 1u8;
            unsafe {
                write(self.write_fd, &byte, 1);
            }
        }

        /// Empties the pipe so the next `wake` edge is visible again.
        pub fn drain(&self) {
            let mut buf = [0u8; 64];
            loop {
                let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
                if n <= 0 {
                    break;
                }
            }
        }
    }

    impl Drop for WakePipe {
        fn drop(&mut self) {
            unsafe {
                close(self.read_fd);
                close(self.write_fd);
            }
        }
    }

    // The fds are plain ints owned by this struct; both ends are safe to
    // use from any thread (wake from workers, drain from the loop).
    unsafe impl Send for WakePipe {}
    unsafe impl Sync for WakePipe {}
}

#[cfg(unix)]
pub use imp::{poll_fds, WakePipe};

#[cfg(not(unix))]
mod imp {
    use super::PollFd;
    use std::io;

    /// Non-unix stub: the event-loop server is unix-only; constructing it
    /// elsewhere fails at runtime with a clear error instead of at link
    /// time with a missing symbol.
    pub fn poll_fds(_fds: &mut [PollFd], _timeout_ms: i32) -> io::Result<usize> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "poll-based serving requires unix"))
    }

    /// Non-unix stub of the self-pipe.
    pub struct WakePipe;

    impl WakePipe {
        pub fn new() -> io::Result<WakePipe> {
            Err(io::Error::new(io::ErrorKind::Unsupported, "self-pipe requires unix"))
        }
        pub fn read_fd(&self) -> i32 {
            -1
        }
        pub fn wake(&self) {}
        pub fn drain(&self) {}
    }
}

#[cfg(not(unix))]
pub use imp::{poll_fds, WakePipe};

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn poll_reports_readable_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();

        // Nothing written yet: not readable within a short timeout.
        let mut fds = [PollFd::new(server_side.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 10).unwrap(), 0);

        client.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(server_side.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].has(POLLIN));
    }

    #[test]
    fn wake_pipe_wakes_poll_and_drains() {
        let pipe = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 10).unwrap(), 0, "fresh pipe is quiet");

        pipe.wake();
        pipe.wake(); // coalesces, never blocks
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        assert!(fds[0].has(POLLIN));

        pipe.drain();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 10).unwrap(), 0, "drained pipe is quiet again");
    }

    #[test]
    fn hangup_is_reported_as_failed() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        drop(client);
        let mut fds = [PollFd::new(server_side.as_raw_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).unwrap(), 1);
        // EOF arrives as POLLIN (read returns 0) and often POLLHUP too;
        // either way the entry reports ready.
        assert!(fds[0].has(POLLIN) || fds[0].failed());
    }
}
