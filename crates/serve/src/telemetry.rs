//! Request-scoped telemetry: request ids, per-stage timing attribution
//! and structured access logging.
//!
//! A coarse end-to-end latency histogram cannot say *where* a slow p99
//! came from — queue wait, batch wait, the model, or a slow client
//! socket. Every request therefore carries a [`StageTimings`] through
//! the pipeline:
//!
//! ```text
//! accept ──queue_wait──► parse ──cache──► batch_wait ──► model ──► serialize ──► write
//! ```
//!
//! and at completion the breakdown is (1) recorded into the
//! `serve.stage.*_us` histogram family (cumulative and windowed), (2)
//! echoed to the client as a `Server-Timing` response header, and (3)
//! emitted as a structured JSON access-log line — sampled in normal
//! operation, always for slow requests.
//!
//! Request ids: an inbound `X-Request-Id` header is honoured (after
//! sanitising) so ids correlate across services; otherwise the server
//! mints `wb-<boot>-<seq>`. The id is echoed on every response.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;
use wb_obs::json::Json;

/// Stage names in pipeline order, paired with accessors — the single
/// source of truth for the `serve.stage.*_us` metric family, the
/// `Server-Timing` header and the access-log `stages` object.
const STAGES: [&str; 7] =
    ["queue_wait", "parse", "cache", "batch_wait", "model", "serialize", "write"];

/// Per-request wall-clock attribution, in microseconds per stage. A
/// stage the request never entered (e.g. `model` on a cache hit) stays
/// zero and is omitted from metrics and headers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimings {
    /// Accepted socket waiting in the bounded queue for a worker.
    pub queue_wait_us: u64,
    /// Reading and parsing the HTTP request off the socket.
    pub parse_us: u64,
    /// Hashing the body and probing (plus, on miss, later filling) the
    /// response cache.
    pub cache_us: u64,
    /// Submitted job waiting for the batch executor to drain it.
    pub batch_wait_us: u64,
    /// The model running this request's batch (includes any configured
    /// `--handler-delay-ms` stall, which simulates model cost).
    pub model_us: u64,
    /// Serialising the batch's briefs to response JSON.
    pub serialize_us: u64,
    /// Writing the response to the client socket.
    pub write_us: u64,
}

impl StageTimings {
    fn stages(&self) -> [(&'static str, u64); 7] {
        [
            (STAGES[0], self.queue_wait_us),
            (STAGES[1], self.parse_us),
            (STAGES[2], self.cache_us),
            (STAGES[3], self.batch_wait_us),
            (STAGES[4], self.model_us),
            (STAGES[5], self.serialize_us),
            (STAGES[6], self.write_us),
        ]
    }

    /// Renders the breakdown as a `Server-Timing` header value
    /// (`stage;dur=<milliseconds>`, pipeline order, zero stages and the
    /// not-yet-known `write` stage omitted — the header is sent *in* the
    /// write).
    pub fn server_timing(&self) -> String {
        let mut out = String::new();
        for (name, us) in self.stages() {
            if us == 0 || name == "write" {
                continue;
            }
            if !out.is_empty() {
                out.push_str(", ");
            }
            out.push_str(name);
            out.push_str(&format!(";dur={:.3}", us as f64 / 1e3));
        }
        if out.is_empty() {
            out.push_str("total;dur=0");
        }
        out
    }

    /// Records every stage the request entered into the
    /// `serve.stage.<name>_us` histograms, cumulative and windowed.
    pub fn record(&self) {
        macro_rules! stage {
            ($field:ident, $cum:literal) => {
                if self.$field > 0 {
                    wb_obs::histogram!($cum, self.$field);
                    wb_obs::window_histogram!($cum, self.$field);
                }
            };
        }
        stage!(queue_wait_us, "serve.stage.queue_wait_us");
        stage!(parse_us, "serve.stage.parse_us");
        stage!(cache_us, "serve.stage.cache_us");
        stage!(batch_wait_us, "serve.stage.batch_wait_us");
        stage!(model_us, "serve.stage.model_us");
        stage!(serialize_us, "serve.stage.serialize_us");
        stage!(write_us, "serve.stage.write_us");
    }

    /// The `stages` object of the access-log line (zero stages omitted).
    fn to_json(self) -> Json {
        Json::Obj(
            self.stages()
                .iter()
                .filter(|&&(_, us)| us > 0)
                .map(|&(name, us)| (format!("{name}_us"), Json::Num(us as f64)))
                .collect(),
        )
    }
}

/// Microseconds elapsed since `t0`, saturating into a `u64`.
pub fn micros_since(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Mints a process-unique request id, `wb-<boot>-<seq>`: a per-boot hex
/// stamp (wall clock at first use) so ids from successive server runs
/// don't collide in shared logs, plus a monotone sequence number.
pub fn next_request_id() -> String {
    static BOOT: OnceLock<u64> = OnceLock::new();
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let boot = *BOOT.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0)
    });
    format!("wb-{:x}-{:x}", boot & 0xffff_ffff, SEQ.fetch_add(1, Ordering::Relaxed))
}

/// The request id for a parsed request: an inbound `X-Request-Id` if it
/// is printable ASCII of sane length (so it cannot corrupt headers or
/// log lines), else a freshly minted id.
pub fn request_id(inbound: Option<&str>) -> String {
    match inbound {
        Some(id)
            if !id.is_empty()
                && id.len() <= 128
                && id.bytes().all(|b| b.is_ascii_graphic()) =>
        {
            id.to_string()
        }
        _ => next_request_id(),
    }
}

/// Builds one structured access-log line: a single JSON object with the
/// request id, route, status, total latency, cache disposition and the
/// per-stage breakdown. Keys sort deterministically (the hand-rolled
/// [`Json`] renderer), so log pipelines can diff lines textually.
pub fn access_log_line(
    id: &str,
    method: &str,
    path: &str,
    status: u16,
    total_us: u64,
    cache: &str,
    timings: &StageTimings,
) -> String {
    let mut o = std::collections::BTreeMap::new();
    o.insert("id".to_string(), Json::Str(id.to_string()));
    o.insert("method".to_string(), Json::Str(method.to_string()));
    o.insert("path".to_string(), Json::Str(path.to_string()));
    o.insert("status".to_string(), Json::Num(status as f64));
    o.insert("total_us".to_string(), Json::Num(total_us as f64));
    o.insert("cache".to_string(), Json::Str(cache.to_string()));
    o.insert("stages".to_string(), timings.to_json());
    Json::Obj(o).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_timing_lists_nonzero_stages_in_pipeline_order() {
        let t = StageTimings {
            queue_wait_us: 50,
            parse_us: 120,
            model_us: 150_000,
            write_us: 999, // never in the header: the header is sent in the write
            ..StageTimings::default()
        };
        let h = t.server_timing();
        assert_eq!(h, "queue_wait;dur=0.050, parse;dur=0.120, model;dur=150.000");
    }

    #[test]
    fn server_timing_of_nothing_is_total_zero() {
        assert_eq!(StageTimings::default().server_timing(), "total;dur=0");
    }

    #[test]
    fn minted_ids_are_unique_and_printable() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
        assert!(a.starts_with("wb-"));
        assert!(a.bytes().all(|c| c.is_ascii_graphic()));
    }

    #[test]
    fn inbound_ids_are_honoured_or_replaced() {
        assert_eq!(request_id(Some("trace-abc-123")), "trace-abc-123");
        // Control characters, emptiness or absurd length mint a fresh id.
        assert!(request_id(Some("bad\nid")).starts_with("wb-"));
        assert!(request_id(Some("")).starts_with("wb-"));
        assert!(request_id(Some(&"x".repeat(300))).starts_with("wb-"));
        assert!(request_id(None).starts_with("wb-"));
    }

    #[test]
    fn access_log_line_is_valid_json_with_stage_breakdown() {
        let t = StageTimings { parse_us: 10, model_us: 2000, ..StageTimings::default() };
        let line = access_log_line("wb-1-2", "POST", "/brief", 200, 2500, "miss", &t);
        let v: serde_json::Value = serde_json::from_str(&line).expect("valid JSON");
        assert_eq!(v.get("id").and_then(|x| x.as_str()), Some("wb-1-2"));
        assert_eq!(v.get("status").and_then(|x| x.as_f64()), Some(200.0));
        assert_eq!(v.get("cache").and_then(|x| x.as_str()), Some("miss"));
        let stages = v.get("stages").expect("stages object");
        assert_eq!(stages.get("model_us").and_then(|x| x.as_f64()), Some(2000.0));
        assert!(stages.get("queue_wait_us").is_none(), "zero stages omitted");
    }

    #[test]
    fn record_feeds_the_stage_histogram_family() {
        let t = StageTimings { model_us: 123, ..StageTimings::default() };
        t.record();
        let s = wb_obs::metrics::snapshot();
        assert!(s.histograms.contains_key("serve.stage.model_us"));
        let w = wb_obs::window::snapshot();
        assert!(w.histograms.contains_key("serve.stage.model_us"));
    }
}
