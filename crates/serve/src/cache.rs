//! A fixed-capacity LRU map keyed by page-content hash. Briefing is a pure
//! function of (model, page), so a cached response is byte-identical to a
//! recomputed one; the cache only changes *when* the model runs, never what
//! the server returns.

use std::collections::HashMap;

/// 64-bit FNV-1a — a deterministic, dependency-free content hash for cache
/// keys (not cryptographic; collisions are astronomically unlikely at any
/// realistic cache size and at worst serve a stale-but-valid brief for a
/// different page).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const NIL: usize = usize::MAX;

struct Slot<V> {
    key: u64,
    value: V,
    prev: usize,
    next: usize,
}

/// A doubly-linked-list LRU over a slab of slots: `get` and `insert` are
/// O(1), eviction removes the least-recently-used entry.
pub struct LruCache<V> {
    capacity: usize,
    map: HashMap<u64, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries. A capacity of 0
    /// disables caching: every `get` misses and `insert` is a no-op.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slots: Vec::with_capacity(capacity.min(1 << 16)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking the entry most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        let &idx = self.map.get(&key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(&self.slots[idx].value)
    }

    /// Inserts or refreshes `key`, evicting the least-recently-used entry
    /// when at capacity.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            self.map.remove(&self.slots[lru].key);
            self.free.push(lru);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot { key, value, prev: NIL, next: NIL };
                i
            }
            None => {
                self.slots.push(Slot { key, value, prev: NIL, next: NIL });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Keys from most- to least-recently-used, by walking the list.
    fn order<V>(c: &LruCache<V>) -> Vec<u64> {
        let mut out = Vec::new();
        let mut idx = c.head;
        while idx != NIL {
            out.push(c.slots[idx].key);
            idx = c.slots[idx].next;
        }
        out
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(3, "c"); // evicts 1
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(2), Some(&"b"));
        assert_eq!(c.get(3), Some(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn get_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert!(c.get(1).is_some()); // 1 is now MRU
        c.insert(3, "c"); // evicts 2, not 1
        assert_eq!(c.get(2), None);
        assert_eq!(c.get(1), Some(&"a"));
        assert_eq!(order(&c), vec![1, 3]);
    }

    #[test]
    fn insert_updates_existing_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(1, "a2");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1), Some(&"a2"));
        assert_eq!(c.get(2), Some(&"b"));
    }

    #[test]
    fn capacity_one_and_zero() {
        let mut c = LruCache::new(1);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.get(1), None);
        assert_eq!(c.get(2), Some(&"b"));

        let mut off: LruCache<&str> = LruCache::new(0);
        off.insert(1, "a");
        assert!(off.is_empty());
        assert_eq!(off.get(1), None);
    }

    #[test]
    fn slab_reuse_keeps_list_consistent() {
        let mut c = LruCache::new(3);
        for k in 0..50u64 {
            c.insert(k, k * 10);
            if k >= 2 {
                // Touch an older key so evictions interleave with refreshes.
                let _ = c.get(k - 1);
            }
        }
        assert_eq!(c.len(), 3);
        let keys = order(&c);
        assert_eq!(keys.len(), 3);
        for k in keys {
            assert_eq!(c.get(k), Some(&(k * 10)));
        }
        assert!(c.slots.len() <= 3, "slab must not grow past capacity");
    }

    #[test]
    fn fnv1a_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"page"), fnv1a(b"page"));
        assert_ne!(fnv1a(b"page"), fnv1a(b"Page"));
    }
}
