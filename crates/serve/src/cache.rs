//! A fixed-capacity LRU map keyed by page-content hash. Briefing is a pure
//! function of (model, page), so a cached response is byte-identical to a
//! recomputed one; the cache only changes *when* the model runs, never what
//! the server returns.

use std::collections::HashMap;

/// 64-bit FNV-1a — a deterministic, dependency-free content hash for cache
/// keys (not cryptographic). A collision must not serve a wrong-page brief
/// with a 200, so every slot also stores a [`Fingerprint`] of the page bytes
/// and `get` treats a fingerprint mismatch as a miss.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A cheap second check against FNV-1a collisions: the page byte length plus
/// the first and last 8 bytes (zero-padded for short pages). Two pages that
/// collide on the 64-bit hash *and* agree on length, head and tail are not a
/// realistic accident — and verifying costs a 24-byte compare, not a rehash.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Fingerprint {
    len: u64,
    head: [u8; 8],
    tail: [u8; 8],
}

impl Fingerprint {
    /// Fingerprints a page body.
    pub fn of(bytes: &[u8]) -> Self {
        let mut head = [0u8; 8];
        let mut tail = [0u8; 8];
        let h = bytes.len().min(8);
        head[..h].copy_from_slice(&bytes[..h]);
        let t = bytes.len().saturating_sub(8);
        tail[..bytes.len() - t].copy_from_slice(&bytes[t..]);
        Fingerprint { len: bytes.len() as u64, head, tail }
    }
}

const NIL: usize = usize::MAX;

struct Slot<V> {
    key: u64,
    fp: Fingerprint,
    value: V,
    prev: usize,
    next: usize,
}

/// A doubly-linked-list LRU over a slab of slots: `get` and `insert` are
/// O(1), eviction removes the least-recently-used entry.
pub struct LruCache<V> {
    capacity: usize,
    map: HashMap<u64, usize>,
    slots: Vec<Slot<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries. A capacity of 0
    /// disables caching: every `get` misses and `insert` is a no-op.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 16)),
            slots: Vec::with_capacity(capacity.min(1 << 16)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key`, marking the entry most-recently-used on a hit. The
    /// caller passes the [`Fingerprint`] of the page it is asking about; a
    /// stored entry whose fingerprint disagrees is a hash collision — the
    /// lookup reports a miss (and bumps `serve.cache.collision`) instead of
    /// serving another page's brief with a 200.
    pub fn get(&mut self, key: u64, fp: Fingerprint) -> Option<&V> {
        let &idx = self.map.get(&key)?;
        if self.slots[idx].fp != fp {
            wb_obs::counter!("serve.cache.collision");
            return None;
        }
        self.unlink(idx);
        self.push_front(idx);
        Some(&self.slots[idx].value)
    }

    /// Inserts or refreshes `key`, evicting the least-recently-used entry
    /// when at capacity. A re-insert under a colliding key overwrites the
    /// old entry — the fingerprint stored is always the latest page's.
    pub fn insert(&mut self, key: u64, fp: Fingerprint, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            self.slots[idx].fp = fp;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            self.map.remove(&self.slots[lru].key);
            self.free.push(lru);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Slot { key, fp, value, prev: NIL, next: NIL };
                i
            }
            None => {
                self.slots.push(Slot { key, fp, value, prev: NIL, next: NIL });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In the tests below, small integer keys stand in for page hashes; this
    /// derives a matching fingerprint so hit/miss behaviour is driven purely
    /// by the LRU logic under test.
    fn fp(key: u64) -> Fingerprint {
        Fingerprint::of(&key.to_le_bytes())
    }

    /// Keys from most- to least-recently-used, by walking the list.
    fn order<V>(c: &LruCache<V>) -> Vec<u64> {
        let mut out = Vec::new();
        let mut idx = c.head;
        while idx != NIL {
            out.push(c.slots[idx].key);
            idx = c.slots[idx].next;
        }
        out
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, fp(1), "a");
        c.insert(2, fp(2), "b");
        c.insert(3, fp(3), "c"); // evicts 1
        assert_eq!(c.get(1, fp(1)), None);
        assert_eq!(c.get(2, fp(2)), Some(&"b"));
        assert_eq!(c.get(3, fp(3)), Some(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn get_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, fp(1), "a");
        c.insert(2, fp(2), "b");
        assert!(c.get(1, fp(1)).is_some()); // 1 is now MRU
        c.insert(3, fp(3), "c"); // evicts 2, not 1
        assert_eq!(c.get(2, fp(2)), None);
        assert_eq!(c.get(1, fp(1)), Some(&"a"));
        assert_eq!(order(&c), vec![1, 3]);
    }

    #[test]
    fn insert_updates_existing_without_eviction() {
        let mut c = LruCache::new(2);
        c.insert(1, fp(1), "a");
        c.insert(2, fp(2), "b");
        c.insert(1, fp(1), "a2");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1, fp(1)), Some(&"a2"));
        assert_eq!(c.get(2, fp(2)), Some(&"b"));
    }

    #[test]
    fn capacity_one_and_zero() {
        let mut c = LruCache::new(1);
        c.insert(1, fp(1), "a");
        c.insert(2, fp(2), "b");
        assert_eq!(c.get(1, fp(1)), None);
        assert_eq!(c.get(2, fp(2)), Some(&"b"));

        let mut off: LruCache<&str> = LruCache::new(0);
        off.insert(1, fp(1), "a");
        assert!(off.is_empty());
        assert_eq!(off.get(1, fp(1)), None);
    }

    #[test]
    fn slab_reuse_keeps_list_consistent() {
        let mut c = LruCache::new(3);
        for k in 0..50u64 {
            c.insert(k, fp(k), k * 10);
            if k >= 2 {
                // Touch an older key so evictions interleave with refreshes.
                let _ = c.get(k - 1, fp(k - 1));
            }
        }
        assert_eq!(c.len(), 3);
        let keys = order(&c);
        assert_eq!(keys.len(), 3);
        for k in keys {
            assert_eq!(c.get(k, fp(k)), Some(&(k * 10)));
        }
        assert!(c.slots.len() <= 3, "slab must not grow past capacity");
    }

    #[test]
    fn fnv1a_is_stable_and_content_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"page"), fnv1a(b"page"));
        assert_ne!(fnv1a(b"page"), fnv1a(b"Page"));
    }

    #[test]
    fn fingerprint_covers_length_head_and_tail() {
        assert_eq!(Fingerprint::of(b"page"), Fingerprint::of(b"page"));
        assert_ne!(Fingerprint::of(b"page"), Fingerprint::of(b"page "));
        // Differ only in the tail / only in the head / only in the middle
        // length — all must be distinguished.
        assert_ne!(
            Fingerprint::of(b"0123456789abcdef!"),
            Fingerprint::of(b"0123456789abcdef?")
        );
        assert_ne!(
            Fingerprint::of(b"!0123456789abcdef"),
            Fingerprint::of(b"?0123456789abcdef")
        );
        assert_ne!(Fingerprint::of(b"ab"), Fingerprint::of(b"aXb"));
        // Short inputs (< 8 bytes) are zero-padded, not out-of-bounds.
        assert_eq!(Fingerprint::of(b""), Fingerprint::of(b""));
    }

    #[test]
    fn forced_collision_is_a_miss_not_a_wrong_page_hit() {
        // Two different pages forced onto the SAME 64-bit key — exactly what
        // an FNV-1a collision looks like to the cache. Before fingerprinting,
        // the second page's lookup returned the first page's brief.
        let page_a = b"<html>alpha page</html>";
        let page_b = b"<html>bravo page</html>";
        let key = 0xdead_beef_u64;
        let mut c = LruCache::new(4);
        c.insert(key, Fingerprint::of(page_a), "brief for alpha");

        // The colliding page must MISS, not be served alpha's brief.
        assert_eq!(c.get(key, Fingerprint::of(page_b)), None);
        // The real page still hits.
        assert_eq!(c.get(key, Fingerprint::of(page_a)), Some(&"brief for alpha"));

        // After the miss the server recomputes and re-inserts under the same
        // key; the slot now answers for bravo and alpha becomes the miss.
        c.insert(key, Fingerprint::of(page_b), "brief for bravo");
        assert_eq!(c.get(key, Fingerprint::of(page_b)), Some(&"brief for bravo"));
        assert_eq!(c.get(key, Fingerprint::of(page_a)), None);
    }
}
