//! Model replicas: N independent serving lanes over one shared model.
//!
//! Each replica owns its own [`Batcher`] (drained by a dedicated executor
//! thread), its own LRU response cache and its own circuit breaker; the
//! model weights themselves are shared read-only (`brief_corpus` takes
//! `&self` and is pure), so replicas cost threads and cache memory, not
//! model copies. Requests are routed by a consistent-hash ring over the
//! page-content hash: the same page always lands on the same replica, so
//! each per-replica cache stays hot on its shard of the page population
//! instead of every cache holding a diluted copy of everything, and one
//! replica's model panics trip only its own breaker.
//!
//! The ring uses virtual nodes (64 per replica) so the key space splits
//! evenly; routing is a binary search over the sorted point list.

use std::sync::{Arc, Mutex};

use crate::batch::Batcher;
use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::cache::{fnv1a, LruCache};

/// Virtual-node count per replica; 64 keeps the largest shard within a
/// few percent of the smallest for any replica count this server runs.
const VNODES: usize = 64;

/// One serving lane: batcher + cache + breaker.
pub struct Replica {
    /// Position in the set (used for per-replica metric names).
    pub index: usize,
    /// This replica's job queue, drained by its own executor thread.
    pub batcher: Batcher,
    /// This replica's response cache (keys consistent-hashed here).
    pub cache: Mutex<LruCache<Arc<String>>>,
    /// This replica's circuit breaker.
    pub breaker: CircuitBreaker,
    /// `serve.replica.{index}.requests` — resolved once here because the
    /// `wb_obs::counter!` macro caches its handle per call site, which
    /// would alias every replica to whichever name registered first.
    requests: Arc<wb_obs::metrics::Counter>,
}

impl Replica {
    /// Counts a routed request against this replica.
    pub fn count_request(&self) {
        if wb_obs::enabled() {
            self.requests.add(1);
        }
    }
}

/// The full replica set plus its consistent-hash ring.
pub struct ReplicaSet {
    replicas: Vec<Replica>,
    /// `(point, replica_index)` sorted by point; keys route to the first
    /// point clockwise (binary search, wrapping past the last point).
    ring: Vec<(u64, usize)>,
}

impl ReplicaSet {
    /// Builds `n` replicas (at least 1), each with its own
    /// `cache_capacity`-entry cache and a breaker tuned by `breaker_cfg`.
    pub fn new(n: usize, cache_capacity: usize, breaker_cfg: BreakerConfig) -> ReplicaSet {
        let n = n.max(1);
        let replicas = (0..n)
            .map(|index| Replica {
                index,
                batcher: Batcher::new(),
                cache: Mutex::new(LruCache::new(cache_capacity)),
                breaker: CircuitBreaker::new(breaker_cfg),
                requests: wb_obs::metrics::registry()
                    .counter(&format!("serve.replica.{index}.requests")),
            })
            .collect();
        let mut ring: Vec<(u64, usize)> = (0..n)
            .flat_map(|index| {
                (0..VNODES).map(move |v| {
                    let point = fnv1a(format!("replica-{index}-vnode-{v}").as_bytes());
                    (point, index)
                })
            })
            .collect();
        ring.sort_unstable();
        ReplicaSet { replicas, ring }
    }

    /// Number of replicas (≥ 1).
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Always false — the set never constructs empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All replicas, in index order.
    pub fn all(&self) -> &[Replica] {
        &self.replicas
    }

    /// The replica owning `key` (a page-content hash) on the ring.
    pub fn route(&self, key: u64) -> &Replica {
        let i = self.ring.partition_point(|&(point, _)| point < key);
        let (_, index) = self.ring[if i == self.ring.len() { 0 } else { i }];
        &self.replicas[index]
    }

    /// Closes every batcher (pending jobs still run; executors exit once
    /// drained).
    pub fn close_all(&self) {
        for r in &self.replicas {
            r.batcher.close();
        }
    }

    /// Total cached responses across replicas (for `/varz`).
    pub fn cache_len(&self) -> usize {
        self.replicas.iter().map(|r| r.cache.lock().unwrap().len()).sum()
    }

    /// Worst breaker state across replicas (`open` > `half-open` >
    /// `closed`) — the one-word answer to "is the model healthy".
    pub fn breaker_summary(&self) -> &'static str {
        let mut summary = "closed";
        for r in &self.replicas {
            match r.breaker.state_name() {
                "open" => return "open",
                "half-open" => summary = "half-open",
                _ => {}
            }
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(n: usize) -> ReplicaSet {
        ReplicaSet::new(n, 8, BreakerConfig { threshold: 0, ..BreakerConfig::default() })
    }

    #[test]
    fn routing_is_deterministic_and_stable() {
        let a = set(4);
        let b = set(4);
        for key in (0..10_000u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15)) {
            assert_eq!(a.route(key).index, b.route(key).index, "key {key}");
        }
    }

    #[test]
    fn ring_spreads_keys_roughly_evenly() {
        let s = set(4);
        let mut counts = [0usize; 4];
        for key in (0..40_000u64).map(|i| fnv1a(&i.to_le_bytes())) {
            counts[s.route(key).index] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (4_000..=20_000).contains(&c),
                "replica {i} owns {c} of 40000 keys — ring is badly skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn adding_a_replica_moves_only_a_fraction_of_keys() {
        let before = set(3);
        let after = set(4);
        let keys: Vec<u64> = (0..20_000u64).map(|i| fnv1a(&i.to_le_bytes())).collect();
        let moved = keys
            .iter()
            .filter(|&&k| {
                let b = before.route(k).index;
                let a = after.route(k).index;
                b != a
            })
            .count();
        // Consistent hashing: ~1/4 of keys move to the new replica; naive
        // modulo hashing would reshuffle ~3/4. Allow generous slack.
        assert!(
            moved < keys.len() / 2,
            "{moved} of {} keys moved when adding one replica",
            keys.len()
        );
    }

    #[test]
    fn single_replica_owns_everything() {
        let s = set(1);
        for key in [0u64, 1, u64::MAX, 0xdead_beef] {
            assert_eq!(s.route(key).index, 0);
        }
    }

    #[test]
    fn breaker_summary_reports_worst_state() {
        let s = ReplicaSet::new(
            2,
            0,
            BreakerConfig {
                threshold: 1,
                window: std::time::Duration::from_secs(30),
                cooldown: std::time::Duration::from_secs(60),
            },
        );
        assert_eq!(s.breaker_summary(), "closed");
        s.all()[1].breaker.record_failure();
        assert_eq!(s.breaker_summary(), "open");
    }
}
