//! Minimal HTTP/1.1 request parsing and response rendering — hand-rolled
//! like the vendor stand-ins (the build environment has no registry
//! access), covering exactly the subset the briefing server speaks:
//! `Content-Length` bodies, keep-alive and pipelined connections.
//!
//! The core is [`RequestParser`], an incremental state machine the event
//! loop drives over a persistent per-connection read buffer: feed it the
//! buffer after every read, get back [`Parsed::NeedMore`] or a complete
//! request plus the exact number of bytes it consumed. Bytes beyond
//! `consumed` stay in the connection buffer — that is what makes
//! pipelined requests servable instead of silently discarded. Framing
//! errors are terminal: the caller answers 400-class and closes, never
//! resynchronizes (resyncing on a smuggling-shaped request is how
//! request-smuggling attacks work).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request line + headers, generous for any real client.
const MAX_HEAD_BYTES: usize = 32 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), upper-case as sent.
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Raw query string after the `?` (empty when the target has none).
    pub query: String,
    /// Header `(name, value)` pairs, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when the request carries none).
    pub body: Vec<u8>,
    /// Whether the request line declared `HTTP/1.1` (vs `HTTP/1.0`).
    pub http11: bool,
}

impl Request {
    /// The value of the first header named `name` (give it lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The value of query parameter `key` (`?key=value&…`), undecoded.
    /// A bare `?key` yields an empty string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }

    /// HTTP/1.1 keep-alive semantics: 1.1 persists unless the client says
    /// `Connection: close`; 1.0 closes unless it says
    /// `Connection: keep-alive`. The header is a comma-separated token
    /// list and `close` wins over anything else in it.
    pub fn wants_keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) => {
                let mut keep = None;
                for token in v.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        return false;
                    }
                    if token.eq_ignore_ascii_case("keep-alive") {
                        keep = Some(true);
                    }
                }
                keep.unwrap_or(self.http11)
            }
            None => self.http11,
        }
    }
}

/// A request that could not be read; each variant maps to one status code.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The socket timed out before a full request arrived → 408.
    Timeout,
    /// The declared `Content-Length` exceeds the configured limit → 413.
    BodyTooLarge {
        /// The declared body size.
        declared: usize,
        /// The configured limit it exceeded.
        limit: usize,
    },
    /// The head exceeded [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// `Transfer-Encoding: chunked` (or any transfer coding) → 501.
    UnsupportedTransferEncoding,
    /// Anything else malformed (bad request line, bad `Content-Length`,
    /// early EOF) → 400.
    Malformed(String),
    /// The client connected and closed without sending a byte; no response
    /// is owed (health probes from load balancers do this).
    Empty,
}

impl HttpError {
    /// The HTTP status code this error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Timeout => 408,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::HeadTooLarge => 431,
            HttpError::UnsupportedTransferEncoding => 501,
            HttpError::Malformed(_) => 400,
            HttpError::Empty => 0,
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::Timeout => "timed out reading the request".to_string(),
            HttpError::BodyTooLarge { declared, limit } => {
                format!("request body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::HeadTooLarge => {
                format!("request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::UnsupportedTransferEncoding => {
                "transfer codings are not supported; send a Content-Length body".to_string()
            }
            HttpError::Malformed(m) => m.clone(),
            HttpError::Empty => "empty request".to_string(),
        }
    }
}

/// Result of one [`RequestParser::step`] over the connection buffer.
#[derive(Debug)]
pub enum Parsed {
    /// The buffer does not yet hold a complete request; read more.
    NeedMore,
    /// A complete request. Exactly `consumed` bytes of the buffer belong
    /// to it; the caller must drain them (bytes beyond `consumed` are the
    /// start of the next pipelined request) before stepping again.
    Request {
        /// The parsed request.
        req: Request,
        /// How many buffer bytes the request occupied (head + body).
        consumed: usize,
    },
}

/// The head fields, parsed once when the blank line arrives and cached so
/// body-trickle steps do not re-parse headers.
struct ParsedHead {
    method: String,
    path: String,
    query: String,
    headers: Vec<(String, String)>,
    content_length: usize,
    http11: bool,
}

/// Incremental request parser over an externally owned read buffer.
///
/// Stateless about I/O: the caller appends whatever bytes arrive and calls
/// [`step`](Self::step). The parser remembers how far it has scanned for
/// the head terminator (so trickled heads cost O(n), not O(n²) — each byte
/// is scanned once) and caches the parsed head while the body fills in.
/// After a completed request it resets itself for the next one.
pub struct RequestParser {
    /// Next unscanned offset in the head-terminator search; rewound 3
    /// bytes per step so a `\r\n\r\n` split across reads is still found.
    scan_from: usize,
    /// Byte offset of `\r\n\r\n` once found.
    head_end: Option<usize>,
    head: Option<ParsedHead>,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// A parser positioned at the start of a request.
    pub fn new() -> Self {
        RequestParser { scan_from: 0, head_end: None, head: None }
    }

    /// Forgets all progress (used when the caller discards the buffer).
    pub fn reset(&mut self) {
        *self = RequestParser::new();
    }

    /// Whether the head has been fully received and parsed (the request
    /// is mid-body). Lets callers distinguish "closed mid-request" from
    /// "closed mid-body" on EOF.
    pub fn head_complete(&self) -> bool {
        self.head_end.is_some()
    }

    /// Whether any bytes of the current request have been examined.
    pub fn started(&self) -> bool {
        self.scan_from > 0 || self.head_end.is_some()
    }

    /// Advances over `buf` (the connection's accumulated unconsumed
    /// bytes). Errors are terminal: answer with `err.status()` and close.
    /// On `Parsed::Request` the parser has already reset itself; drain
    /// `consumed` bytes from the buffer before the next step.
    pub fn step(&mut self, buf: &[u8], max_body_bytes: usize) -> Result<Parsed, HttpError> {
        let head_end = match self.head_end {
            Some(h) => h,
            None => {
                let start = self.scan_from.min(buf.len());
                match buf[start..].windows(4).position(|w| w == b"\r\n\r\n") {
                    Some(pos) => {
                        let h = start + pos;
                        self.head_end = Some(h);
                        h
                    }
                    None => {
                        // Resume next step just before the tail, in case
                        // the terminator straddles this read boundary.
                        self.scan_from = buf.len().saturating_sub(3);
                        if buf.len() > MAX_HEAD_BYTES {
                            return Err(HttpError::HeadTooLarge);
                        }
                        return Ok(Parsed::NeedMore);
                    }
                }
            }
        };
        if self.head.is_none() {
            self.head = Some(parse_head(&buf[..head_end])?);
        }
        let head = self.head.as_ref().expect("head cached above");
        if head.content_length > max_body_bytes {
            return Err(HttpError::BodyTooLarge {
                declared: head.content_length,
                limit: max_body_bytes,
            });
        }
        let total = head_end + 4 + head.content_length;
        if buf.len() < total {
            return Ok(Parsed::NeedMore);
        }
        let head = self.head.take().expect("head cached above");
        let req = Request {
            method: head.method,
            path: head.path,
            query: head.query,
            headers: head.headers,
            body: buf[head_end + 4..total].to_vec(),
            http11: head.http11,
        };
        self.reset();
        Ok(Parsed::Request { req, consumed: total })
    }
}

/// Strict `Content-Length` syntax: one or more ASCII digits, nothing else.
/// `str::parse::<usize>` alone would accept `+5` — a classic smuggling
/// vector, since intermediaries disagree on what it means.
fn parse_content_length(value: &str) -> Result<usize, HttpError> {
    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
        return Err(HttpError::Malformed(format!("bad Content-Length `{value}`")));
    }
    value
        .parse()
        .map_err(|_| HttpError::Malformed(format!("Content-Length `{value}` overflows")))
}

fn parse_head(head: &[u8]) -> Result<ParsedHead, HttpError> {
    let head = String::from_utf8_lossy(head);
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => return Err(HttpError::Malformed(format!("bad request line `{request_line}`"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported protocol `{version}`")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length: Option<usize> = None;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        // A header line without a colon is not a header; skipping it
        // (the old behavior) means client and server disagree about what
        // was sent — reject the request instead.
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("header line without a colon `{line}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "transfer-encoding" && !value.eq_ignore_ascii_case("identity") {
            return Err(HttpError::UnsupportedTransferEncoding);
        }
        if name == "content-length" {
            let parsed = parse_content_length(value)?;
            match content_length {
                // Duplicate headers that agree are harmless repetition;
                // ones that disagree are a framing attack.
                Some(prev) if prev != parsed => {
                    return Err(HttpError::Malformed(format!(
                        "conflicting Content-Length headers ({prev} vs {parsed})"
                    )));
                }
                _ => content_length = Some(parsed),
            }
        }
        headers.push((name, value.to_string()));
    }
    Ok(ParsedHead {
        method: method.to_string(),
        path,
        query,
        headers,
        content_length: content_length.unwrap_or(0),
        http11: version == "HTTP/1.1",
    })
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Re-arms the socket's read timeout to whatever is left until `deadline`.
///
/// This is what defeats slow-loris clients: a per-read timeout alone lets a
/// client hold a worker forever by trickling one byte per interval, since
/// every read "makes progress". Shrinking the timeout to the *remaining*
/// total budget before each read bounds the whole request, no matter how
/// the bytes are paced.
fn arm_read(stream: &TcpStream, deadline: Instant) -> Result<(), HttpError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(HttpError::Timeout);
    }
    stream
        .set_read_timeout(Some(remaining))
        .map_err(|e| HttpError::Malformed(format!("cannot set read timeout: {e}")))
}

/// Reads and parses one request from `stream`, spending at most
/// `total_timeout` across *all* reads (head and body together); timeouts
/// surface as [`HttpError::Timeout`]. Bodies larger than `max_body_bytes`
/// are rejected from the `Content-Length` header alone, before the body
/// is waited for.
///
/// This is the blocking convenience wrapper over [`RequestParser`] for
/// tools and tests; the server's event loop drives the parser directly so
/// pipelined bytes survive in the connection buffer. Here any bytes after
/// the first request are dropped with the stream.
pub fn read_request(
    stream: &mut TcpStream,
    max_body_bytes: usize,
    total_timeout: Duration,
) -> Result<Request, HttpError> {
    let deadline = Instant::now() + total_timeout;
    let mut parser = RequestParser::new();
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut scratch = [0u8; 4096];
    loop {
        match parser.step(&buf, max_body_bytes)? {
            Parsed::Request { req, .. } => return Ok(req),
            Parsed::NeedMore => {}
        }
        arm_read(stream, deadline)?;
        match stream.read(&mut scratch) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(HttpError::Empty);
                }
                let at = if parser.head_complete() { "mid-body" } else { "mid-request" };
                return Err(HttpError::Malformed(format!("connection closed {at}")));
            }
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Malformed(format!("read failed: {e}"))),
        }
    }
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Renders a complete response into bytes. `keep_alive` controls the
/// `Connection:` header; the body always carries an exact
/// `Content-Length` so clients can frame it either way.
pub fn render_response(
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
    keep_alive: bool,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        reason(status),
        body.len()
    )
    .into_bytes();
    for (name, value) in extra_headers {
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(value.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// Writes a complete `Connection: close` response. Write failures are
/// returned so callers can count them, but the connection is torn down
/// either way.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    stream.write_all(&render_response(status, content_type, body, extra_headers, false))?;
    stream.flush()
}

/// Reads and discards up to `limit` pending request bytes with a short
/// timeout. Early-reject paths (413, 400, the acceptor's 503) answer
/// without consuming the request; closing a socket with unread data makes
/// the kernel send RST, which can destroy the client's copy of the
/// response before it is read. A bounded drain turns the close into a
/// clean FIN for any well-behaved client while still capping the bytes a
/// hostile one can make us read.
pub fn drain(stream: &mut TcpStream, limit: usize) {
    let mut scratch = [0u8; 4096];
    let mut total = 0usize;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(250)));
    while total < limit {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => total += n,
        }
    }
}

/// Builds the `{"error": …}` JSON body used by every non-200 response.
pub fn error_body(detail: &str) -> Vec<u8> {
    let mut out = String::with_capacity(detail.len() + 16);
    out.push_str("{\"error\":\"");
    for c in detail.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push_str("\"}");
    out.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// Runs `read_request` against raw bytes sent over a real socket pair.
    fn parse_raw(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        drop(client); // EOF after the payload
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side, max_body, Duration::from_millis(2000))
    }

    /// Steps the incremental parser over `raw` split into `chunk`-byte
    /// pieces, collecting every completed request.
    fn parse_chunked(raw: &[u8], chunk: usize, max_body: usize) -> Vec<Request> {
        let mut parser = RequestParser::new();
        let mut buf: Vec<u8> = Vec::new();
        let mut out = Vec::new();
        for piece in raw.chunks(chunk.max(1)) {
            buf.extend_from_slice(piece);
            loop {
                match parser.step(&buf, max_body).expect("framing") {
                    Parsed::NeedMore => break,
                    Parsed::Request { req, consumed } => {
                        buf.drain(..consumed);
                        out.push(req);
                    }
                }
            }
        }
        assert!(buf.is_empty(), "unconsumed trailing bytes: {buf:?}");
        out
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse_raw(
            b"POST /brief?x=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\nhello",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/brief");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("y"), None);
        assert_eq!(req.body, b"hello");
        assert!(req.http11);
    }

    #[test]
    fn query_params_parse_pairs_and_bare_keys() {
        let req =
            parse_raw(b"GET /metrics?format=prometheus&raw HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query_param("format"), Some("prometheus"));
        assert_eq!(req.query_param("raw"), Some(""));
        let req = parse_raw(b"GET /metrics HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.query, "");
        assert_eq!(req.query_param("format"), None);
    }

    #[test]
    fn headers_are_kept_lowercased_and_trimmed() {
        let req = parse_raw(
            b"POST /brief HTTP/1.1\r\nX-Deadline-Ms:  250 \r\nContent-Length: 0\r\n\r\n",
            1024,
        )
        .unwrap();
        assert_eq!(req.header("x-deadline-ms"), Some("250"));
        assert_eq!(req.header("content-length"), Some("0"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_raw(b"GET /healthz HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_body_from_header_alone() {
        let err = parse_raw(b"POST /brief HTTP/1.1\r\nContent-Length: 99999\r\n\r\n", 1024)
            .unwrap_err();
        assert_eq!(err.status(), 413);
        assert!(err.detail().contains("99999"), "{}", err.detail());
    }

    #[test]
    fn rejects_chunked_transfer_encoding() {
        let err =
            parse_raw(b"POST /brief HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 1024)
                .unwrap_err();
        assert_eq!(err, HttpError::UnsupportedTransferEncoding);
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn rejects_garbage_and_bad_content_length() {
        assert_eq!(parse_raw(b"NONSENSE\r\n\r\n", 1024).unwrap_err().status(), 400);
        let err =
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 1024).unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn rejects_signed_and_decorated_content_length() {
        // `str::parse::<usize>` accepts a leading `+`; the framing layer
        // must not (smuggling vector: intermediaries disagree on `+5`).
        for bad in ["+5", "-5", " 5 x", "5 5", "0x5", "5.0", ""] {
            let raw = format!("POST /brief HTTP/1.1\r\nContent-Length: {bad}\r\n\r\nhello");
            let err = parse_raw(raw.as_bytes(), 1024).unwrap_err();
            assert_eq!(err.status(), 400, "Content-Length `{bad}` must be rejected");
        }
        // Plain digits with leading zeros are fine (still unambiguous).
        let req = parse_raw(b"POST /brief HTTP/1.1\r\nContent-Length: 05\r\n\r\nhello", 1024)
            .unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_conflicting_duplicate_content_length() {
        let err = parse_raw(
            b"POST /brief HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello!",
            1024,
        )
        .unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.detail().contains("conflicting"), "{}", err.detail());
        // Agreeing duplicates are harmless repetition.
        let req = parse_raw(
            b"POST /brief HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello",
            1024,
        )
        .unwrap();
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_header_line_without_colon() {
        let err = parse_raw(
            b"GET /healthz HTTP/1.1\r\nHost: a\r\nthis-is-not-a-header\r\n\r\n",
            1024,
        )
        .unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.detail().contains("colon"), "{}", err.detail());
    }

    #[test]
    fn truncated_body_is_malformed_not_a_hang() {
        let err = parse_raw(b"POST /brief HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi", 1024)
            .unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.detail().contains("mid-body"));
    }

    #[test]
    fn incremental_parser_handles_any_split() {
        // Two pipelined requests, fed at every chunk size from 1 byte up:
        // the parser must produce both, with identical content, at every
        // split — including splits inside `\r\n\r\n` and inside the body.
        let raw = b"POST /brief HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /healthz?q=1 HTTP/1.1\r\nHost: t\r\n\r\n";
        for chunk in 1..=raw.len() {
            let reqs = parse_chunked(raw, chunk, 1024);
            assert_eq!(reqs.len(), 2, "chunk={chunk}");
            assert_eq!(reqs[0].method, "POST", "chunk={chunk}");
            assert_eq!(reqs[0].body, b"hello", "chunk={chunk}");
            assert_eq!(reqs[1].method, "GET", "chunk={chunk}");
            assert_eq!(reqs[1].path, "/healthz", "chunk={chunk}");
            assert!(reqs[1].body.is_empty(), "chunk={chunk}");
        }
    }

    #[test]
    fn pipelined_bytes_are_preserved_not_discarded() {
        let raw = b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        let mut parser = RequestParser::new();
        let mut buf = raw.to_vec();
        let Parsed::Request { req, consumed } = parser.step(&buf, 1024).unwrap() else {
            panic!("first request must parse");
        };
        assert_eq!(req.path, "/a");
        buf.drain(..consumed);
        assert_eq!(buf, b"GET /b HTTP/1.1\r\n\r\n", "second request must survive");
        let Parsed::Request { req, consumed } = parser.step(&buf, 1024).unwrap() else {
            panic!("second request must parse");
        };
        assert_eq!(req.path, "/b");
        assert_eq!(consumed, buf.len());
    }

    #[test]
    fn head_scan_resumes_instead_of_rescanning() {
        // Feed a long header value one byte at a time; scan_from must
        // track the tail (minus the 3-byte overlap), proving each byte is
        // examined a bounded number of times rather than once per read.
        let mut parser = RequestParser::new();
        let raw = b"GET / HTTP/1.1\r\nX-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n\r\n";
        let mut buf = Vec::new();
        for (i, b) in raw.iter().enumerate() {
            buf.push(*b);
            let step = parser.step(&buf, 1024).unwrap();
            if i + 1 < raw.len() {
                assert!(matches!(step, Parsed::NeedMore));
                assert_eq!(parser.scan_from, buf.len().saturating_sub(3));
            } else {
                assert!(matches!(step, Parsed::Request { .. }));
            }
        }
    }

    #[test]
    fn keep_alive_semantics_follow_version_and_connection_header() {
        let req = |extra: &str, v: &str| {
            let raw = format!("GET / {v}\r\nHost: a\r\n{extra}\r\n");
            let mut parser = RequestParser::new();
            match parser.step(raw.as_bytes(), 1024).unwrap() {
                Parsed::Request { req, .. } => req,
                Parsed::NeedMore => panic!("complete request expected"),
            }
        };
        assert!(req("", "HTTP/1.1").wants_keep_alive(), "1.1 defaults to keep-alive");
        assert!(!req("Connection: close\r\n", "HTTP/1.1").wants_keep_alive());
        assert!(!req("Connection: Close\r\n", "HTTP/1.1").wants_keep_alive());
        assert!(!req("", "HTTP/1.0").wants_keep_alive(), "1.0 defaults to close");
        assert!(req("Connection: keep-alive\r\n", "HTTP/1.0").wants_keep_alive());
        assert!(
            !req("Connection: keep-alive, close\r\n", "HTTP/1.1").wants_keep_alive(),
            "close wins over other tokens"
        );
    }

    #[test]
    fn slow_client_times_out_with_408() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        // Send only a partial head, then stall (keep the socket open).
        client.write_all(b"POST /brief HTTP/1.1\r\nContent-").unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        let err = read_request(&mut server_side, 1024, Duration::from_millis(50)).unwrap_err();
        assert_eq!(err, HttpError::Timeout);
        assert_eq!(err.status(), 408);
        drop(client);
    }

    #[test]
    fn slow_loris_client_cannot_outlive_the_total_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        // Trickle one header byte every 10ms: every individual read makes
        // progress, so only a *total* deadline can end this request.
        let dripper = std::thread::spawn(move || {
            let mut client = client;
            for b in b"POST /brief HTTP/1.1\r\nX-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa" {
                if client.write_all(&[*b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let start = std::time::Instant::now();
        let err = read_request(&mut server_side, 1024, Duration::from_millis(150)).unwrap_err();
        assert_eq!(err, HttpError::Timeout, "trickled bytes must still hit the deadline");
        assert!(
            start.elapsed() < Duration::from_millis(600),
            "total deadline must end the request promptly, took {:?}",
            start.elapsed()
        );
        drop(server_side);
        dripper.join().unwrap();
    }

    #[test]
    fn empty_connection_owes_no_response() {
        let err = parse_raw(b"", 1024).unwrap_err();
        assert_eq!(err, HttpError::Empty);
    }

    #[test]
    fn respond_writes_well_formed_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        respond(&mut server_side, 503, "application/json", b"{}", &[("Retry-After", "1")])
            .unwrap();
        drop(server_side);
        let mut text = String::new();
        let mut client = client;
        client.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn render_response_marks_keep_alive() {
        let bytes = render_response(200, "application/json", b"{}", &[], true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
    }

    #[test]
    fn error_body_escapes_json() {
        let b = String::from_utf8(error_body("a \"quoted\"\npath\\x")).unwrap();
        assert_eq!(b, "{\"error\":\"a \\\"quoted\\\"\\npath\\\\x\"}");
        let v: serde_json::Value = serde_json::from_str(&b).unwrap();
        assert!(v.get("error").is_some());
    }
}
