//! Minimal HTTP/1.1 request parsing and response writing over a
//! [`TcpStream`] — hand-rolled like the vendor stand-ins (the build
//! environment has no registry access), covering exactly the subset the
//! briefing server speaks: one request per connection, `Content-Length`
//! bodies, `Connection: close` responses.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request line + headers, generous for any real client.
const MAX_HEAD_BYTES: usize = 32 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), upper-case as sent.
    pub method: String,
    /// Request path without query string.
    pub path: String,
    /// Raw query string after the `?` (empty when the target has none).
    pub query: String,
    /// Header `(name, value)` pairs, names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when the request carries none).
    pub body: Vec<u8>,
}

impl Request {
    /// The value of the first header named `name` (give it lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }

    /// The value of query parameter `key` (`?key=value&…`), undecoded.
    /// A bare `?key` yields an empty string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// A request that could not be read; each variant maps to one status code.
#[derive(Debug, PartialEq, Eq)]
pub enum HttpError {
    /// The socket timed out before a full request arrived → 408.
    Timeout,
    /// The declared `Content-Length` exceeds the configured limit → 413.
    BodyTooLarge {
        /// The declared body size.
        declared: usize,
        /// The configured limit it exceeded.
        limit: usize,
    },
    /// The head exceeded [`MAX_HEAD_BYTES`] → 431.
    HeadTooLarge,
    /// `Transfer-Encoding: chunked` (or any transfer coding) → 501.
    UnsupportedTransferEncoding,
    /// Anything else malformed (bad request line, bad `Content-Length`,
    /// early EOF) → 400.
    Malformed(String),
    /// The client connected and closed without sending a byte; no response
    /// is owed (health probes from load balancers do this).
    Empty,
}

impl HttpError {
    /// The HTTP status code this error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::Timeout => 408,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::HeadTooLarge => 431,
            HttpError::UnsupportedTransferEncoding => 501,
            HttpError::Malformed(_) => 400,
            HttpError::Empty => 0,
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> String {
        match self {
            HttpError::Timeout => "timed out reading the request".to_string(),
            HttpError::BodyTooLarge { declared, limit } => {
                format!("request body of {declared} bytes exceeds the {limit}-byte limit")
            }
            HttpError::HeadTooLarge => {
                format!("request head exceeds {MAX_HEAD_BYTES} bytes")
            }
            HttpError::UnsupportedTransferEncoding => {
                "transfer codings are not supported; send a Content-Length body".to_string()
            }
            HttpError::Malformed(m) => m.clone(),
            HttpError::Empty => "empty request".to_string(),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

/// Re-arms the socket's read timeout to whatever is left until `deadline`.
///
/// This is what defeats slow-loris clients: a per-read timeout alone lets a
/// client hold a worker forever by trickling one byte per interval, since
/// every read "makes progress". Shrinking the timeout to the *remaining*
/// total budget before each read bounds the whole request, no matter how
/// the bytes are paced.
fn arm_read(stream: &TcpStream, deadline: Instant) -> Result<(), HttpError> {
    let remaining = deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(HttpError::Timeout);
    }
    stream
        .set_read_timeout(Some(remaining))
        .map_err(|e| HttpError::Malformed(format!("cannot set read timeout: {e}")))
}

/// Reads and parses one request from `stream`, spending at most
/// `total_timeout` across *all* reads (head and body together); timeouts
/// surface as [`HttpError::Timeout`]. Bodies larger than `max_body_bytes`
/// are rejected from the `Content-Length` header alone, before any body
/// byte is read.
pub fn read_request(
    stream: &mut TcpStream,
    max_body_bytes: usize,
    total_timeout: Duration,
) -> Result<Request, HttpError> {
    let deadline = Instant::now() + total_timeout;
    // Read until the blank line that ends the head.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut scratch = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadTooLarge);
        }
        arm_read(stream, deadline)?;
        match stream.read(&mut scratch) {
            Ok(0) => {
                if buf.is_empty() {
                    return Err(HttpError::Empty);
                }
                return Err(HttpError::Malformed("connection closed mid-request".to_string()));
            }
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Malformed(format!("read failed: {e}"))),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) => (m, t, v),
        _ => return Err(HttpError::Malformed(format!("bad request line `{request_line}`"))),
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported protocol `{version}`")));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut content_length = 0usize;
    let mut headers: Vec<(String, String)> = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "transfer-encoding" && !value.eq_ignore_ascii_case("identity") {
            return Err(HttpError::UnsupportedTransferEncoding);
        }
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| HttpError::Malformed(format!("bad Content-Length `{value}`")))?;
        }
        headers.push((name, value.to_string()));
    }
    if content_length > max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: max_body_bytes,
        });
    }

    let mut body = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        // Pipelined extra bytes are ignored: one request per connection.
        body.truncate(content_length);
    }
    while body.len() < content_length {
        arm_read(stream, deadline)?;
        match stream.read(&mut scratch) {
            Ok(0) => {
                return Err(HttpError::Malformed("connection closed mid-body".to_string()));
            }
            Ok(n) => {
                let take = n.min(content_length - body.len());
                body.extend_from_slice(&scratch[..take]);
            }
            Err(e) if is_timeout(&e) => return Err(HttpError::Timeout),
            Err(e) => return Err(HttpError::Malformed(format!("read failed: {e}"))),
        }
    }
    Ok(Request { method: method.to_string(), path, query, headers, body })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The canonical reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete `Connection: close` response. Write failures are
/// returned so callers can count them, but the connection is torn down
/// either way.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Reads and discards up to `limit` pending request bytes with a short
/// timeout. Early-reject paths (413, 400, the acceptor's 503) answer
/// without consuming the request; closing a socket with unread data makes
/// the kernel send RST, which can destroy the client's copy of the
/// response before it is read. A bounded drain turns the close into a
/// clean FIN for any well-behaved client while still capping the bytes a
/// hostile one can make us read.
pub fn drain(stream: &mut TcpStream, limit: usize) {
    let mut scratch = [0u8; 4096];
    let mut total = 0usize;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(250)));
    while total < limit {
        match stream.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => total += n,
        }
    }
}

/// Builds the `{"error": …}` JSON body used by every non-200 response.
pub fn error_body(detail: &str) -> Vec<u8> {
    let mut out = String::with_capacity(detail.len() + 16);
    out.push_str("{\"error\":\"");
    for c in detail.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push_str("\"}");
    out.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// Runs `read_request` against raw bytes sent over a real socket pair.
    fn parse_raw(raw: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        drop(client); // EOF after the payload
        let (mut server_side, _) = listener.accept().unwrap();
        read_request(&mut server_side, max_body, Duration::from_millis(2000))
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse_raw(
            b"POST /brief?x=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\nhello",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/brief");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.query_param("x"), Some("1"));
        assert_eq!(req.query_param("y"), None);
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn query_params_parse_pairs_and_bare_keys() {
        let req =
            parse_raw(b"GET /metrics?format=prometheus&raw HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query_param("format"), Some("prometheus"));
        assert_eq!(req.query_param("raw"), Some(""));
        let req = parse_raw(b"GET /metrics HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.query, "");
        assert_eq!(req.query_param("format"), None);
    }

    #[test]
    fn headers_are_kept_lowercased_and_trimmed() {
        let req = parse_raw(
            b"POST /brief HTTP/1.1\r\nX-Deadline-Ms:  250 \r\nContent-Length: 0\r\n\r\n",
            1024,
        )
        .unwrap();
        assert_eq!(req.header("x-deadline-ms"), Some("250"));
        assert_eq!(req.header("content-length"), Some("0"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn parses_get_without_body() {
        let req = parse_raw(b"GET /healthz HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_body_from_header_alone() {
        let err = parse_raw(b"POST /brief HTTP/1.1\r\nContent-Length: 99999\r\n\r\n", 1024)
            .unwrap_err();
        assert_eq!(err.status(), 413);
        assert!(err.detail().contains("99999"), "{}", err.detail());
    }

    #[test]
    fn rejects_chunked_transfer_encoding() {
        let err =
            parse_raw(b"POST /brief HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 1024)
                .unwrap_err();
        assert_eq!(err, HttpError::UnsupportedTransferEncoding);
        assert_eq!(err.status(), 501);
    }

    #[test]
    fn rejects_garbage_and_bad_content_length() {
        assert_eq!(parse_raw(b"NONSENSE\r\n\r\n", 1024).unwrap_err().status(), 400);
        let err =
            parse_raw(b"POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 1024).unwrap_err();
        assert_eq!(err.status(), 400);
    }

    #[test]
    fn truncated_body_is_malformed_not_a_hang() {
        let err = parse_raw(b"POST /brief HTTP/1.1\r\nContent-Length: 10\r\n\r\nhi", 1024)
            .unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.detail().contains("mid-body"));
    }

    #[test]
    fn slow_client_times_out_with_408() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        // Send only a partial head, then stall (keep the socket open).
        client.write_all(b"POST /brief HTTP/1.1\r\nContent-").unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        let err = read_request(&mut server_side, 1024, Duration::from_millis(50)).unwrap_err();
        assert_eq!(err, HttpError::Timeout);
        assert_eq!(err.status(), 408);
        drop(client);
    }

    #[test]
    fn slow_loris_client_cannot_outlive_the_total_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        // Trickle one header byte every 10ms: every individual read makes
        // progress, so only a *total* deadline can end this request.
        let dripper = std::thread::spawn(move || {
            let mut client = client;
            for b in b"POST /brief HTTP/1.1\r\nX-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa" {
                if client.write_all(&[*b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        });
        let (mut server_side, _) = listener.accept().unwrap();
        let start = std::time::Instant::now();
        let err = read_request(&mut server_side, 1024, Duration::from_millis(150)).unwrap_err();
        assert_eq!(err, HttpError::Timeout, "trickled bytes must still hit the deadline");
        assert!(
            start.elapsed() < Duration::from_millis(600),
            "total deadline must end the request promptly, took {:?}",
            start.elapsed()
        );
        drop(server_side);
        dripper.join().unwrap();
    }

    #[test]
    fn empty_connection_owes_no_response() {
        let err = parse_raw(b"", 1024).unwrap_err();
        assert_eq!(err, HttpError::Empty);
    }

    #[test]
    fn respond_writes_well_formed_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (mut server_side, _) = listener.accept().unwrap();
        respond(&mut server_side, 503, "application/json", b"{}", &[("Retry-After", "1")])
            .unwrap();
        drop(server_side);
        let mut text = String::new();
        let mut client = client;
        client.read_to_string(&mut text).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn error_body_escapes_json() {
        let b = String::from_utf8(error_body("a \"quoted\"\npath\\x")).unwrap();
        assert_eq!(b, "{\"error\":\"a \\\"quoted\\\"\\npath\\\\x\"}");
        let v: serde_json::Value = serde_json::from_str(&b).unwrap();
        assert!(v.get("error").is_some());
    }
}
