//! The readiness event loop: one thread multiplexing every connection
//! with `poll(2)` ([`crate::sys`]), so concurrent connections are bounded
//! by fd limits instead of worker-thread count.
//!
//! Connection lifecycle is a per-connection state machine over a
//! persistent read buffer:
//!
//! ```text
//!           ┌────────────── keep-alive ───────────────┐
//!           ▼                                         │
//! accept → Reading ──parsed──► Processing ──done──► Writing ──close──► (drain) → closed
//!           │                     (worker)             ▲
//!           └──── inline cache hit ────────────────────┘
//! ```
//!
//! - **Reading**: poll for `POLLIN`, append to the connection buffer,
//!   drive [`RequestParser`] incrementally. Bytes beyond one request stay
//!   in the buffer — pipelined requests are served, not discarded.
//! - **Processing**: the parsed request is in the bounded work queue; the
//!   connection is *not* polled (nothing to do until the worker finishes;
//!   polling it would busy-spin on `POLLHUP` from half-closed clients).
//! - **Writing**: poll for `POLLOUT` until the rendered response is fully
//!   flushed, then either return to Reading (keep-alive) or close.
//! - **Draining**: error responses linger briefly reading-and-discarding
//!   so the close is a clean FIN instead of an RST that could destroy the
//!   client's copy of the error (see [`http::drain`] for the rationale).
//!
//! Cache hits are answered inline on this thread (`try_lock` only — under
//! contention the request falls through to a worker): a hot-cache request
//! costs one read, one hash, one lookup and one write, no cross-thread
//! handoff. That is what lets keep-alive serving run at connection speed.
//!
//! Completions return from workers via a mutex'd vector plus a self-pipe
//! ([`sys::WakePipe`]) that kicks the loop out of `poll`. A generation
//! counter on every connection slot guards against a completion landing
//! on a recycled slot.

use crate::cache::{fnv1a, Fingerprint};
use crate::http::{self, HttpError, Parsed, RequestParser};
use crate::server::{self, Shared};
use crate::sys::{self, PollFd, POLLIN, POLLOUT};
use crate::telemetry::{self, StageTimings};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One parsed request handed to the worker pool.
pub(crate) struct WorkItem {
    /// Slot index of the connection that sent it.
    pub conn: usize,
    /// Generation of that slot when dispatched (guards recycled slots).
    pub generation: u64,
    /// The parsed request.
    pub req: http::Request,
    /// When the item entered the work queue (`queue_wait` stage t0).
    pub queued: Instant,
    /// When the request's first byte arrived (end-to-end latency t0).
    pub started: Instant,
    /// Microseconds from first byte to fully parsed.
    pub parse_us: u64,
    /// Whether the server side permits keep-alive for this response (the
    /// client's own `Connection:` preference is applied by the worker).
    pub allow_keep_alive: bool,
    /// Page hash + fingerprint, precomputed by the loop for `/brief`.
    pub key_fp: Option<(u64, Fingerprint)>,
    /// The loop already probed the replica cache and missed, so the
    /// worker should count the miss without probing again.
    pub cache_probed: bool,
}

/// A worker's finished response, to be flushed by the event loop.
pub(crate) struct Done {
    /// Slot index the response belongs to.
    pub conn: usize,
    /// Generation the request was dispatched under.
    pub generation: u64,
    /// The fully rendered response bytes.
    pub bytes: Vec<u8>,
    /// Keep the connection open after flushing.
    pub keep_alive: bool,
    /// Record the flush duration as the `write` stage (data plane only).
    pub record_write: bool,
}

/// Worker → event-loop completion channel: a locked vector (completions
/// are tiny and rare relative to poll iterations) plus a self-pipe that
/// interrupts `poll`.
pub(crate) struct Completions {
    done: Mutex<Vec<Done>>,
    wake: sys::WakePipe,
}

impl Completions {
    pub fn new() -> io::Result<Completions> {
        Ok(Completions { done: Mutex::new(Vec::new()), wake: sys::WakePipe::new()? })
    }

    /// Queues a completion and kicks the loop out of `poll`.
    pub fn push(&self, done: Done) {
        self.done.lock().unwrap().push(done);
        self.wake.wake();
    }

    /// Wakes the loop without a completion (shutdown notification).
    pub fn wake(&self) {
        self.wake.wake();
    }

    /// The pipe fd the loop polls for wakeups.
    fn wake_fd(&self) -> i32 {
        self.wake.read_fd()
    }

    /// Empties the wake pipe so the next wakeup is a fresh edge.
    fn drain_wake(&self) {
        self.wake.drain();
    }

    fn drain(&self) -> Vec<Done> {
        std::mem::take(&mut *self.done.lock().unwrap())
    }
}

enum ConnState {
    Reading,
    Processing,
    Writing,
    Draining,
}

struct Conn {
    stream: TcpStream,
    generation: u64,
    state: ConnState,
    /// Unconsumed request bytes (survives across requests — pipelining).
    buf: Vec<u8>,
    parser: RequestParser,
    write_buf: Vec<u8>,
    written: usize,
    keep_alive_after_write: bool,
    drain_after_write: bool,
    record_write: bool,
    write_started: Instant,
    write_deadline: Instant,
    /// Requests parsed off this connection so far.
    requests_served: u64,
    /// First byte of the in-progress request (None while idle).
    request_started: Option<Instant>,
    /// Total-read deadline for the in-progress request (slow-loris bound).
    read_deadline: Option<Instant>,
    idle_since: Instant,
    drain_deadline: Instant,
    drained: usize,
}

enum Tag {
    Wake,
    Listener,
    Conn(usize),
}

enum Flush {
    Complete,
    Pending,
    Closed,
}

#[cfg(unix)]
fn raw_fd<T: std::os::unix::io::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn raw_fd<T>(_t: &T) -> i32 {
    -1
}

/// How long an error-close lingers draining the client's unread bytes.
const DRAIN_WINDOW: Duration = Duration::from_millis(250);
/// Most bytes an error-close will discard before giving up on a clean FIN.
const DRAIN_LIMIT: usize = 64 * 1024;

pub(crate) struct EventLoop {
    shared: Arc<Shared>,
    listener: TcpListener,
    work_tx: SyncSender<WorkItem>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_generation: u64,
    active: usize,
    scratch: Vec<u8>,
    timeout: Duration,
    idle_timeout: Option<Duration>,
    max_requests: u64,
    max_conns: usize,
}

/// Runs the event loop until shutdown completes (`stopping` set and every
/// connection retired). Owns the listener; dropping it on return is what
/// closes the port.
pub(crate) fn run(shared: Arc<Shared>, listener: TcpListener, work_tx: SyncSender<WorkItem>) {
    let timeout = Duration::from_millis(shared.cfg.request_timeout_ms.max(1));
    let idle_timeout = match shared.cfg.idle_timeout_ms {
        0 => None,
        ms => Some(Duration::from_millis(ms)),
    };
    EventLoop {
        max_requests: shared.cfg.max_requests_per_conn,
        max_conns: shared.cfg.max_conns.max(1),
        shared,
        listener,
        work_tx,
        conns: Vec::new(),
        free: Vec::new(),
        next_generation: 0,
        active: 0,
        scratch: vec![0u8; 16 * 1024],
        timeout,
        idle_timeout,
    }
    .run_loop();
}

impl EventLoop {
    fn run_loop(&mut self) {
        let _span = wb_obs::span!("serve.io");
        let mut fds: Vec<PollFd> = Vec::new();
        let mut tags: Vec<Tag> = Vec::new();
        loop {
            let stopping = self.shared.stopping.load(Ordering::SeqCst);
            if stopping {
                self.close_idle();
                if self.active == 0 {
                    break;
                }
            }
            fds.clear();
            tags.clear();
            fds.push(PollFd::new(self.shared.completions.wake_fd(), POLLIN));
            tags.push(Tag::Wake);
            if !stopping && self.active < self.max_conns {
                fds.push(PollFd::new(raw_fd(&self.listener), POLLIN));
                tags.push(Tag::Listener);
            }
            for (i, slot) in self.conns.iter().enumerate() {
                let Some(c) = slot else { continue };
                let events = match c.state {
                    ConnState::Reading | ConnState::Draining => POLLIN,
                    ConnState::Writing => POLLOUT,
                    // Not polled: nothing to do until the worker's
                    // completion arrives via the wake pipe.
                    ConnState::Processing => continue,
                };
                fds.push(PollFd::new(raw_fd(&c.stream), events));
                tags.push(Tag::Conn(i));
            }
            let timeout_ms = self.poll_timeout_ms();
            if let Err(e) = sys::poll_fds(&mut fds, timeout_ms) {
                wb_obs::warn!("poll failed: {e}");
                std::thread::sleep(Duration::from_millis(5));
            }
            for k in 0..fds.len() {
                if fds[k].revents == 0 {
                    continue;
                }
                match tags[k] {
                    Tag::Wake => self.shared.completions.drain_wake(),
                    Tag::Listener => self.accept_ready(),
                    Tag::Conn(i) => self.conn_ready(i),
                }
            }
            for done in self.shared.completions.drain() {
                self.apply(done);
            }
            self.sweep(Instant::now());
        }
    }

    /// Next poll timeout: the nearest connection deadline, capped at 1 s
    /// (shutdown interrupts via the wake pipe, so a long sleep is safe).
    fn poll_timeout_ms(&self) -> i32 {
        let now = Instant::now();
        let mut next: Option<Instant> = None;
        let mut consider = |d: Instant| match next {
            Some(n) if n <= d => {}
            _ => next = Some(d),
        };
        for c in self.conns.iter().flatten() {
            match c.state {
                ConnState::Reading => {
                    if let Some(d) = c.read_deadline {
                        consider(d);
                    } else if let Some(idle) = self.idle_timeout {
                        consider(c.idle_since + idle);
                    }
                }
                ConnState::Writing => consider(c.write_deadline),
                ConnState::Draining => consider(c.drain_deadline),
                ConnState::Processing => {}
            }
        }
        match next {
            None => 1000,
            Some(d) => {
                let ms = d.saturating_duration_since(now).as_millis().min(1000) as i32;
                // Round up so a deadline 0.5ms out doesn't spin at 0.
                ms.max(1)
            }
        }
    }

    fn accept_ready(&mut self) {
        while self.active < self.max_conns {
            let stream = match self.listener.accept() {
                Ok((s, _)) => s,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    wb_obs::warn!("accept failed: {e}");
                    return;
                }
            };
            let _ = stream.set_nonblocking(true);
            let _ = stream.set_nodelay(true);
            wb_obs::counter!("serve.conn.accepted");
            self.insert(stream);
            wb_obs::gauge!("serve.conn.active", self.active as f64);
            wb_obs::gauge_max!("serve.conn.active.peak", self.active as f64);
        }
    }

    fn insert(&mut self, stream: TcpStream) -> usize {
        self.next_generation += 1;
        let now = Instant::now();
        let conn = Conn {
            stream,
            generation: self.next_generation,
            state: ConnState::Reading,
            buf: Vec::new(),
            parser: RequestParser::new(),
            write_buf: Vec::new(),
            written: 0,
            keep_alive_after_write: false,
            drain_after_write: false,
            record_write: false,
            write_started: now,
            write_deadline: now,
            requests_served: 0,
            request_started: None,
            read_deadline: None,
            idle_since: now,
            drain_deadline: now,
            drained: 0,
        };
        self.active += 1;
        match self.free.pop() {
            Some(i) => {
                self.conns[i] = Some(conn);
                i
            }
            None => {
                self.conns.push(Some(conn));
                self.conns.len() - 1
            }
        }
    }

    fn close(&mut self, i: usize) {
        if self.conns[i].take().is_some() {
            self.active -= 1;
            self.free.push(i);
            wb_obs::counter!("serve.conn.closed");
            wb_obs::gauge!("serve.conn.active", self.active as f64);
        }
    }

    /// At shutdown: connections with nothing in flight close immediately;
    /// mid-request and mid-response connections finish under their
    /// existing deadlines.
    fn close_idle(&mut self) {
        for i in 0..self.conns.len() {
            let idle = matches!(
                &self.conns[i],
                Some(c) if matches!(c.state, ConnState::Reading) && c.buf.is_empty()
                    && !c.parser.started()
            );
            if idle {
                self.close(i);
            }
        }
    }

    fn conn_ready(&mut self, i: usize) {
        let Some(c) = self.conns[i].as_ref() else { return };
        match c.state {
            ConnState::Reading => self.conn_readable(i),
            ConnState::Writing => self.conn_writable(i),
            ConnState::Draining => self.conn_draining(i),
            ConnState::Processing => {}
        }
    }

    fn conn_readable(&mut self, i: usize) {
        let mut eof = false;
        loop {
            let Some(c) = self.conns[i].as_mut() else { return };
            match c.stream.read(&mut self.scratch) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    if c.request_started.is_none() {
                        let now = Instant::now();
                        c.request_started = Some(now);
                        c.read_deadline = Some(now + self.timeout);
                    }
                    c.buf.extend_from_slice(&self.scratch[..n]);
                    // A short read means the socket buffer is drained;
                    // level-triggered poll re-reports anything new.
                    if n < self.scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(i);
                    return;
                }
            }
        }
        self.advance(i);
        if eof {
            self.peer_eof(i);
        }
    }

    /// Parses as many complete requests out of the buffer as the state
    /// machine allows (one in flight at a time; an inline cache hit
    /// completes synchronously, so the loop continues into the next
    /// pipelined request).
    fn advance(&mut self, i: usize) {
        loop {
            let Some(c) = self.conns[i].as_mut() else { return };
            if !matches!(c.state, ConnState::Reading) || c.buf.is_empty() {
                return;
            }
            match c.parser.step(&c.buf, self.shared.cfg.max_body_bytes) {
                Ok(Parsed::NeedMore) => {
                    if c.request_started.is_none() {
                        let now = Instant::now();
                        c.request_started = Some(now);
                        c.read_deadline = Some(now + self.timeout);
                    }
                    return;
                }
                Ok(Parsed::Request { req, consumed }) => {
                    c.buf.drain(..consumed);
                    let started = c.request_started.take().unwrap_or_else(Instant::now);
                    c.read_deadline = None;
                    self.dispatch(i, req, started);
                }
                Err(e) => {
                    self.framing_error(i, e);
                    return;
                }
            }
        }
    }

    fn peer_eof(&mut self, i: usize) {
        let Some(c) = self.conns[i].as_ref() else { return };
        match c.state {
            ConnState::Reading => {
                if c.buf.is_empty() && !c.parser.started() {
                    // Clean close between requests (or a port probe).
                    self.close(i);
                } else {
                    self.framing_error(
                        i,
                        HttpError::Malformed("connection closed mid-request".to_string()),
                    );
                }
            }
            ConnState::Draining => self.close(i),
            // Processing/Writing: the response is still owed; a fully
            // closed peer surfaces as a write error when we flush.
            ConnState::Processing | ConnState::Writing => {}
        }
    }

    fn dispatch(&mut self, i: usize, req: http::Request, started: Instant) {
        wb_obs::counter!("serve.requests");
        let parse_us = telemetry::micros_since(started);
        let (generation, served) = {
            let c = self.conns[i].as_mut().expect("dispatch on live conn");
            c.requests_served += 1;
            (c.generation, c.requests_served)
        };
        let at_cap = self.max_requests > 0 && served >= self.max_requests;
        if at_cap {
            wb_obs::counter!("serve.conn.max_requests_closed");
        }
        let allow_keep_alive = !at_cap && !self.shared.stopping.load(Ordering::Relaxed);

        // Inline fast path: answer hot-cache briefs on this thread, no
        // worker handoff. try_lock only — contention falls through.
        let shared = Arc::clone(&self.shared);
        let mut key_fp = None;
        let mut cache_probed = false;
        if req.method == "POST" && req.path == "/brief" && !req.body.is_empty() {
            let cache_t0 = Instant::now();
            let key = fnv1a(&req.body);
            let fp = Fingerprint::of(&req.body);
            key_fp = Some((key, fp));
            let replica = shared.replicas.route(key);
            replica.count_request();
            if shared.cfg.cache_capacity > 0 {
                if let Ok(mut cache) = replica.cache.try_lock() {
                    let hit = cache.get(key, fp).cloned();
                    drop(cache);
                    match hit {
                        Some(json) => {
                            let cache_us = telemetry::micros_since(cache_t0);
                            self.reply_cache_hit(
                                i,
                                &req,
                                started,
                                parse_us,
                                cache_us,
                                allow_keep_alive,
                                &json,
                            );
                            return;
                        }
                        None => cache_probed = true,
                    }
                }
            }
        }

        let item = WorkItem {
            conn: i,
            generation,
            req,
            queued: Instant::now(),
            started,
            parse_us,
            allow_keep_alive,
            key_fp,
            cache_probed,
        };
        // Count the item in before handing it off: once try_send returns
        // a worker may already be decrementing, so increment-after would
        // race the counter below zero.
        let depth = self.shared.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        match self.work_tx.try_send(item) {
            Ok(()) => {
                wb_obs::gauge!("serve.queue.depth", depth as f64);
                wb_obs::gauge_max!("serve.queue.depth.peak", depth as f64);
                self.conns[i].as_mut().expect("dispatch on live conn").state =
                    ConnState::Processing;
            }
            Err(TrySendError::Full(_)) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                wb_obs::counter!("serve.rejected.queue_full");
                let bytes = server::render_counted(
                    503,
                    "application/json",
                    &http::error_body("server overloaded; retry shortly"),
                    &[("Retry-After", "1")],
                    false,
                );
                self.queue_response(i, bytes, false, false, true);
            }
            Err(TrySendError::Disconnected(_)) => {
                self.shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
                self.close(i);
            }
        }
    }

    /// Serves a cache hit entirely on the event-loop thread, with full
    /// telemetry parity with the worker path (id, Server-Timing, metrics,
    /// access log).
    #[allow(clippy::too_many_arguments)]
    fn reply_cache_hit(
        &mut self,
        i: usize,
        req: &http::Request,
        started: Instant,
        parse_us: u64,
        cache_us: u64,
        allow_keep_alive: bool,
        json: &Arc<String>,
    ) {
        // Span parity with the worker path: inline hits must appear in
        // traces as serve.request too, or hit-heavy load looks idle.
        let _span = wb_obs::span!("serve.request");
        wb_obs::counter!("serve.cache.hit");
        wb_obs::window_counter!("serve.cache.hit");
        let id = telemetry::request_id(req.header("x-request-id"));
        let t = StageTimings { parse_us, cache_us, ..StageTimings::default() };
        let st = t.server_timing();
        let keep_alive = allow_keep_alive && req.wants_keep_alive();
        let bytes = server::render_counted(
            200,
            "application/json",
            json.as_bytes(),
            &[("X-Request-Id", &id), ("Server-Timing", &st), ("X-Cache", "hit")],
            keep_alive,
        );
        let total_us = telemetry::micros_since(started);
        server::finish_data_plane(
            &self.shared,
            &id,
            &req.method,
            &req.path,
            200,
            total_us,
            "hit",
            &t,
        );
        self.queue_response(i, bytes, keep_alive, true, false);
    }

    /// Answers a framing error: counted, logged, always closed (never
    /// resynchronize after a framing error — that is how request
    /// smuggling works), with a bounded drain for a clean FIN.
    fn framing_error(&mut self, i: usize, err: HttpError) {
        let Some(c) = self.conns[i].as_mut() else { return };
        let started = c.request_started.take().unwrap_or_else(Instant::now);
        c.read_deadline = None;
        wb_obs::counter!("serve.requests");
        wb_obs::counter!("serve.conn.framing_errors");
        let status = err.status();
        match status {
            408 => wb_obs::counter!("serve.rejected.timeout"),
            413 => wb_obs::counter!("serve.rejected.too_large"),
            _ => {}
        }
        // The request never parsed, so no inbound id exists; mint one
        // anyway so even rejections are correlatable.
        let id = telemetry::next_request_id();
        let bytes = server::render_counted(
            status,
            "application/json",
            &http::error_body(&err.detail()),
            &[("X-Request-Id", &id)],
            false,
        );
        let total_us = telemetry::micros_since(started);
        wb_obs::histogram!("serve.request.latency_us", total_us);
        wb_obs::window_histogram!("serve.request.latency_us", total_us as f64);
        wb_obs::window_counter!("serve.requests");
        self.queue_response(i, bytes, false, false, true);
    }

    /// Installs a rendered response and flushes as much as the socket
    /// accepts right now; the rest waits on `POLLOUT`.
    fn queue_response(
        &mut self,
        i: usize,
        bytes: Vec<u8>,
        keep_alive: bool,
        record_write: bool,
        drain_after: bool,
    ) {
        let now = Instant::now();
        {
            let Some(c) = self.conns[i].as_mut() else { return };
            c.write_buf = bytes;
            c.written = 0;
            c.state = ConnState::Writing;
            c.keep_alive_after_write = keep_alive;
            c.drain_after_write = drain_after;
            c.record_write = record_write;
            c.write_started = now;
            c.write_deadline = now + self.timeout;
        }
        if matches!(self.flush(i), Flush::Complete) {
            self.finish_response(i);
        }
    }

    fn flush(&mut self, i: usize) -> Flush {
        loop {
            let Some(c) = self.conns[i].as_mut() else { return Flush::Closed };
            match c.stream.write(&c.write_buf[c.written..]) {
                Ok(0) => {
                    wb_obs::counter!("serve.responses.write_failed");
                    self.close(i);
                    return Flush::Closed;
                }
                Ok(n) => {
                    c.written += n;
                    if c.written >= c.write_buf.len() {
                        return Flush::Complete;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Flush::Pending,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    wb_obs::counter!("serve.responses.write_failed");
                    wb_obs::debug!("response write failed: {e}");
                    self.close(i);
                    return Flush::Closed;
                }
            }
        }
    }

    /// Bookkeeping after a fully flushed response: record the write
    /// stage, then keep-alive back to Reading, drain-then-close, or close.
    /// Does NOT parse pipelined bytes — callers do, keeping the
    /// advance/flush recursion flat.
    fn finish_response(&mut self, i: usize) {
        let now = Instant::now();
        let Some(c) = self.conns[i].as_mut() else { return };
        if c.record_write {
            let write_us = telemetry::micros_since(c.write_started);
            wb_obs::histogram!("serve.stage.write_us", write_us);
            wb_obs::window_histogram!("serve.stage.write_us", write_us as f64);
        }
        if c.requests_served > 1 {
            wb_obs::counter!("serve.conn.reused");
        }
        c.write_buf = Vec::new();
        c.written = 0;
        if c.keep_alive_after_write {
            c.state = ConnState::Reading;
            c.idle_since = now;
            if c.buf.is_empty() {
                c.request_started = None;
                c.read_deadline = None;
            } else {
                // The next pipelined request is already buffered; its
                // clock starts now.
                c.request_started = Some(now);
                c.read_deadline = Some(now + self.timeout);
            }
        } else if c.drain_after_write {
            c.state = ConnState::Draining;
            c.drain_deadline = now + DRAIN_WINDOW;
            c.drained = 0;
            c.buf.clear();
            c.parser.reset();
        } else {
            self.close(i);
        }
    }

    fn conn_writable(&mut self, i: usize) {
        if matches!(self.flush(i), Flush::Complete) {
            self.finish_response(i);
            let reading_with_input = matches!(
                &self.conns[i],
                Some(c) if matches!(c.state, ConnState::Reading) && !c.buf.is_empty()
            );
            if reading_with_input {
                self.advance(i);
            }
        }
    }

    fn conn_draining(&mut self, i: usize) {
        loop {
            let Some(c) = self.conns[i].as_mut() else { return };
            match c.stream.read(&mut self.scratch) {
                Ok(0) => {
                    self.close(i);
                    return;
                }
                Ok(n) => {
                    c.drained += n;
                    if c.drained > DRAIN_LIMIT {
                        self.close(i);
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(i);
                    return;
                }
            }
        }
    }

    fn apply(&mut self, done: Done) {
        let live = matches!(
            self.conns.get(done.conn).and_then(|s| s.as_ref()),
            Some(c) if c.generation == done.generation
                && matches!(c.state, ConnState::Processing)
        );
        if !live {
            return; // connection died or slot was recycled mid-flight
        }
        self.queue_response(done.conn, done.bytes, done.keep_alive, done.record_write, false);
        let reading_with_input = matches!(
            &self.conns[done.conn],
            Some(c) if matches!(c.state, ConnState::Reading) && !c.buf.is_empty()
        );
        if reading_with_input {
            self.advance(done.conn);
        }
    }

    /// Enforces every time bound: total-read deadlines (408), idle
    /// keep-alive timeouts (silent close), stalled writes and expired
    /// drains.
    fn sweep(&mut self, now: Instant) {
        enum Due {
            ReadTimeout,
            IdleClose,
            WriteStall,
            DrainDone,
        }
        for i in 0..self.conns.len() {
            let due = match &self.conns[i] {
                None => None,
                Some(c) => match c.state {
                    ConnState::Reading => match c.read_deadline {
                        Some(d) if now >= d => Some(Due::ReadTimeout),
                        Some(_) => None,
                        None => match self.idle_timeout {
                            Some(idle) if now.duration_since(c.idle_since) >= idle => {
                                Some(Due::IdleClose)
                            }
                            _ => None,
                        },
                    },
                    ConnState::Writing if now >= c.write_deadline => Some(Due::WriteStall),
                    ConnState::Draining if now >= c.drain_deadline => Some(Due::DrainDone),
                    _ => None,
                },
            };
            match due {
                Some(Due::ReadTimeout) => self.framing_error(i, HttpError::Timeout),
                Some(Due::IdleClose) => {
                    wb_obs::counter!("serve.conn.idle_closed");
                    self.close(i);
                }
                Some(Due::WriteStall) => {
                    wb_obs::counter!("serve.responses.write_failed");
                    self.close(i);
                }
                Some(Due::DrainDone) => self.close(i),
                None => {}
            }
        }
    }
}
