//! SIGINT/SIGTERM handling without a libc crate: `wb serve` installs a
//! handler that flips one atomic flag, and its main loop polls the flag so
//! a Ctrl-C or `kill` gets the same graceful drain + observability flush
//! as `POST /shutdown`.
//!
//! The handler itself only does the one thing that is async-signal-safe in
//! any language: a relaxed atomic store. Everything interesting (stop
//! accepting, drain, join, flush) happens on the main thread once it
//! notices the flag.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_SIGNALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::SHUTDOWN_SIGNALLED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // `signal(2)` from the platform libc that std already links; declared
    // by hand because the container has no registry access for a libc
    // crate. Pointer-sized handler values cover both SIG_DFL (0) and real
    // function pointers.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN_SIGNALLED.store(true, Ordering::Relaxed);
    }

    pub fn install() {
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Routes SIGINT and SIGTERM into [`shutdown_signalled`]. Idempotent; a
/// no-op on non-unix targets (where a console kill simply skips the
/// flush, as before).
pub fn install_handler() {
    imp::install();
}

/// Whether a shutdown signal has arrived since [`install_handler`].
pub fn shutdown_signalled() -> bool {
    SHUTDOWN_SIGNALLED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(unix)]
    fn raised_signal_sets_the_flag() {
        install_handler();
        assert!(!shutdown_signalled());
        // Raise SIGTERM against ourselves via the handler installed above.
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        unsafe {
            raise(15);
        }
        assert!(shutdown_signalled());
    }
}
