//! Micro-batching: concurrent `/brief` requests queue here and a single
//! executor drains the whole queue into [`Briefer::brief_corpus`], so
//! simultaneous requests share one rayon fan-out instead of contending for
//! the pool one page at a time. While a batch runs, newly arriving
//! requests accumulate and form the next batch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use wb_core::Briefer;

use crate::breaker::CircuitBreaker;

/// The outcome of briefing one queued page.
#[derive(Debug, Clone)]
pub enum BriefOutcome {
    /// The pretty-printed `Brief` JSON (shared, so a batch of identical
    /// pages serialises once).
    Ok(Arc<String>),
    /// The page itself cannot be briefed (unparseable, no visible text)
    /// → 422 for this request, the batch is unaffected.
    Unbriefable(String),
    /// The model panicked or the executor is gone → 500.
    Internal(String),
    /// The request's deadline passed while it queued → 504. Issued only
    /// *before* the model runs: once a page enters the batch, its result
    /// is returned even if it arrives late.
    Expired,
}

/// What the executor sends back for one job: the outcome plus the
/// executor-side share of the request's stage breakdown. Batch stages
/// are whole-batch durations attributed to every member — the batch runs
/// as one unit, so each request really did wait for the whole model run.
#[derive(Debug, Clone)]
pub struct Completion {
    /// The briefing outcome.
    pub outcome: BriefOutcome,
    /// Microseconds this job waited between submission and its batch
    /// being drained by the executor.
    pub batch_wait_us: u64,
    /// Microseconds the batch spent in the model (including any
    /// configured handler delay, which stands in for model cost). Zero
    /// for jobs that expired before the model ran.
    pub model_us: u64,
    /// Microseconds serialising the batch's briefs to JSON.
    pub serialize_us: u64,
}

impl Completion {
    fn expired(batch_wait_us: u64) -> Self {
        Completion {
            outcome: BriefOutcome::Expired,
            batch_wait_us,
            model_us: 0,
            serialize_us: 0,
        }
    }
}

/// One queued request: the page and the channel its outcome goes back on.
pub struct Job {
    /// Raw page HTML.
    pub html: String,
    /// Latest moment this request is still worth answering; checked by the
    /// executor before the model runs.
    pub deadline: Instant,
    /// When the worker submitted the job — the start of the `batch_wait`
    /// stage.
    pub submitted: Instant,
    /// Completion channel back to the waiting worker. Send failures are
    /// ignored — the worker may have timed out and gone away.
    pub tx: Sender<Completion>,
}

struct Queue {
    jobs: Vec<Job>,
    closed: bool,
}

/// The shared job queue between request workers and the batch executor.
pub struct Batcher {
    queue: Mutex<Queue>,
    cv: Condvar,
}

impl Batcher {
    /// Creates an empty, open batcher.
    pub fn new() -> Self {
        Batcher {
            queue: Mutex::new(Queue { jobs: Vec::new(), closed: false }),
            cv: Condvar::new(),
        }
    }

    /// Enqueues a job for the next batch. Returns `false` (and drops the
    /// job) once the batcher is closed.
    pub fn submit(&self, job: Job) -> bool {
        let mut q = self.queue.lock().unwrap();
        if q.closed {
            return false;
        }
        q.jobs.push(job);
        self.cv.notify_all();
        true
    }

    /// Closes the queue: pending jobs still run, new submissions fail and
    /// the executor exits once drained.
    pub fn close(&self) {
        self.queue.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    /// Blocks until jobs are available (or the batcher closes) and takes
    /// the entire pending queue. `None` means closed-and-drained.
    fn next_batch(&self) -> Option<Vec<Job>> {
        let mut q = self.queue.lock().unwrap();
        loop {
            if !q.jobs.is_empty() {
                return Some(std::mem::take(&mut q.jobs));
            }
            if q.closed {
                return None;
            }
            q = self.cv.wait(q).unwrap();
        }
    }

    /// The batch-executor loop: drain → brief → respond, until closed.
    /// `handler_delay` stalls each batch before the model runs — a load-
    /// testing knob (`--handler-delay-ms`) that makes overload behaviour
    /// reproducible; zero in production.
    ///
    /// Identical pages within a batch are coalesced: the model runs once
    /// per distinct page and every requester shares the one serialised
    /// response. A panic anywhere in the model fails the batch's requests
    /// with [`BriefOutcome::Internal`], records a failure on `breaker` and
    /// never kills the server; a clean batch records a success. Jobs whose
    /// deadline has already passed are answered [`BriefOutcome::Expired`]
    /// before the model runs and do not occupy it.
    pub fn run_executor(
        &self,
        briefer: &Briefer,
        handler_delay: Duration,
        breaker: &CircuitBreaker,
    ) {
        while let Some(jobs) = self.next_batch() {
            let _span = wb_obs::span!("serve.batch");
            wb_obs::histogram!("serve.batch.size", jobs.len());
            // Everything from here to the end of brief_corpus is "model"
            // time for this batch: the handler-delay stall simulates model
            // cost, and the deadline gate/coalescing are noise next to it.
            let drained = Instant::now();
            let batch_wait = |job: &Job| {
                u64::try_from(drained.saturating_duration_since(job.submitted).as_micros())
                    .unwrap_or(u64::MAX)
            };
            if !handler_delay.is_zero() {
                std::thread::sleep(handler_delay);
            }
            // Deadline gate: anything already expired gets its 504 now,
            // before the model runs — never after.
            let now = Instant::now();
            let (jobs, expired): (Vec<Job>, Vec<Job>) =
                jobs.into_iter().partition(|j| j.deadline >= now);
            if !expired.is_empty() {
                wb_obs::counter!("serve.deadline.expired", expired.len());
                for job in expired {
                    let wait = batch_wait(&job);
                    let _ = job.tx.send(Completion::expired(wait));
                }
            }
            if jobs.is_empty() {
                continue;
            }
            // Coalesce duplicate pages (first-occurrence order keeps the
            // batch deterministic regardless of arrival interleaving).
            let mut uniq: Vec<&str> = Vec::new();
            let mut index_of: Vec<usize> = Vec::with_capacity(jobs.len());
            for job in &jobs {
                match uniq.iter().position(|u| *u == job.html) {
                    Some(i) => index_of.push(i),
                    None => {
                        uniq.push(&job.html);
                        index_of.push(uniq.len() - 1);
                    }
                }
            }
            wb_obs::counter!("serve.batch.pages", uniq.len());
            let htmls: Vec<String> = uniq.iter().map(|s| s.to_string()).collect();
            let briefed = catch_unwind(AssertUnwindSafe(|| {
                if wb_chaos::fault_point!("serve.worker.pre_model").is_some() {
                    // An injected `error`/`nan` at this point stands in for
                    // any pre-model failure; it must look like a model
                    // panic to the batch (and hence to the breaker).
                    panic!("injected fault: serve.worker.pre_model");
                }
                briefer.brief_corpus(&htmls)
            }));
            let model_us = u64::try_from(drained.elapsed().as_micros()).unwrap_or(u64::MAX);
            let serialize_t0 = Instant::now();
            let outcomes: Vec<BriefOutcome> = match briefed {
                Ok(results) => {
                    breaker.record_success();
                    results
                        .into_iter()
                        .map(|r| match r {
                            Ok(brief) => match serde_json::to_string_pretty(&brief) {
                                Ok(json) => BriefOutcome::Ok(Arc::new(json)),
                                Err(e) => {
                                    BriefOutcome::Internal(format!("brief serialisation: {e}"))
                                }
                            },
                            Err(e) => BriefOutcome::Unbriefable(e.to_string()),
                        })
                        .collect()
                }
                Err(_) => {
                    breaker.record_failure();
                    wb_obs::error!("briefing batch panicked; failing {} requests", jobs.len());
                    wb_obs::counter!("serve.batch.panics");
                    vec![
                        BriefOutcome::Internal("briefing failed internally".to_string());
                        uniq.len()
                    ]
                }
            };
            let serialize_us =
                u64::try_from(serialize_t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            for (job, &uniq_idx) in jobs.iter().zip(&index_of) {
                let _ = job.tx.send(Completion {
                    outcome: outcomes[uniq_idx].clone(),
                    batch_wait_us: batch_wait(job),
                    model_us,
                    serialize_us,
                });
            }
        }
    }
}

impl Default for Batcher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn far_deadline() -> Instant {
        Instant::now() + Duration::from_secs(60)
    }

    #[test]
    fn close_rejects_new_jobs_and_wakes_executor() {
        let b = Batcher::new();
        b.close();
        let (tx, _rx) = channel();
        assert!(!b.submit(Job {
            html: "<html/>".into(),
            deadline: far_deadline(),
            submitted: Instant::now(),
            tx
        }));
        assert!(b.next_batch().is_none());
    }

    #[test]
    fn next_batch_takes_everything_pending() {
        let b = Batcher::new();
        for i in 0..5 {
            let (tx, _rx) = channel();
            assert!(b.submit(Job {
                html: format!("<p>{i}</p>"),
                deadline: far_deadline(),
                submitted: Instant::now(),
                tx
            }));
        }
        let batch = b.next_batch().unwrap();
        assert_eq!(batch.len(), 5);
        b.close();
        assert!(b.next_batch().is_none());
    }
}
