//! `wb bench` — the performance-trajectory harness.
//!
//! Runs a fixed set of workloads (matmul variants, WordPiece tokenization,
//! corpus briefing, one-epoch training) with warmup and repeats, and writes
//! a `BENCH_<label>.json` report per run: throughput, latency percentiles
//! (derived from the `wb-obs` histograms via
//! [`HistogramSnapshot::quantile`]), deterministic work counters (FLOPs,
//! matmul calls, dispatch decisions) and peak-memory watermarks, plus an
//! environment fingerprint. Reports from different commits are diffed with
//! [`compare`] to track the performance trajectory of the codebase.
//!
//! ## Hard vs soft metrics
//!
//! Every metric is tagged `hard` or soft. *Hard* metrics are deterministic
//! functions of the workload shape — FLOP counts, matmul call counts,
//! dispatch decisions, tape/parameter byte peaks, work-unit counts. They
//! are identical across machines and (for any multicore pool) across
//! thread counts, so [`compare`] **fails** when one drifts beyond
//! tolerance: the code now does different work. *Soft* metrics are
//! time-based (throughput, latency percentiles) or scheduler-dependent
//! (scratch-pool peaks); drift there only **warns**, because CI machines
//! are noisy neighbours. The one caveat: dispatch counts assume a rayon
//! pool with >1 thread — comparing a `RAYON_NUM_THREADS=1` run against a
//! multicore baseline legitimately hard-fails.
//!
//! The report format is the dependency-free [`wb_obs::json::Json`] value
//! (sorted keys, shortest round-tripping floats), so files render
//! deterministically and parse back exactly.

use crate::Scale;
use std::collections::BTreeMap;
use std::time::Instant;
use wb_core::{Briefer, ModelConfig, TrainConfig};
use wb_corpus::{generate_page, Dataset, DatasetConfig, PageConfig};
use wb_obs::json::Json;
use wb_obs::metrics::{registry, snapshot, HistogramSnapshot, Snapshot};
use wb_tensor::{Graph, Params, Tensor};

/// Schema tag written into every report (bump on breaking changes).
pub const SCHEMA: &str = "wb-bench-v1";

/// High-watermark gauges re-armed (reset to zero) before each workload so
/// peaks are attributed per workload rather than per process.
const PEAK_GAUGES: &[&str] = &[
    "tensor.scratch.bytes_pooled.peak",
    "tensor.graph.tape_bytes.peak",
    "tensor.graph.nodes.peak",
    "tensor.params.bytes.peak",
];

/// Benchmark size tier: the `WB_SCALE` scales plus a sub-`tiny` CI tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Seconds-scale tier for CI smoke regression checks (`--quick`).
    Quick,
    /// `WB_SCALE=tiny`.
    Tiny,
    /// `WB_SCALE=small` (the default).
    Small,
    /// `WB_SCALE=full`.
    Full,
}

impl Tier {
    /// Resolves the tier: `--quick` wins, otherwise `WB_SCALE` decides.
    pub fn resolve(quick: bool) -> Tier {
        if quick {
            return Tier::Quick;
        }
        match Scale::from_env() {
            Scale::Tiny => Tier::Tiny,
            Scale::Small => Tier::Small,
            Scale::Full => Tier::Full,
        }
    }

    /// Display / report name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Quick => "quick",
            Tier::Tiny => "tiny",
            Tier::Small => "small",
            Tier::Full => "full",
        }
    }

    fn spec(self) -> TierSpec {
        match self {
            Tier::Quick => TierSpec {
                matmul_dim: 96,
                // Enough repeats that a ~1 ms matmul product yields a stable
                // throughput on a busy single-core CI runner; still < 200 ms
                // per matmul workload.
                matmul_reps: 40,
                tok_reps: 8,
                brief_reps: 2,
                train_reps: 2,
                warmup: 1,
                subjects: 1,
                pages_per_topic: 3,
                setup_epochs: 2,
                brief_pages: 6,
            },
            Tier::Tiny => TierSpec {
                matmul_dim: 64,
                matmul_reps: 8,
                tok_reps: 10,
                brief_reps: 3,
                train_reps: 3,
                warmup: 2,
                subjects: 2,
                pages_per_topic: 4,
                setup_epochs: 3,
                brief_pages: 8,
            },
            Tier::Small => TierSpec {
                matmul_dim: 128,
                matmul_reps: 12,
                tok_reps: 15,
                brief_reps: 4,
                train_reps: 4,
                warmup: 2,
                subjects: 2,
                pages_per_topic: 6,
                setup_epochs: 6,
                brief_pages: 12,
            },
            Tier::Full => TierSpec {
                matmul_dim: 256,
                matmul_reps: 20,
                tok_reps: 25,
                brief_reps: 6,
                train_reps: 6,
                warmup: 3,
                subjects: 3,
                pages_per_topic: 8,
                setup_epochs: 10,
                brief_pages: 16,
            },
        }
    }
}

/// Workload sizes for one tier.
struct TierSpec {
    matmul_dim: usize,
    matmul_reps: usize,
    tok_reps: usize,
    brief_reps: usize,
    train_reps: usize,
    warmup: usize,
    subjects: usize,
    pages_per_topic: usize,
    setup_epochs: usize,
    brief_pages: usize,
}

/// One measured quantity of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// The measured value.
    pub value: f64,
    /// Unit label (`MFLOP/s`, `us`, `bytes`, …) for rendering.
    pub unit: String,
    /// Deterministic metric: [`compare`] fails (rather than warns) on
    /// drift beyond tolerance.
    pub hard: bool,
}

impl Metric {
    fn new(value: f64, unit: &str, hard: bool) -> Metric {
        Metric { value, unit: unit.to_string(), hard }
    }
}

/// All metrics of one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadResult {
    /// Timed repeats (after warmup).
    pub repeats: usize,
    /// Metrics by name.
    pub metrics: BTreeMap<String, Metric>,
}

/// A full benchmark report (`BENCH_<label>.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Format tag ([`SCHEMA`]).
    pub schema: String,
    /// Run label (`baseline`, `ci`, a commit hash, …).
    pub label: String,
    /// Size tier the run used.
    pub tier: String,
    /// Environment fingerprint (thread count, OS, arch, build profile…).
    pub env: BTreeMap<String, String>,
    /// Workload results by name.
    pub workloads: BTreeMap<String, WorkloadResult>,
}

/// The outcome of diffing two reports.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Hard-metric drifts beyond tolerance (regressions): exit non-zero.
    pub failures: Vec<String>,
    /// Soft-metric drifts beyond tolerance: report only.
    pub warnings: Vec<String>,
    /// Number of metrics that stayed within tolerance.
    pub within: usize,
}

// ---------------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------------

/// Raw observations of one workload run.
struct Measured {
    repeats: usize,
    units: u64,
    secs: f64,
    before: Snapshot,
    after: Snapshot,
    latency: HistogramSnapshot,
}

impl Measured {
    fn counter_delta(&self, name: &str) -> u64 {
        let b = self.before.counters.get(name).copied().unwrap_or(0);
        let a = self.after.counters.get(name).copied().unwrap_or(0);
        a.saturating_sub(b)
    }

    fn gauge(&self, name: &str) -> f64 {
        self.after.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// The metrics every workload shares: work units, throughput and the
    /// latency distribution of one repeat.
    fn base_metrics(&self, unit: &str) -> BTreeMap<String, Metric> {
        let mut m = BTreeMap::new();
        m.insert("work_units".into(), Metric::new(self.units as f64, unit, true));
        let throughput = if self.secs > 0.0 { self.units as f64 / self.secs } else { 0.0 };
        m.insert("throughput".into(), Metric::new(throughput, &format!("{unit}/s"), false));
        m.insert("latency_mean_us".into(), Metric::new(self.latency.mean(), "us", false));
        for (key, q) in
            [("latency_p50_us", 0.50), ("latency_p90_us", 0.90), ("latency_p99_us", 0.99)]
        {
            if let Some(v) = self.latency.quantile(q) {
                m.insert(key.into(), Metric::new(v, "us", false));
            }
        }
        m
    }

    /// Deterministic tensor-work counters (all hard).
    fn add_tensor_metrics(&self, m: &mut BTreeMap<String, Metric>) {
        let calls: u64 = ["nn", "nt", "tn", "tt"]
            .iter()
            .map(|v| self.counter_delta(&format!("tensor.matmul.calls.{v}")))
            .sum();
        m.insert(
            "flops".into(),
            Metric::new(self.counter_delta("tensor.matmul.flops") as f64, "FLOP", true),
        );
        m.insert("matmul_calls".into(), Metric::new(calls as f64, "calls", true));
        m.insert(
            "dispatch_parallel".into(),
            Metric::new(
                self.counter_delta("tensor.matmul.dispatch.parallel") as f64,
                "calls",
                true,
            ),
        );
        m.insert(
            "dispatch_serial".into(),
            Metric::new(
                self.counter_delta("tensor.matmul.dispatch.serial") as f64,
                "calls",
                true,
            ),
        );
        // Packed-kernel counters. Pack calls/bytes and executed MACs are
        // shape-deterministic (hard); tile counts depend on how rayon chunks
        // rows across threads, so they only warn (soft).
        m.insert(
            "pack_calls".into(),
            Metric::new(self.counter_delta("tensor.matmul.pack.calls") as f64, "calls", true),
        );
        m.insert(
            "pack_bytes".into(),
            Metric::new(self.counter_delta("tensor.matmul.pack.bytes") as f64, "bytes", true),
        );
        m.insert(
            "kernel_macs".into(),
            Metric::new(self.counter_delta("tensor.matmul.kernel.macs") as f64, "MAC", true),
        );
        m.insert(
            "kernel_tiles".into(),
            Metric::new(
                self.counter_delta("tensor.matmul.kernel.tiles") as f64,
                "tiles",
                false,
            ),
        );
        m.insert(
            "kernel_direct".into(),
            Metric::new(
                self.counter_delta("tensor.matmul.kernel.direct") as f64,
                "calls",
                true,
            ),
        );
    }

    /// Peak-memory watermarks accumulated during the workload. Tape and
    /// parameter peaks are shape-deterministic (hard); the scratch-pool
    /// peak depends on thread scheduling (soft).
    fn add_memory_metrics(&self, m: &mut BTreeMap<String, Metric>) {
        m.insert(
            "tape_peak_bytes".into(),
            Metric::new(self.gauge("tensor.graph.tape_bytes.peak"), "bytes", true),
        );
        m.insert(
            "scratch_peak_bytes".into(),
            Metric::new(self.gauge("tensor.scratch.bytes_pooled.peak"), "bytes", false),
        );
    }
}

/// Runs `work` `warmup + repeats` times; the timed repeats land in the
/// `bench.<name>.us` histogram (visible to `--metrics-out`) and the
/// counter/gauge deltas around them are captured. `work` returns the
/// number of work units it performed.
fn measure(
    name: &str,
    warmup: usize,
    repeats: usize,
    mut work: impl FnMut() -> u64,
) -> Measured {
    for _ in 0..warmup {
        work();
    }
    // Re-arm the high-watermark gauges so peaks are per-workload. A plain
    // `set(0)` (never `Registry::reset`) keeps every cached macro handle
    // attached to the live gauge.
    for g in PEAK_GAUGES {
        registry().gauge(g).set(0.0);
    }
    let hist_name = format!("bench.{name}.us");
    let hist = registry().histogram(&hist_name);
    let before = snapshot();
    let mut units = 0u64;
    let t0 = Instant::now();
    for _ in 0..repeats {
        let r0 = Instant::now();
        units += work();
        hist.observe(r0.elapsed().as_secs_f64() * 1e6);
    }
    let secs = t0.elapsed().as_secs_f64();
    let after = snapshot();
    let latency = hist.snapshot();
    Measured { repeats, units, secs, before, after, latency }
}

// ---------------------------------------------------------------------------
// Workloads
// ---------------------------------------------------------------------------

/// Deterministic non-random tensor fill (benchmarks must not consume RNG).
fn fill_tensor(rows: usize, cols: usize, salt: usize) -> Tensor {
    let data: Vec<f32> =
        (0..rows * cols).map(|i| (((i + salt) % 17) as f32 - 8.0) * 0.125).collect();
    Tensor::from_vec(&[rows, cols], data)
}

/// One matmul variant at `dim × dim`: 4 products per repeat, throughput in
/// MFLOP (1e6 fused multiply-adds × 2).
fn bench_matmul(spec: &TierSpec, trans_a: bool, trans_b: bool, name: &str) -> WorkloadResult {
    let d = spec.matmul_dim;
    let a = fill_tensor(d, d, 1);
    let b = fill_tensor(d, d, 5);
    let mflop_per_rep = (4 * 2 * d * d * d) as u64 / 1_000_000;
    let measured = measure(name, spec.warmup, spec.matmul_reps, || {
        let mut sink = 0.0f32;
        for _ in 0..4 {
            sink += a.matmul(&b, trans_a, trans_b).data()[0];
        }
        std::hint::black_box(sink);
        mflop_per_rep.max(1)
    });
    let mut metrics = measured.base_metrics("MFLOP");
    measured.add_tensor_metrics(&mut metrics);
    WorkloadResult { repeats: measured.repeats, metrics }
}

/// Long-sequence fused attention, forward and backward: the nt/tt-heavy
/// shape (`softmax((Q Kᵀ)/√d) V` on a sequence twice the matmul dim) that
/// the packed kernels exist for. Work units are the two forward products'
/// MFLOPs; the backward's extra matmuls ride along in the time and in the
/// hard counters.
fn bench_attention(spec: &TierSpec) -> WorkloadResult {
    let seq = spec.matmul_dim * 2;
    let dim = (spec.matmul_dim / 2).max(8);
    let q = fill_tensor(seq, dim, 3);
    let k = fill_tensor(seq, dim, 9);
    let v = fill_tensor(seq, dim, 13);
    let scale = 1.0 / (dim as f32).sqrt();
    let mflop_per_rep = (2 * 2 * seq * seq * dim) as u64 / 1_000_000;
    let params = Params::new();
    let measured = measure("attention_fused", spec.warmup, spec.matmul_reps, || {
        let mut g = Graph::new(&params, false, 0);
        let qv = g.input(q.clone());
        let kv = g.input(k.clone());
        let vv = g.input(v.clone());
        let att = g.softmax_matmul_nt(qv, kv, scale, 1.0);
        let ctx = g.matmul(att, vv);
        let loss = g.sum_all(ctx);
        std::hint::black_box(g.backward(loss));
        mflop_per_rep.max(1)
    });
    let mut metrics = measured.base_metrics("MFLOP");
    measured.add_tensor_metrics(&mut metrics);
    measured.add_memory_metrics(&mut metrics);
    WorkloadResult { repeats: measured.repeats, metrics }
}

/// WordPiece tokenization over the corpus page texts; throughput in tokens.
fn bench_wordpiece(spec: &TierSpec, dataset: &Dataset, texts: &[String]) -> WorkloadResult {
    let measured = measure("wordpiece", spec.warmup, spec.tok_reps, || {
        let mut tokens = 0u64;
        for t in texts {
            tokens += dataset.tokenizer.encode(t).len() as u64;
        }
        tokens
    });
    let mut metrics = measured.base_metrics("tokens");
    metrics.insert("texts".into(), Metric::new(texts.len() as f64, "texts", true));
    WorkloadResult { repeats: measured.repeats, metrics }
}

/// End-to-end briefing of rendered HTML pages with a trained model.
fn bench_brief(spec: &TierSpec, briefer: &Briefer, htmls: &[String]) -> WorkloadResult {
    let measured = measure("brief_corpus", spec.warmup, spec.brief_reps, || {
        briefer.brief_corpus(htmls).iter().filter(|r| r.is_ok()).count() as u64
    });
    let mut metrics = measured.base_metrics("pages");
    measured.add_tensor_metrics(&mut metrics);
    measured.add_memory_metrics(&mut metrics);
    WorkloadResult { repeats: measured.repeats, metrics }
}

/// One training epoch (forward + backward + Adam) per repeat over a fixed
/// example slice. The model is built once and keeps evolving — the *work
/// shape* (and therefore every hard metric) is identical each repeat.
fn bench_train(spec: &TierSpec, dataset: &Dataset) -> WorkloadResult {
    let model_cfg = ModelConfig::scaled(dataset.tokenizer.vocab().len());
    let mut model = wb_core::JointModel::new(wb_core::JointVariant::JointWb, model_cfg, 11);
    let n = dataset.examples.len().min(8);
    let indices: Vec<usize> = (0..n).collect();
    let mut cfg = TrainConfig::scaled(1);
    cfg.batch_size = n.max(1);
    cfg.warmup = 1;
    let measured = measure("train_step", spec.warmup, spec.train_reps, || {
        wb_core::train(&mut model, &dataset.examples, &indices, cfg);
        n as u64
    });
    let mut metrics = measured.base_metrics("examples");
    measured.add_tensor_metrics(&mut metrics);
    measured.add_memory_metrics(&mut metrics);
    metrics.insert(
        "params_bytes".into(),
        Metric::new(measured.gauge("tensor.params.bytes"), "bytes", true),
    );
    WorkloadResult { repeats: measured.repeats, metrics }
}

// ---------------------------------------------------------------------------
// The run
// ---------------------------------------------------------------------------

fn bench_dataset_config(spec: &TierSpec) -> DatasetConfig {
    let mut cfg = DatasetConfig::tiny();
    cfg.subjects_per_family = spec.subjects;
    cfg.pages_per_topic = spec.pages_per_topic;
    cfg.seed = 7;
    cfg
}

/// Runs every workload at `tier` and assembles the report. Progress goes
/// to stderr; nothing here reads RNG outside the seeded corpus/model setup.
pub fn run(tier: Tier, label: &str) -> BenchReport {
    let spec = tier.spec();
    let mut workloads = BTreeMap::new();

    eprintln!("[bench] tier {}: matmul {1}×{1}", tier.name(), spec.matmul_dim);
    for (ta, tb, name) in [
        (false, false, "matmul_nn"),
        (false, true, "matmul_nt"),
        (true, false, "matmul_tn"),
        (true, true, "matmul_tt"),
    ] {
        workloads.insert(name.to_string(), bench_matmul(&spec, ta, tb, name));
    }

    eprintln!(
        "[bench] attention_fused: seq {} × dim {}",
        spec.matmul_dim * 2,
        (spec.matmul_dim / 2).max(8)
    );
    workloads.insert("attention_fused".into(), bench_attention(&spec));

    eprintln!(
        "[bench] corpus: {} subjects × {} pages/topic",
        spec.subjects, spec.pages_per_topic
    );
    let dataset = Dataset::generate(&bench_dataset_config(&spec));
    // Surface texts for the tokenizer workload: raw sentences, no specials.
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(31);
    let topics = dataset.taxonomy.topics();
    let mut texts = Vec::new();
    let mut htmls = Vec::new();
    for i in 0..spec.brief_pages {
        let topic = &topics[i % topics.len()];
        let page = generate_page(topic, PageConfig::default(), &mut rng);
        texts.push(page.sentences.iter().map(|s| s.text()).collect::<Vec<_>>().join(" "));
        htmls.push(page.dom.to_html());
    }

    eprintln!("[bench] wordpiece over {} texts", texts.len());
    workloads.insert("wordpiece".into(), bench_wordpiece(&spec, &dataset, &texts));

    eprintln!("[bench] training a briefer ({} epochs) for brief_corpus", spec.setup_epochs);
    let mut tc = TrainConfig::scaled(spec.setup_epochs);
    tc.lr = 0.02;
    let model_cfg = ModelConfig::scaled(dataset.tokenizer.vocab().len());
    let briefer = Briefer::train_with(&dataset, model_cfg, tc, 7);
    eprintln!("[bench] brief_corpus over {} pages", htmls.len());
    workloads.insert("brief_corpus".into(), bench_brief(&spec, &briefer, &htmls));

    eprintln!("[bench] train_step");
    workloads.insert("train_step".into(), bench_train(&spec, &dataset));

    BenchReport {
        schema: SCHEMA.to_string(),
        label: label.to_string(),
        tier: tier.name().to_string(),
        env: env_fingerprint(),
        workloads,
    }
}

/// The environment fingerprint stored in every report: enough to explain
/// "why did the soft metrics move" when comparing files across machines.
pub fn env_fingerprint() -> BTreeMap<String, String> {
    let mut env = BTreeMap::new();
    env.insert("os".into(), std::env::consts::OS.to_string());
    env.insert("arch".into(), std::env::consts::ARCH.to_string());
    env.insert("threads".into(), rayon::current_num_threads().to_string());
    env.insert(
        "profile".into(),
        if cfg!(debug_assertions) { "debug" } else { "release" }.to_string(),
    );
    env.insert("version".into(), env!("CARGO_PKG_VERSION").to_string());
    if let Ok(scale) = std::env::var("WB_SCALE") {
        env.insert("wb_scale".into(), scale);
    }
    env
}

// ---------------------------------------------------------------------------
// Persistence (wb-obs JSON: deterministic, dependency-free)
// ---------------------------------------------------------------------------

impl BenchReport {
    /// Renders the report as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut root = BTreeMap::new();
        root.insert("schema".into(), Json::Str(self.schema.clone()));
        root.insert("label".into(), Json::Str(self.label.clone()));
        root.insert("tier".into(), Json::Str(self.tier.clone()));
        root.insert(
            "env".into(),
            Json::Obj(
                self.env.iter().map(|(k, v)| (k.clone(), Json::Str(v.clone()))).collect(),
            ),
        );
        let workloads = self
            .workloads
            .iter()
            .map(|(name, w)| {
                let metrics = w
                    .metrics
                    .iter()
                    .map(|(k, m)| {
                        let mut obj = BTreeMap::new();
                        obj.insert("value".into(), Json::Num(m.value));
                        obj.insert("unit".into(), Json::Str(m.unit.clone()));
                        obj.insert("hard".into(), Json::Bool(m.hard));
                        (k.clone(), Json::Obj(obj))
                    })
                    .collect();
                let mut obj = BTreeMap::new();
                obj.insert("repeats".into(), Json::Num(w.repeats as f64));
                obj.insert("metrics".into(), Json::Obj(metrics));
                (name.clone(), Json::Obj(obj))
            })
            .collect();
        root.insert("workloads".into(), Json::Obj(workloads));
        Json::Obj(root).render()
    }

    /// Parses a report written by [`BenchReport::to_json`].
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = Json::parse(text)?;
        let str_field = |key: &str| -> Result<String, String> {
            match v.get(key) {
                Some(Json::Str(s)) => Ok(s.clone()),
                _ => Err(format!("missing string field `{key}`")),
            }
        };
        let schema = str_field("schema")?;
        if schema != SCHEMA {
            return Err(format!("unsupported bench schema `{schema}` (expected {SCHEMA})"));
        }
        let mut env = BTreeMap::new();
        if let Some(Json::Obj(map)) = v.get("env") {
            for (k, val) in map {
                if let Json::Str(s) = val {
                    env.insert(k.clone(), s.clone());
                }
            }
        }
        let mut workloads = BTreeMap::new();
        let Some(Json::Obj(wls)) = v.get("workloads") else {
            return Err("missing `workloads` object".into());
        };
        for (name, w) in wls {
            let repeats = w
                .get("repeats")
                .and_then(Json::as_num)
                .ok_or_else(|| format!("workload `{name}` missing repeats"))?
                as usize;
            let mut metrics = BTreeMap::new();
            let Some(Json::Obj(ms)) = w.get("metrics") else {
                return Err(format!("workload `{name}` missing metrics"));
            };
            for (k, m) in ms {
                let value = m
                    .get("value")
                    .and_then(Json::as_num)
                    .ok_or_else(|| format!("metric `{name}/{k}` missing value"))?;
                let unit = match m.get("unit") {
                    Some(Json::Str(s)) => s.clone(),
                    _ => String::new(),
                };
                let hard = matches!(m.get("hard"), Some(Json::Bool(true)));
                metrics.insert(k.clone(), Metric { value, unit, hard });
            }
            workloads.insert(name.clone(), WorkloadResult { repeats, metrics });
        }
        Ok(BenchReport {
            schema,
            label: str_field("label")?,
            tier: str_field("tier")?,
            env,
            workloads,
        })
    }

    /// Writes the report to `path`.
    pub fn save(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("cannot write {path}: {e}"))
    }

    /// Loads a report from `path`.
    pub fn load(path: &str) -> Result<BenchReport, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Self::from_json(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// A human-readable summary table of the report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "bench `{}` (tier {}, {} threads, {} build)\n",
            self.label,
            self.tier,
            self.env.get("threads").map(String::as_str).unwrap_or("?"),
            self.env.get("profile").map(String::as_str).unwrap_or("?"),
        ));
        for (name, w) in &self.workloads {
            out.push_str(&format!("  {name} (×{}):\n", w.repeats));
            for (k, m) in &w.metrics {
                let tag = if m.hard { "hard" } else { "soft" };
                out.push_str(&format!("    {k:<20} {:>16.3} {:<8} [{tag}]\n", m.value, m.unit));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Baseline comparison
// ---------------------------------------------------------------------------

/// Symmetric relative drift of `current` vs `base`, in percent.
fn drift_pct(base: f64, current: f64) -> f64 {
    if base == 0.0 && current == 0.0 {
        return 0.0;
    }
    100.0 * (current - base).abs() / base.abs().max(1e-12)
}

/// Diffs `current` against `baseline` metric by metric. Hard metrics
/// drifting beyond `tolerance_pct` (or missing) are failures; soft drifts
/// are warnings. Extra workloads/metrics in `current` are ignored — a new
/// commit may legitimately add instrumentation.
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    tolerance_pct: f64,
) -> Comparison {
    let mut cmp = Comparison::default();
    // Dispatch counts are invariant across pools with >1 thread but flip
    // at the 1↔N boundary, so flag fingerprint disagreement up front —
    // it explains any dispatch failures below.
    let (bt, ct) = (baseline.env.get("threads"), current.env.get("threads"));
    if bt != ct {
        cmp.warnings.push(format!(
            "env/threads: baseline ran with {} threads, current with {} — \
             dispatch counts are only comparable between multi-threaded pools",
            bt.map(String::as_str).unwrap_or("?"),
            ct.map(String::as_str).unwrap_or("?")
        ));
    }
    for (name, base_wl) in &baseline.workloads {
        let Some(cur_wl) = current.workloads.get(name) else {
            cmp.failures.push(format!("workload `{name}` missing from current run"));
            continue;
        };
        for (key, base_m) in &base_wl.metrics {
            let Some(cur_m) = cur_wl.metrics.get(key) else {
                let msg = format!("{name}/{key}: metric missing from current run");
                if base_m.hard {
                    cmp.failures.push(msg);
                } else {
                    cmp.warnings.push(msg);
                }
                continue;
            };
            let pct = drift_pct(base_m.value, cur_m.value);
            if pct <= tolerance_pct {
                cmp.within += 1;
                continue;
            }
            let msg = format!(
                "{name}/{key}: {:.3} -> {:.3} {} ({pct:.1}% drift > {tolerance_pct}% tolerance)",
                base_m.value, cur_m.value, cur_m.unit
            );
            if base_m.hard {
                cmp.failures.push(msg);
            } else {
                cmp.warnings.push(msg);
            }
        }
    }
    cmp
}

// ---------------------------------------------------------------------------
// CLI driver (shared by `wb bench` and the `perf_trajectory` binary)
// ---------------------------------------------------------------------------

/// Options of one `wb bench` invocation.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Use the quick (CI) tier regardless of `WB_SCALE`.
    pub quick: bool,
    /// Report label (also the default output filename suffix).
    pub label: String,
    /// Output path for the report (`None` → `BENCH_<label>.json`).
    pub out: Option<String>,
    /// Baseline report to diff against, if any.
    pub baseline: Option<String>,
    /// Drift tolerance in percent.
    pub tolerance_pct: f64,
    /// Compare an *existing* report file instead of running workloads.
    pub compare_only: Option<String>,
}

impl Default for CliOptions {
    fn default() -> Self {
        CliOptions {
            quick: false,
            label: "local".into(),
            out: None,
            baseline: None,
            tolerance_pct: 10.0,
            compare_only: None,
        }
    }
}

/// Runs the bench CLI: measures (or loads) a report, optionally diffs it
/// against a baseline. Returns the process exit code — `1` when a hard
/// metric regressed (the caller exits directly, bypassing usage errors).
pub fn run_cli(opts: &CliOptions) -> Result<i32, String> {
    let report = match &opts.compare_only {
        Some(path) => BenchReport::load(path)?,
        None => {
            let report = run(Tier::resolve(opts.quick), &opts.label);
            let out = opts.out.clone().unwrap_or_else(|| format!("BENCH_{}.json", opts.label));
            report.save(&out)?;
            println!("wrote {out}");
            report
        }
    };
    print!("{}", report.render());
    let Some(baseline_path) = &opts.baseline else {
        return Ok(0);
    };
    let baseline = BenchReport::load(baseline_path)?;
    let cmp = compare(&baseline, &report, opts.tolerance_pct);
    for w in &cmp.warnings {
        println!("warn: {w}");
    }
    for f in &cmp.failures {
        println!("FAIL: {f}");
    }
    println!(
        "baseline {}: {} within tolerance, {} warnings, {} failures",
        baseline.label,
        cmp.within,
        cmp.warnings.len(),
        cmp.failures.len()
    );
    Ok(if cmp.failures.is_empty() { 0 } else { 1 })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_report(flops: f64, throughput: f64) -> BenchReport {
        let mut metrics = BTreeMap::new();
        metrics.insert("flops".into(), Metric::new(flops, "FLOP", true));
        metrics.insert("throughput".into(), Metric::new(throughput, "MFLOP/s", false));
        let mut workloads = BTreeMap::new();
        workloads.insert("matmul_nn".into(), WorkloadResult { repeats: 3, metrics });
        BenchReport {
            schema: SCHEMA.to_string(),
            label: "test".into(),
            tier: "quick".into(),
            env: env_fingerprint(),
            workloads,
        }
    }

    #[test]
    fn tiers_scale_monotonically() {
        let dims: Vec<usize> = [Tier::Tiny, Tier::Quick, Tier::Small, Tier::Full]
            .iter()
            .map(|t| t.spec().matmul_dim)
            .collect();
        assert!(dims.windows(2).all(|w| w[0] < w[1]), "{dims:?}");
        assert_eq!(Tier::resolve(true), Tier::Quick);
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = toy_report(1234.0, 56.78);
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        // Deterministic rendering: render(parse(render(x))) == render(x).
        assert_eq!(parsed.to_json(), r.to_json());
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let text = toy_report(1.0, 1.0).to_json().replace(SCHEMA, "wb-bench-v999");
        let err = BenchReport::from_json(&text).unwrap_err();
        assert!(err.contains("unsupported bench schema"), "{err}");
    }

    #[test]
    fn compare_splits_hard_failures_from_soft_warnings() {
        let base = toy_report(1000.0, 100.0);
        // Identical runs: everything within tolerance.
        let same = compare(&base, &base.clone(), 5.0);
        assert!(same.failures.is_empty() && same.warnings.is_empty());
        assert_eq!(same.within, 2);
        // Hard drift fails; soft drift only warns.
        let drifted = compare(&base, &toy_report(1200.0, 50.0), 5.0);
        assert_eq!(drifted.failures.len(), 1, "{:?}", drifted.failures);
        assert!(drifted.failures[0].contains("matmul_nn/flops"));
        assert_eq!(drifted.warnings.len(), 1, "{:?}", drifted.warnings);
        assert!(drifted.warnings[0].contains("throughput"));
        // A missing workload is always a failure.
        let empty = BenchReport { workloads: BTreeMap::new(), ..base.clone() };
        assert_eq!(compare(&base, &empty, 5.0).failures.len(), 1);
    }

    #[test]
    fn drift_is_symmetric_and_zero_safe() {
        assert_eq!(drift_pct(0.0, 0.0), 0.0);
        assert!((drift_pct(100.0, 110.0) - 10.0).abs() < 1e-9);
        assert!((drift_pct(100.0, 90.0) - 10.0).abs() < 1e-9);
        // Appearing from zero is an unbounded drift.
        assert!(drift_pct(0.0, 1.0) > 1e6);
    }

    #[test]
    fn measure_captures_counters_latency_and_work() {
        let a = fill_tensor(16, 16, 0);
        let b = fill_tensor(16, 16, 3);
        let m = measure("test.perf.unit", 1, 3, || {
            std::hint::black_box(a.matmul(&b, false, false).data()[0]);
            7
        });
        assert_eq!(m.repeats, 3);
        assert_eq!(m.units, 21);
        // Three timed repeats × one matmul, at least (other tests share
        // the global registry, so deltas are lower bounds).
        assert!(m.counter_delta("tensor.matmul.flops") >= 3 * 2 * 16 * 16 * 16);
        let metrics = m.base_metrics("widgets");
        assert_eq!(metrics["work_units"].value, 21.0);
        assert!(metrics["work_units"].hard);
        assert!(metrics["throughput"].value > 0.0);
        assert!(!metrics["throughput"].hard);
        assert!(metrics.contains_key("latency_p50_us"));
        assert!(metrics.contains_key("latency_p99_us"));
    }
}
