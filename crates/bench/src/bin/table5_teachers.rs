//! Table V — distillation methods applied to different teacher models on
//! *unseen domains*: BERT-Single (two single-task teachers), Naive-Join and
//! Joint-WB, with No Distill / Dual-Distill / Pip-Distill / Tri-Distill
//! rows. Reports EM for topic generation and F1 for attribute extraction.
//!
//! Run: `cargo run --release -p wb-bench --bin table5_teachers`

use wb_bench::*;
use wb_core::{
    train, DistillConfig, DistillParts, DualDistill, Extractor, ExtractorPriors, Generator,
    JointExtractionTeacher, JointGenerationTeacher, JointModel, JointTeacherCache,
    JointVariant, PhraseBank, TeacherCache, TriDistill,
};
use wb_corpus::{Dataset, Example};
use wb_eval::ResultTable;
use wb_nn::EmbedderKind;

/// Per-teacher results: `(method, EM, F1)` rows.
struct Column {
    teacher_name: &'static str,
    rows: Vec<(String, Option<f64>, Option<f64>)>,
}

/// Replaces every example's `topic_target` with a generated topic — the
/// prior-feeding step of Pip-Distill.
fn with_generated_topics(
    d: &Dataset,
    gen: &(dyn Fn(&Example) -> Vec<u32> + Sync),
) -> Vec<Example> {
    use rayon::prelude::*;
    d.examples
        .par_iter()
        .map(|ex| {
            let mut out = ex.clone();
            let mut topic = gen(ex);
            topic.push(wb_text::EOS);
            out.topic_target = topic;
            out
        })
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("Table V at scale {}", scale.name());
    let d = timed("dataset", || experiment_dataset(scale));
    let setting = DistillSetting::new(&d, scale.n_unseen(), 7);
    let mc = model_config(&d);
    let tc = train_config_contextual(scale);
    let dc = DistillConfig::default();
    let pre = pretrain_for(&d, &mc, &setting.seen_train, scale);
    let mut columns: Vec<Column> = Vec::new();

    // Helper: distill a generation student + an extraction student from a
    // pair of teacher views, then Pip-Distill the extraction student with
    // the generation student's outputs as topic priors.
    let run_dual_and_pip = |gen_teacher: &(dyn wb_core::DistillTeacher + Sync),
                            ext_teacher: &(dyn wb_core::DistillTeacher + Sync),
                            col: &mut Column| {
        let gen_cache =
            TeacherCache::build(gen_teacher, &d.examples, &setting.split.train, dc.gamma);
        let gen_bank = PhraseBank::build(gen_teacher, &phrase_bank_inputs(&d, &setting.seen));
        let gen_student = timed("dual generation student", || {
            let mut s = Generator::new(EmbedderKind::Static, false, mc, 9);
            pre.warm_start(&mut s, EmbedderKind::Static);
            let s = s;
            let mut dd =
                DualDistill::new(s, gen_cache, gen_bank.clone(), dc, DistillParts::dual(), 3)
                    .with_seen_topics(&setting.seen);
            train(&mut dd, &d.examples, &setting.split.train, train_config(scale));
            dd.into_student()
        });

        let ext_cache =
            TeacherCache::build(ext_teacher, &d.examples, &setting.split.train, dc.gamma);
        let ext_bank = PhraseBank::build(ext_teacher, &phrase_bank_inputs(&d, &setting.seen));
        let ext_student = timed("dual extraction student", || {
            let mut s = Extractor::new(EmbedderKind::Static, ExtractorPriors::default(), mc, 9);
            pre.warm_start(&mut s, EmbedderKind::Static);
            let s = s;
            let mut dd = DualDistill::new(
                s,
                ext_cache.clone(),
                ext_bank.clone(),
                dc,
                DistillParts::dual(),
                3,
            )
            .with_seen_topics(&setting.seen);
            train(&mut dd, &d.examples, &setting.split.train, train_config(scale));
            dd.into_student()
        });

        let (gen_scores, _) =
            eval_generation(&d, &setting.test_unseen, |ex| gen_student.generate(ex));
        let ext_scores =
            eval_extraction(&d, &setting.test_unseen, |ex| ext_student.predict(ex));
        col.rows.push(("Dual-Distill".into(), Some(gen_scores.em()), Some(ext_scores.f1())));

        // Pip-Distill: feed the generation student's topics as priors to
        // a topic-aware extraction student.
        let gen_ref = &gen_student;
        let piped = with_generated_topics(&d, &|ex| gen_ref.generate(ex));
        let pip_student = timed("pip extraction student", || {
            let mut s = Extractor::new(
                EmbedderKind::Static,
                ExtractorPriors { section: false, topic: true },
                mc,
                9,
            );
            pre.warm_start(&mut s, EmbedderKind::Static);
            let s = s;
            let mut dd = DualDistill::new(s, ext_cache, ext_bank, dc, DistillParts::dual(), 3)
                .with_seen_topics(&setting.seen);
            train(&mut dd, &piped, &setting.split.train, train_config(scale));
            dd.into_student()
        });
        let pip_scores = {
            use rayon::prelude::*;
            let per: Vec<_> = setting
                .test_unseen
                .par_iter()
                .map(|&i| {
                    let ex = &piped[i];
                    let pred = wb_eval::bio_to_spans(&pip_student.predict(ex));
                    let gold: Vec<(usize, usize)> =
                        ex.attr_spans.iter().map(|&(_, s, e)| (s, e)).collect();
                    let mut s = wb_eval::ExtractionScores::default();
                    s.update(&pred, &gold);
                    s
                })
                .collect();
            let mut total = wb_eval::ExtractionScores::default();
            for s in &per {
                total.merge(s);
            }
            total
        };
        col.rows.push(("Pip-Distill".into(), None, Some(pip_scores.f1())));
    };

    // --- Column 1: BERT-Single teachers ---
    {
        let mut col = Column { teacher_name: "BERT-Single", rows: Vec::new() };
        let gen_teacher = timed("BERT-Single generation teacher", || {
            let mut t = Generator::new(EmbedderKind::BertSum, false, mc, 1);
            pre.warm_start(&mut t, EmbedderKind::BertSum);
            train(&mut t, &d.examples, &setting.seen_train, tc);
            t
        });
        let ext_teacher = timed("BERT-Single extraction teacher", || {
            let mut t =
                Extractor::new(EmbedderKind::BertSum, ExtractorPriors::default(), mc, 1);
            pre.warm_start(&mut t, EmbedderKind::BertSum);
            train(&mut t, &d.examples, &setting.seen_train, tc);
            t
        });
        let (gen_nd, _) =
            eval_generation(&d, &setting.test_unseen, |ex| gen_teacher.generate(ex));
        let ext_nd = eval_extraction(&d, &setting.test_unseen, |ex| ext_teacher.predict(ex));
        col.rows.push(("No Distill".into(), Some(gen_nd.em()), Some(ext_nd.f1())));
        run_dual_and_pip(&gen_teacher, &ext_teacher, &mut col);
        col.rows.push(("Tri-Distill".into(), None, None)); // needs a joint teacher
        columns.push(col);
    }

    // --- Columns 2 and 3: joint teachers ---
    for (teacher_name, variant) in
        [("Naive-Join", JointVariant::NaiveJoin), ("Joint-WB", JointVariant::JointWb)]
    {
        let mut col = Column { teacher_name, rows: Vec::new() };
        let teacher = timed(teacher_name, || {
            let mut t = JointModel::new(variant, mc, 1);
            pre.warm_start(&mut t, EmbedderKind::BertSum);
            train(&mut t, &d.examples, &setting.seen_train, tc);
            t
        });
        let (gen_nd, _) = eval_generation(&d, &setting.test_unseen, |ex| teacher.generate(ex));
        let ext_nd = eval_extraction(&d, &setting.test_unseen, |ex| teacher.predict_tags(ex));
        col.rows.push(("No Distill".into(), Some(gen_nd.em()), Some(ext_nd.f1())));

        let gen_view = JointGenerationTeacher(&teacher);
        let ext_view = JointExtractionTeacher(&teacher);
        run_dual_and_pip(&gen_view, &ext_view, &mut col);

        // Tri-Distill: a joint student distilled across both tasks.
        let tri_student = timed("tri student", || {
            let cache =
                JointTeacherCache::build(&teacher, &d.examples, &setting.split.train, dc.gamma);
            let bank = PhraseBank::build(&gen_view, &phrase_bank_inputs(&d, &setting.seen));
            let mut student = JointModel::new(variant, mc, 9);
            pre.warm_start(&mut student, EmbedderKind::BertSum);
            let mut tri =
                TriDistill::new(student, cache, bank, dc, 3).with_seen_topics(&setting.seen);
            train(&mut tri, &d.examples, &setting.split.train, tc);
            tri.into_student()
        });
        let (tri_gen, _) =
            eval_generation(&d, &setting.test_unseen, |ex| tri_student.generate(ex));
        let tri_ext =
            eval_extraction(&d, &setting.test_unseen, |ex| tri_student.predict_tags(ex));
        col.rows.push(("Tri-Distill".into(), Some(tri_gen.em()), Some(tri_ext.f1())));
        columns.push(col);
    }

    // Assemble the table: columns (teacher, metric) × rows (method).
    let mut header: Vec<String> = vec!["Method".into()];
    for col in &columns {
        header.push(format!("{} EM", col.teacher_name));
        header.push(format!("{} F1", col.teacher_name));
    }
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = ResultTable::new(
        &format!(
            "TABLE V: Performance on previously unseen domains with different teacher models (scale {})",
            scale.name()
        ),
        &header_refs,
    );
    for method in ["No Distill", "Dual-Distill", "Pip-Distill", "Tri-Distill"] {
        let mut metrics: Vec<Option<f64>> = Vec::new();
        for col in &columns {
            match col.rows.iter().find(|(m, _, _)| m == method) {
                Some((_, em, f1)) => {
                    metrics.push(*em);
                    metrics.push(*f1);
                }
                None => {
                    metrics.push(None);
                    metrics.push(None);
                }
            }
        }
        table.push_metrics(method, &metrics);
    }
    save_table(&table, "table5_teachers");
}
