//! Table X — human evaluation of topic generation on 40 seen-domain and 40
//! unseen-domain pages, scored 0/1/2 by a panel of ten (simulated) judges
//! with Cohen's κ reported (the paper's volunteers reach κ > 0.83; see
//! DESIGN.md §2 for the annotator-panel substitution).
//!
//! Run: `cargo run --release -p wb-bench --bin table10_human_eval`

use wb_bench::*;
use wb_core::{
    train, DistillConfig, DistillParts, DualDistill, Generator, JointGenerationTeacher,
    JointModel, JointTeacherCache, JointVariant, PhraseBank, TeacherCache, TriDistill,
};
use wb_corpus::Example;
use wb_eval::{Panel, ResultTable};
use wb_nn::EmbedderKind;

fn main() {
    let scale = Scale::from_env();
    eprintln!("Table X at scale {}", scale.name());
    let d = timed("dataset", || experiment_dataset(scale));
    let setting = DistillSetting::new(&d, scale.n_unseen(), 7);
    let mc = model_config(&d);
    let tc_ctx = train_config_contextual(scale);
    let dc = DistillConfig::default();
    let pre = pretrain_for(&d, &mc, &setting.seen_train, scale);

    // 40 seen-domain + 40 unseen-domain evaluation pages (§IV-E).
    let seen_pages: Vec<usize> = setting.test_seen.iter().copied().take(40).collect();
    let unseen_pages: Vec<usize> = setting.test_unseen.iter().copied().take(40).collect();

    let items = |indices: &[usize], gen: &(dyn Fn(&Example) -> Vec<u32> + Sync)| {
        use rayon::prelude::*;
        indices
            .par_iter()
            .map(|&i| {
                let ex = &d.examples[i];
                (gen(ex), ex.topic_target[..ex.topic_target.len() - 1].to_vec())
            })
            .collect::<Vec<_>>()
    };

    let mut table = ResultTable::new(
        &format!(
            "TABLE X: Average score of human evaluation for topic generation (10 judges, scale {})",
            scale.name()
        ),
        &["Method", "Seen domains", "Unseen domains", "kappa seen", "kappa unseen"],
    );

    let mut add_row = |name: &str, gen: &(dyn Fn(&Example) -> Vec<u32> + Sync)| {
        let mut panel_seen = Panel::new(10, 42, 0.03);
        let mut panel_unseen = Panel::new(10, 43, 0.03);
        let rs = panel_seen.evaluate(&items(&seen_pages, gen));
        let ru = panel_unseen.evaluate(&items(&unseen_pages, gen));
        table.push_metrics(
            name,
            &[Some(rs.mean), Some(ru.mean), Some(rs.kappa), Some(ru.kappa)],
        );
    };

    // Baselines trained on seen topics only.
    let bert_gen = timed("BERT->[Bi-LSTM,LSTM]", || {
        let mut m = Generator::new(EmbedderKind::Bert, false, mc, 1);
        pre.warm_start(&mut m, EmbedderKind::Bert);
        train(&mut m, &d.examples, &setting.seen_train, tc_ctx);
        m
    });
    add_row("BERT->[Bi-LSTM,LSTM]", &|ex| bert_gen.generate(ex));

    let bertsum_gen = timed("BERTSUM->[Bi-LSTM,LSTM]", || {
        let mut m = Generator::new(EmbedderKind::BertSum, false, mc, 1);
        pre.warm_start(&mut m, EmbedderKind::BertSum);
        train(&mut m, &d.examples, &setting.seen_train, tc_ctx);
        m
    });
    add_row("BERTSUM->[Bi-LSTM,LSTM]", &|ex| bertsum_gen.generate(ex));

    let naive = timed("Naive joint", || {
        let mut m = JointModel::new(JointVariant::NaiveJoin, mc, 1);
        pre.warm_start(&mut m, EmbedderKind::BertSum);
        train(&mut m, &d.examples, &setting.seen_train, tc_ctx);
        m
    });
    add_row("Naive joint", &|ex| naive.generate(ex));

    let attboth = timed("Att-Extractor + Att-Generator", || {
        let mut m = JointModel::new(JointVariant::AttBoth, mc, 1);
        pre.warm_start(&mut m, EmbedderKind::BertSum);
        train(&mut m, &d.examples, &setting.seen_train, tc_ctx);
        m
    });
    add_row("Att-Extractor + Att-Generator", &|ex| attboth.generate(ex));

    let pipboth = timed("Pip-Extractor + Pip-Generator", || {
        let mut m = JointModel::new(JointVariant::PipBoth, mc, 1);
        pre.warm_start(&mut m, EmbedderKind::BertSum);
        train(&mut m, &d.examples, &setting.seen_train, tc_ctx);
        m
    });
    add_row("Pip-Extractor + Pip-Generator", &|ex| pipboth.generate(ex));

    // Distilled students from the Joint-WB teacher.
    let teacher = timed("Joint-WB teacher", || {
        let mut t = JointModel::new(JointVariant::JointWb, mc, 1);
        pre.warm_start(&mut t, EmbedderKind::BertSum);
        train(&mut t, &d.examples, &setting.seen_train, tc_ctx);
        t
    });
    let gen_view = JointGenerationTeacher(&teacher);
    let cache = TeacherCache::build(&gen_view, &d.examples, &setting.split.train, dc.gamma);
    let bank = PhraseBank::build(&gen_view, &phrase_bank_inputs(&d, &setting.seen));

    for (name, parts) in
        [("ID only", DistillParts::id_only()), ("UD only", DistillParts::ud_only())]
    {
        let student = timed(name, || {
            let mut s = Generator::new(EmbedderKind::Static, false, mc, 9);
            pre.warm_start(&mut s, EmbedderKind::Static);
            let s = s;
            let mut dd = DualDistill::new(s, cache.clone(), bank.clone(), dc, parts, 3)
                .with_seen_topics(&setting.seen);
            train(&mut dd, &d.examples, &setting.split.train, train_config(scale));
            dd.into_student()
        });
        add_row(name, &|ex| student.generate(ex));
    }

    let tri = timed("Tri-Distill", || {
        let jcache =
            JointTeacherCache::build(&teacher, &d.examples, &setting.split.train, dc.gamma);
        let mut student = JointModel::new(JointVariant::JointWb, mc, 9);
        pre.warm_start(&mut student, EmbedderKind::BertSum);
        let mut t = TriDistill::new(student, jcache, bank.clone(), dc, 3)
            .with_seen_topics(&setting.seen);
        train(&mut t, &d.examples, &setting.split.train, tc_ctx);
        t.into_student()
    });
    add_row("Tri-Distill (our proposed)", &|ex| tri.generate(ex));

    table.push_metrics("Full score", &[Some(2.0), Some(2.0), None, None]);
    save_table(&table, "table10_human_eval");
}
