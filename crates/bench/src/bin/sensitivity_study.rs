//! §IV-D model sensitivity — 300 synthetic webpages built by concatenating
//! two real pages of different topics at 50-50 / 70-30 / 30-70 length
//! proportions. The paper observes Joint-WB predicts from the content that
//! appears *first*, while the distilled models follow the *larger* portion.
//!
//! Run: `cargo run --release -p wb-bench --bin sensitivity_study`

use wb_bench::*;
use wb_core::{
    build_pairs, content_sensitivity, train, DistillConfig, DistillParts, DualDistill,
    Generator, JointGenerationTeacher, JointModel, JointTeacherCache, JointVariant, PhraseBank,
    TeacherCache, TriDistill,
};
use wb_eval::ResultTable;
use wb_nn::EmbedderKind;

fn main() {
    let scale = Scale::from_env();
    eprintln!("Sensitivity study at scale {}", scale.name());
    let d = timed("dataset", || experiment_dataset(scale));
    let setting = DistillSetting::new(&d, scale.n_unseen(), 7);
    let mc = model_config(&d);
    let tc = train_config_contextual(scale);
    let dc = DistillConfig::default();
    let pre = pretrain_for(&d, &mc, &setting.seen_train, scale);

    let n_pairs = if scale == Scale::Tiny { 40 } else { 300 };
    let pairs = build_pairs(&d.examples, n_pairs, 5);
    eprintln!("{} synthetic page pairs", pairs.len());

    // Joint-WB without distillation.
    let joint = timed("Joint-WB", || {
        let mut m = JointModel::new(JointVariant::JointWb, mc, 1);
        pre.warm_start(&mut m, EmbedderKind::BertSum);
        train(&mut m, &d.examples, &setting.seen_train, tc);
        m
    });

    // Dual-Distill and Tri-Distill students with Joint-WB as the teacher.
    let gen_view = JointGenerationTeacher(&joint);
    let cache = TeacherCache::build(&gen_view, &d.examples, &setting.split.train, dc.gamma);
    let bank = PhraseBank::build(&gen_view, &phrase_bank_inputs(&d, &setting.seen));
    let dual = timed("Dual-Distill student", || {
        let mut s = Generator::new(EmbedderKind::Static, false, mc, 9);
        pre.warm_start(&mut s, EmbedderKind::Static);
        let mut dd = DualDistill::new(s, cache, bank.clone(), dc, DistillParts::dual(), 3)
            .with_seen_topics(&setting.seen);
        train(&mut dd, &d.examples, &setting.split.train, train_config(scale));
        dd.into_student()
    });
    let tri = timed("Tri-Distill student", || {
        let jcache =
            JointTeacherCache::build(&joint, &d.examples, &setting.split.train, dc.gamma);
        let mut student = JointModel::new(JointVariant::JointWb, mc, 9);
        pre.warm_start(&mut student, EmbedderKind::BertSum);
        let mut t =
            TriDistill::new(student, jcache, bank, dc, 3).with_seen_topics(&setting.seen);
        train(&mut t, &d.examples, &setting.split.train, tc);
        t.into_student()
    });

    let mut table = ResultTable::new(
        &format!(
            "Content sensitivity on synthetic concatenated webpages (scale {}): fraction of predictions following the FIRST vs the LARGER content",
            scale.name()
        ),
        &["Model / proportion", "first%", "larger%", "neither%"],
    );

    for (label, prop) in [("50-50", 0.5), ("70-30", 0.7), ("30-70", 0.3)] {
        let o = content_sensitivity(&d.examples, &pairs, prop, 11, |ex| joint.generate(ex));
        table.push_metrics(
            &format!("Joint-WB @ {label}"),
            &[
                Some(o.first_content * 100.0),
                Some(o.larger_portion * 100.0),
                Some(o.neither * 100.0),
            ],
        );
        let o = content_sensitivity(&d.examples, &pairs, prop, 11, |ex| dual.generate(ex));
        table.push_metrics(
            &format!("Dual-Distill @ {label}"),
            &[
                Some(o.first_content * 100.0),
                Some(o.larger_portion * 100.0),
                Some(o.neither * 100.0),
            ],
        );
        let o = content_sensitivity(&d.examples, &pairs, prop, 11, |ex| tri.generate(ex));
        table.push_metrics(
            &format!("Tri-Distill @ {label}"),
            &[
                Some(o.first_content * 100.0),
                Some(o.larger_portion * 100.0),
                Some(o.neither * 100.0),
            ],
        );
    }

    save_table(&table, "sensitivity_study");
}
