//! Runs the complete experiment suite (every table and figure) in sequence
//! and writes all results under `results/`. Equivalent to invoking each
//! binary separately; one entry point for full reproduction runs.
//!
//! Run: `WB_SCALE=small cargo run --release -p wb-bench --bin all_experiments`

use std::process::Command;

const EXPERIMENTS: [&str; 12] = [
    "dataset_quality",
    "table4_distill_topic",
    "table5_teachers",
    "table6_extraction_baselines",
    "table7_generation_baselines",
    "table8_9_joint",
    "table10_human_eval",
    "sensitivity_study",
    "ablations",
    "attribute_breakdown",
    "multilevel_extension",
    "complexity_check",
];

fn main() {
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe dir")
        .to_path_buf();
    let t0 = std::time::Instant::now();
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n================ {name} ================");
        let status = Command::new(exe_dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            eprintln!("{name} FAILED with {status}");
            failures.push(name);
        }
    }
    println!(
        "\nAll experiments finished in {:.1} min; {} failure(s).",
        t0.elapsed().as_secs_f32() / 60.0,
        failures.len()
    );
    if !failures.is_empty() {
        eprintln!("failed: {failures:?}");
        std::process::exit(1);
    }
}
