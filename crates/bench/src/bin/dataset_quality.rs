//! §IV-A1/§IV-A2 — dataset construction statistics and quality assessment:
//! 500 randomly selected pages scored by five (simulated) judges on three
//! aspects — content-richness, topic suitability, attribute correctness —
//! with Cohen's κ, plus the corpus statistics the paper reports (page
//! counts, average page length, attributes per page, topic-phrase length).
//!
//! Run: `cargo run --release -p wb-bench --bin dataset_quality`

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use wb_bench::*;
use wb_corpus::Source;
use wb_eval::{majority_vote, Panel, ResultTable};

fn main() {
    let scale = Scale::from_env();
    eprintln!("Dataset quality at scale {}", scale.name());
    let d = timed("dataset", || experiment_dataset(scale));

    // --- Corpus statistics (§IV-A1) ---
    let (mean_len, std_len) = d.length_stats();
    let directory = d.taxonomy.by_source(Source::Directory).len();
    let swde = d.taxonomy.by_source(Source::Swde).len();
    let attrs: f64 = d.examples.iter().map(|e| e.attr_spans.len() as f64).sum::<f64>()
        / d.examples.len() as f64;
    let topic_lens: Vec<f64> =
        d.examples.iter().map(|e| (e.topic_target.len() - 1) as f64).collect();
    let topic_mean = topic_lens.iter().sum::<f64>() / topic_lens.len() as f64;
    let topic_std = (topic_lens.iter().map(|l| (l - topic_mean).powi(2)).sum::<f64>()
        / topic_lens.len() as f64)
        .sqrt();

    let mut stats = ResultTable::new(
        &format!("Dataset statistics (scale {}; paper: 655K pages, 153+7 topics, 1731.6±210.3 tokens, 4 attrs, topic length 3±0.74)", scale.name()),
        &["Statistic", "Value"],
    );
    stats.push_row(vec!["webpages".into(), d.examples.len().to_string()]);
    stats.push_row(vec!["directory topics".into(), directory.to_string()]);
    stats.push_row(vec!["swde topics".into(), swde.to_string()]);
    stats.push_row(vec![
        "avg page length (tokens)".into(),
        format!("{mean_len:.1} (std {std_len:.1})"),
    ]);
    stats.push_row(vec!["attributes per page".into(), format!("{attrs:.1}")]);
    stats.push_row(vec![
        "topic phrase length".into(),
        format!("{topic_mean:.1} (std {topic_std:.2})"),
    ]);
    stats
        .push_row(vec!["vocabulary (WordPiece)".into(), d.tokenizer.vocab().len().to_string()]);
    save_table(&stats, "dataset_statistics");

    // --- Quality panel (§IV-A2): 500 pages, 5 judges, 3 aspects ---
    let mut rng = StdRng::seed_from_u64(500);
    let mut idx: Vec<usize> = (0..d.examples.len()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(500.min(d.examples.len()));

    let mut table = ResultTable::new(
        &format!(
            "Dataset quality: {} pages x 5 judges (paper: kappa > 0.93, 92.6% topics perfectly suitable)",
            idx.len()
        ),
        &["Aspect", "mean score", "% perfect (majority)", "kappa"],
    );

    // For each aspect the judged items compare the dataset's label to the
    // ground truth it was constructed from — judges see correct labels and
    // perturb with their calibrated noise, exactly like the paper's
    // validation of an (intended-correct) dataset.
    for (aspect, seed) in
        [("content-rich", 11u64), ("topic suitable", 12), ("attributes correct", 13)]
    {
        let items: Vec<(Vec<u32>, Vec<u32>)> = idx
            .iter()
            .map(|&i| {
                let gold = d.examples[i].topic_target.clone();
                (gold.clone(), gold)
            })
            .collect();
        let mut panel = Panel::new(5, seed, 0.02);
        let r = panel.evaluate(&items);
        let perfect = (0..items.len())
            .filter(|&i| {
                let votes: Vec<u8> = r.scores.iter().map(|judge| judge[i]).collect();
                majority_vote(&votes) == 2
            })
            .count() as f64
            / items.len() as f64
            * 100.0;
        // κ is computed on a mixed-quality probe set (a constant-label batch
        // makes κ degenerate; see wb-eval docs), mirroring how agreement is
        // reported over the full range of judgements.
        table.push_metrics(aspect, &[Some(r.mean), Some(perfect), None]);
    }

    // Agreement probe over deliberately mixed-quality items.
    let probe: Vec<(Vec<u32>, Vec<u32>)> = idx
        .iter()
        .enumerate()
        .map(|(n, &i)| {
            let gold = d.examples[i].topic_target.clone();
            match n % 3 {
                0 => (gold.clone(), gold),
                1 => (vec![gold[0], 999_999], gold),
                _ => (vec![999_998, 999_999], gold),
            }
        })
        .collect();
    let mut panel = Panel::new(5, 14, 0.02);
    let r = panel.evaluate(&probe);
    table.push_metrics("inter-annotator agreement (probe)", &[None, None, Some(r.kappa)]);

    save_table(&table, "dataset_quality");
    println!(
        "Paper reference: all pages content-rich by majority vote, all topics suitable \
         (92.6% perfectly), kappa > 0.93 on every aspect."
    );
}
