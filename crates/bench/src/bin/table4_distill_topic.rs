//! Table IV — topic generation with different distillation methods:
//! No Distill / ID only / UD only / Dual-Distill, evaluated on unseen,
//! seen and all domains (EM and RM). Joint-WB is the teacher (§IV-A7-i).
//!
//! Run: `cargo run --release -p wb-bench --bin table4_distill_topic`
//! Scale with `WB_SCALE={tiny,small,full}`.

use wb_bench::*;
use wb_core::{
    train, DistillConfig, DistillParts, DualDistill, Generator, JointGenerationTeacher,
    JointModel, JointVariant, PhraseBank, TeacherCache,
};
use wb_eval::{mcnemar, ResultTable};
use wb_nn::EmbedderKind;

fn main() {
    let scale = Scale::from_env();
    eprintln!("Table IV at scale {}", scale.name());
    let d = timed("dataset", || experiment_dataset(scale));
    let setting = DistillSetting::new(&d, scale.n_unseen(), 7);
    let mc = model_config(&d);
    let tc = train_config_contextual(scale);
    let mut distill_cfg = DistillConfig::default();
    if let Ok(k) = std::env::var("WB_KAPPA") {
        distill_cfg.kappa = k.parse().expect("WB_KAPPA must be a float");
    }

    // Embedder pre-training over the *seen* training pages (the teacher's
    // world), shared by teacher and students.
    let pre = pretrain_for(&d, &mc, &setting.seen_train, scale);

    // Teacher: Joint-WB pre-trained on seen topics only.
    let teacher = timed("teacher (Joint-WB, seen topics)", || {
        let mut t = JointModel::new(JointVariant::JointWb, mc, 1);
        pre.warm_start(&mut t, EmbedderKind::BertSum);
        train(&mut t, &d.examples, &setting.seen_train, tc);
        t
    });
    let gen_view = JointGenerationTeacher(&teacher);

    // Frozen-teacher caches over the full training set and the seen-topic
    // phrase bank.
    let cache = timed("teacher cache", || {
        TeacherCache::build(&gen_view, &d.examples, &setting.split.train, distill_cfg.gamma)
    });
    let bank = PhraseBank::build(&gen_view, &phrase_bank_inputs(&d, &setting.seen));

    // Students distilled on all topics with the three loss configurations.
    let mut students = Vec::new();
    for (name, parts) in [
        ("ID only", DistillParts::id_only()),
        ("UD only", DistillParts::ud_only()),
        ("Dual-Distill", DistillParts::dual()),
    ] {
        let student = timed(name, || {
            // Students are the smaller static-embedding architecture — the
            // classic KD compression setting (teacher: Joint-WB on MiniBert).
            let mut s = Generator::new(EmbedderKind::Static, false, mc, 9);
            pre.warm_start(&mut s, EmbedderKind::Static);
            let s = s;
            let mut dd =
                DualDistill::new(s, cache.clone(), bank.clone(), distill_cfg, parts, 3)
                    .with_seen_topics(&setting.seen);
            train(&mut dd, &d.examples, &setting.split.train, train_config(scale));
            dd.into_student()
        });
        students.push((name, student));
    }

    let mut table = ResultTable::new(
        &format!(
            "TABLE IV: Topic generation with different distillation methods (scale {}, {} seen / {} unseen topics)",
            scale.name(),
            setting.seen.len(),
            setting.unseen.len()
        ),
        &["Method", "Unseen EM", "Unseen RM", "Seen EM", "Seen RM", "All EM", "All RM"],
    );

    let mut row = |name: &str, gen: &(dyn Fn(&wb_corpus::Example) -> Vec<u32> + Sync)| {
        let (unseen, unseen_exact) = eval_generation(&d, &setting.test_unseen, gen);
        let (seen, _) = eval_generation(&d, &setting.test_seen, gen);
        let (all, _) = eval_generation(&d, &setting.split.test, gen);
        table.push_metrics(
            name,
            &[
                Some(unseen.em()),
                Some(unseen.rm()),
                Some(seen.em()),
                Some(seen.rm()),
                Some(all.em()),
                Some(all.rm()),
            ],
        );
        unseen_exact
    };

    let teacher_ref = &teacher;
    let no_distill = row("No Distill", &|ex| teacher_ref.generate(ex));
    let mut dual_exact = Vec::new();
    for (name, student) in &students {
        let exact = row(name, &|ex| student.generate(ex));
        if *name == "Dual-Distill" {
            dual_exact = exact;
        }
    }

    save_table(&table, "table4_distill_topic");

    let test = mcnemar(&dual_exact, &no_distill);
    println!(
        "McNemar (Dual-Distill vs No Distill, unseen EM): b={} c={} chi2={:.3} p={:.4}{}",
        test.b,
        test.c,
        test.chi2,
        test.p_value,
        if test.significant(0.05) { "  (significant at 0.05)" } else { "" }
    );
}
