//! Table VI — key attribute extraction on seen domains: single-task
//! baselines (`{GloVe,BERT,BERTSUM} → Bi-LSTM`, plus `+prior section` /
//! `+prior topic`) against Joint-WB. Reports precision / recall / F1.
//!
//! Run: `cargo run --release -p wb-bench --bin table6_extraction_baselines`

use wb_bench::*;
use wb_core::{train, Extractor, ExtractorPriors, JointModel, JointVariant};
use wb_eval::ResultTable;
use wb_nn::EmbedderKind;

fn main() {
    let scale = Scale::from_env();
    eprintln!("Table VI at scale {}", scale.name());
    let d = timed("dataset", || experiment_dataset(scale));
    let split = d.split(7);
    let mc = model_config(&d);
    let pre = pretrain_for(&d, &mc, &split.train, scale);

    let mut table = ResultTable::new(
        &format!("TABLE VI: Comparison with single-task models for key attribute extraction (scale {})", scale.name()),
        &["Method", "P", "R", "F1"],
    );

    let rows: Vec<(&str, EmbedderKind, ExtractorPriors)> = vec![
        ("GloVe->Bi-LSTM", EmbedderKind::Static, ExtractorPriors::default()),
        ("BERT->Bi-LSTM", EmbedderKind::Bert, ExtractorPriors::default()),
        ("BERTSUM->Bi-LSTM", EmbedderKind::BertSum, ExtractorPriors::default()),
        (
            "BERTSUM->Bi-LSTM +prior section",
            EmbedderKind::BertSum,
            ExtractorPriors { section: true, topic: false },
        ),
        (
            "BERTSUM->Bi-LSTM +prior topic",
            EmbedderKind::BertSum,
            ExtractorPriors { section: false, topic: true },
        ),
    ];

    for (name, kind, priors) in rows {
        let model = timed(name, || {
            let mut m = Extractor::new(kind, priors, mc, 1);
            pre.warm_start(&mut m, kind);
            let tc = if kind == EmbedderKind::Static {
                train_config(scale)
            } else {
                train_config_contextual(scale)
            };
            train(&mut m, &d.examples, &split.train, tc);
            m
        });
        let s = eval_extraction(&d, &split.test, |ex| model.predict(ex));
        table.push_metrics(name, &[Some(s.precision()), Some(s.recall()), Some(s.f1())]);
    }

    let joint = timed("Joint-WB", || {
        let mut m = JointModel::new(JointVariant::JointWb, mc, 1);
        pre.warm_start(&mut m, EmbedderKind::BertSum);
        train(&mut m, &d.examples, &split.train, train_config_contextual(scale));
        m
    });
    let s = eval_extraction(&d, &split.test, |ex| joint.predict_tags(ex));
    table.push_metrics(
        "Joint-WB (our proposed)",
        &[Some(s.precision()), Some(s.recall()), Some(s.f1())],
    );

    save_table(&table, "table6_extraction_baselines");
}
