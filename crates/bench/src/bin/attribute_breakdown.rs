//! Per-attribute-kind analysis of extraction quality — an extension beyond
//! the paper's aggregate P/R/F1: numeric attributes (price/salary/fee, a
//! `<digit>` after a strong cue) should be far easier than name-like
//! attributes built from topic-specific vocabulary, and the category
//! attribute sits in between.
//!
//! Run: `cargo run --release -p wb-bench --bin attribute_breakdown`

use wb_bench::*;
use wb_core::{train, JointModel, JointVariant};
use wb_eval::{bio_to_spans, KindBreakdown, ResultTable};

fn main() {
    let scale = Scale::from_env();
    eprintln!("Attribute breakdown at scale {}", scale.name());
    let d = timed("dataset", || experiment_dataset(scale));
    let split = d.split(7);
    let mc = model_config(&d);
    let pre = pretrain_for(&d, &mc, &split.train, scale);

    let model = timed("Joint-WB", || {
        let mut m = JointModel::new(JointVariant::JointWb, mc, 1);
        pre.warm_start(&mut m, wb_nn::EmbedderKind::BertSum);
        train(&mut m, &d.examples, &split.train, train_config_contextual(scale));
        m
    });

    let mut breakdown = KindBreakdown::new();
    for &i in &split.test {
        let ex = &d.examples[i];
        let predicted = bio_to_spans(&model.predict_tags(ex));
        let gold: Vec<(&str, usize, usize)> =
            ex.attr_spans.iter().map(|&(k, s, e)| (k.name(), s, e)).collect();
        breakdown.update(&predicted, &gold);
    }

    let mut table = ResultTable::new(
        &format!("Extraction F1 per attribute kind (Joint-WB, scale {})", scale.name()),
        &["Attribute kind", "P", "R", "F1", "support"],
    );
    for (kind, scores) in breakdown.iter() {
        table.push_row(vec![
            kind.to_string(),
            format!("{:.2}", scores.precision()),
            format!("{:.2}", scores.recall()),
            format!("{:.2}", scores.f1()),
            (scores.tp + scores.fn_).to_string(),
        ]);
    }
    save_table(&table, "attribute_breakdown");
}
