//! The multi-level hierarchy extension (the paper's §V future work):
//! compares the two-level [`MultiLevelWb`] against flat Joint-WB on
//! per-level extraction quality and topic generation. The interesting
//! question is whether separating the category (high-level) head from the
//! detail head preserves quality on both.
//!
//! Run: `cargo run --release -p wb-bench --bin multilevel_extension`

use wb_bench::*;
use wb_core::{train, JointModel, JointVariant, MultiLevelWb, TrainableModel};
use wb_corpus::AttrKind;
use wb_eval::{bio_to_spans, ExtractionScores, ResultTable};

fn main() {
    let scale = Scale::from_env();
    eprintln!("Multi-level extension at scale {}", scale.name());
    let d = timed("dataset", || experiment_dataset(scale));
    let split = d.split(7);
    let mc = model_config(&d);
    let tc = train_config_contextual(scale);
    let pre = pretrain_for(&d, &mc, &split.train, scale);

    // Flat Joint-WB reference.
    let flat = timed("Joint-WB (flat)", || {
        let mut m = JointModel::new(JointVariant::JointWb, mc, 1);
        pre.warm_start(&mut m, wb_nn::EmbedderKind::BertSum);
        train(&mut m, &d.examples, &split.train, tc);
        m
    });

    // Two-level extension.
    let multi = timed("MultiLevel-WB", || {
        let mut m = MultiLevelWb::new(mc, 1);
        pre.warm_start(&mut m, wb_nn::EmbedderKind::BertSum);
        train(&mut m, &d.examples, &split.train, tc);
        m
    });

    // Per-level gold spans.
    let gold_level = |ex: &wb_corpus::Example, level: usize| -> Vec<(usize, usize)> {
        ex.attr_spans
            .iter()
            .filter(|&&(k, _, _)| usize::from(k != AttrKind::Category) == level)
            .map(|&(_, s, e)| (s, e))
            .collect()
    };

    // Evaluate the flat model by splitting its single prediction by gold
    // level membership (it cannot distinguish levels), and the multi-level
    // model by its per-level heads.
    let mut flat_levels = [ExtractionScores::default(), ExtractionScores::default()];
    let mut multi_levels = [ExtractionScores::default(), ExtractionScores::default()];
    for &i in &split.test {
        let ex = &d.examples[i];
        let flat_spans = bio_to_spans(&flat.predict_tags(ex));
        let multi_tags = multi.predict_levels(ex);
        for level in 0..2 {
            let gold = gold_level(ex, level);
            // Flat model: only its predictions that match *this* level's
            // gold inventory can count; others are its other level's work,
            // so restrict predictions to those overlapping this level.
            let flat_preds: Vec<(usize, usize)> =
                flat_spans.iter().copied().filter(|p| gold.contains(p)).collect();
            let mut s = ExtractionScores::default();
            s.update(&flat_preds, &gold);
            flat_levels[level].merge(&s);

            let mut s = ExtractionScores::default();
            s.update(&bio_to_spans(&multi_tags[level]), &gold);
            multi_levels[level].merge(&s);
        }
    }

    let (flat_gen, _) = eval_generation(&d, &split.test, |ex| flat.generate(ex));
    let (multi_gen, _) = eval_generation(&d, &split.test, |ex| multi.generate(ex));

    let mut table = ResultTable::new(
        &format!(
            "Multi-level hierarchy extension (scale {}): per-level extraction and topic EM",
            scale.name()
        ),
        &["Model", "High-level R", "Detail F1", "Topic EM", "params"],
    );
    table.push_row(vec![
        "Joint-WB (flat, recall-only per level)".into(),
        format!("{:.2}", flat_levels[0].recall()),
        format!("{:.2}", flat_levels[1].recall()),
        format!("{:.2}", flat_gen.em()),
        flat.params().num_scalars().to_string(),
    ]);
    table.push_row(vec![
        "MultiLevel-WB (two heads)".into(),
        format!("{:.2}", multi_levels[0].f1()),
        format!("{:.2}", multi_levels[1].f1()),
        format!("{:.2}", multi_gen.em()),
        multi.params().num_scalars().to_string(),
    ]);
    save_table(&table, "multilevel_extension");
    println!(
        "The multi-level model additionally *labels* each attribute's level; the flat \
         model cannot (its per-level numbers are recall of gold spans only)."
    );
}
