//! Table VII — topic generation on seen domains: single-task baselines
//! (`{GloVe,BERT,BERTSUM} → [Bi-LSTM, LSTM]`, plus `+prior section`)
//! against Joint-WB. Reports EM / RM plus McNemar vs the best baseline.
//!
//! Run: `cargo run --release -p wb-bench --bin table7_generation_baselines`

use wb_bench::*;
use wb_core::{train, Generator, JointModel, JointVariant};
use wb_eval::{mcnemar, ResultTable};
use wb_nn::EmbedderKind;

fn main() {
    let scale = Scale::from_env();
    eprintln!("Table VII at scale {}", scale.name());
    let d = timed("dataset", || experiment_dataset(scale));
    let split = d.split(7);
    let mc = model_config(&d);
    let pre = pretrain_for(&d, &mc, &split.train, scale);

    let mut table = ResultTable::new(
        &format!(
            "TABLE VII: Comparison with single-task models for topic generation (scale {})",
            scale.name()
        ),
        &["Method", "EM", "RM"],
    );

    let rows: Vec<(&str, EmbedderKind, bool)> = vec![
        ("GloVe->[Bi-LSTM, LSTM]", EmbedderKind::Static, false),
        ("BERT->[Bi-LSTM, LSTM]", EmbedderKind::Bert, false),
        ("BERTSUM->[Bi-LSTM, LSTM]", EmbedderKind::BertSum, false),
        ("BERTSUM->[Bi-LSTM, LSTM] +prior section", EmbedderKind::BertSum, true),
    ];

    let mut best_baseline: Option<(f64, Vec<bool>)> = None;
    for (name, kind, prior_section) in rows {
        let model = timed(name, || {
            let mut m = Generator::new(kind, prior_section, mc, 1);
            pre.warm_start(&mut m, kind);
            let tc = if kind == EmbedderKind::Static {
                train_config(scale)
            } else {
                train_config_contextual(scale)
            };
            train(&mut m, &d.examples, &split.train, tc);
            m
        });
        let (s, exact) = eval_generation(&d, &split.test, |ex| model.generate(ex));
        table.push_metrics(name, &[Some(s.em()), Some(s.rm())]);
        if best_baseline.as_ref().map(|(em, _)| s.em() > *em).unwrap_or(true) {
            best_baseline = Some((s.em(), exact));
        }
    }

    let joint = timed("Joint-WB", || {
        let mut m = JointModel::new(JointVariant::JointWb, mc, 1);
        pre.warm_start(&mut m, EmbedderKind::BertSum);
        train(&mut m, &d.examples, &split.train, train_config_contextual(scale));
        m
    });
    let (s, joint_exact) = eval_generation(&d, &split.test, |ex| joint.generate(ex));
    table.push_metrics("Joint-WB (our proposed)", &[Some(s.em()), Some(s.rm())]);

    save_table(&table, "table7_generation_baselines");

    if let Some((_, base_exact)) = best_baseline {
        let t = mcnemar(&joint_exact, &base_exact);
        println!(
            "McNemar (Joint-WB vs best single-task baseline, EM): b={} c={} chi2={:.3} p={:.4}{}",
            t.b,
            t.c,
            t.chi2,
            t.p_value,
            if t.significant(0.05) { "  (significant at 0.05)" } else { "" }
        );
    }
}
