//! Empirical check of the paper's §III time-complexity claims: Dual-Distill
//! scales as `O(b·(t_e + t_s + nr + n + g))` — linear in the sequence
//! length `n` and in the number of seen topics `r`; the Bi-LSTM extractor
//! is linear in `n` while the transformer encoder is quadratic.
//!
//! The harness times forward passes at growing sizes and reports the
//! log-log slope (≈1 → linear, ≈2 → quadratic).
//!
//! Run: `cargo run --release -p wb-bench --bin complexity_check`

use rand::rngs::StdRng;
use rand::SeedableRng;
use wb_bench::save_table;
use wb_eval::ResultTable;
use wb_nn::{BertConfig, BiLstm, Embedder, EmbedderKind};
use wb_tensor::{Graph, Params, Tensor};

/// Median wall time of `f` over `reps` runs, in seconds.
fn time_median(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

/// Least-squares slope of `ln(time)` against `ln(size)`.
fn loglog_slope(points: &[(usize, f64)]) -> f64 {
    let n = points.len() as f64;
    let xs: Vec<f64> = points.iter().map(|&(s, _)| (s as f64).ln()).collect();
    let ys: Vec<f64> = points.iter().map(|&(_, t)| t.ln()).collect();
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    cov / var
}

fn main() {
    let dim = 24;
    let hidden = 16;
    let vocab = 500;
    let mut rng = StdRng::seed_from_u64(0);

    let mut table = ResultTable::new(
        "Empirical complexity: log-log slope of forward time vs input size",
        &["Component", "sizes", "slope", "expected"],
    );

    // 1. Bi-LSTM over sequence length — expected slope ≈ 1.
    {
        let mut params = Params::new();
        let bilstm = BiLstm::new(&mut params, &mut rng, "b", dim, hidden);
        let sizes = [64usize, 128, 256, 512];
        let mut pts = Vec::new();
        for &t_len in &sizes {
            let x = Tensor::full(&[t_len, dim], 0.1);
            let t = time_median(5, || {
                let mut g = Graph::new(&params, false, 0);
                let xv = g.input(x.clone());
                let _ = bilstm.forward(&mut g, xv);
            });
            pts.push((t_len, t));
        }
        table.push_row(vec![
            "Bi-LSTM (seq len n)".into(),
            format!("{sizes:?}"),
            format!("{:.2}", loglog_slope(&pts)),
            "~1 (linear)".into(),
        ]);
    }

    // 2. Transformer encoder over sequence length within one sub-document —
    //    expected slope between 1 and 2 (the attention term is quadratic,
    //    the projections linear).
    {
        let mut params = Params::new();
        let bert = Embedder::new(
            &mut params,
            &mut rng,
            "emb",
            EmbedderKind::Bert,
            BertConfig { vocab, dim, layers: 1, max_len: 512, dropout: 0.0 },
        );
        let sizes = [64usize, 128, 256, 512];
        let mut pts = Vec::new();
        for &t_len in &sizes {
            let tokens: Vec<u32> = (0..t_len as u32).map(|i| i % vocab as u32).collect();
            let sents: Vec<usize> = (0..t_len).map(|i| i / 8).collect();
            let t = time_median(5, || {
                let mut g = Graph::new(&params, false, 0);
                let _ = bert.forward(&mut g, &tokens, &sents);
            });
            pts.push((t_len, t));
        }
        table.push_row(vec![
            "MiniBert (seq len n, one chunk)".into(),
            format!("{sizes:?}"),
            format!("{:.2}", loglog_slope(&pts)),
            "1–2 (attention quadratic)".into(),
        ]);
    }

    // 3. Identification-distillation attention over the number of seen
    //    topics r — expected slope ≈ 1 (the `nr` term of §III-A).
    {
        let params = Params::new();
        let h = Tensor::full(&[128, 2 * hidden], 0.1);
        let sizes = [16usize, 32, 64, 128];
        let mut pts = Vec::new();
        for &r in &sizes {
            let bank = Tensor::full(&[r, 2 * hidden], 0.05);
            let t = time_median(9, || {
                let mut g = Graph::new(&params, false, 0);
                let hv = g.input(h.clone());
                let bv = g.input(bank.clone());
                let scores = g.matmul_nt(hv, bv);
                let _ = g.softmax_rows(scores, 1.0);
            });
            pts.push((r, t));
        }
        table.push_row(vec![
            "L_ID attention (seen topics r)".into(),
            format!("{sizes:?}"),
            format!("{:.2}", loglog_slope(&pts)),
            "~1 (linear)".into(),
        ]);
    }

    save_table(&table, "complexity_check");
    println!(
        "The paper's §III analysis: Dual-Distill O(b·(t_e + t_s + nr + n + g)); slopes \
         near the expected exponents confirm the implementation matches."
    );
}
