//! Standalone entry point for the performance-trajectory harness.
//!
//! ```text
//! perf_trajectory [--quick] [--label NAME] [--out FILE]
//!                 [--baseline FILE] [--tolerance PCT] [REPORT.json]
//! ```
//!
//! Equivalent to `wb bench` (same driver, [`wb_bench::perf::run_cli`]);
//! exists so CI and profiling scripts can run the harness without the
//! full CLI. A positional `REPORT.json` compares an existing report
//! against `--baseline` instead of re-running the workloads.

use wb_bench::perf::CliOptions;

fn main() {
    let mut opts = CliOptions::default();
    let mut args = std::env::args().skip(1);
    let result = (|| -> Result<(), String> {
        while let Some(a) = args.next() {
            let mut value = |name: &str| {
                args.next().ok_or_else(|| format!("option {name} expects a value"))
            };
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--label" => opts.label = value("--label")?,
                "--out" => opts.out = Some(value("--out")?),
                "--baseline" => opts.baseline = Some(value("--baseline")?),
                "--tolerance" => {
                    let v = value("--tolerance")?;
                    opts.tolerance_pct = v
                        .parse()
                        .map_err(|_| format!("--tolerance has invalid value `{v}`"))?;
                }
                "--help" | "-h" => {
                    println!(
                        "usage: perf_trajectory [--quick] [--label NAME] [--out FILE] \
                         [--baseline FILE] [--tolerance PCT] [REPORT.json]"
                    );
                    return Ok(());
                }
                flag if flag.starts_with("--") => {
                    return Err(format!("unknown option {flag}"));
                }
                positional => opts.compare_only = Some(positional.to_string()),
            }
        }
        match wb_bench::perf::run_cli(&opts)? {
            0 => Ok(()),
            code => std::process::exit(code),
        }
    })();
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}
