//! Ablation studies for the design choices DESIGN.md calls out beyond the
//! paper's own tables:
//!
//! 1. **Beam width** — the paper uses beam 200 / depth 4; how much does
//!    width matter at our scale? (EM at widths 1/2/4/8.)
//! 2. **Markov dependency** (eq. 13) — section prediction accuracy with and
//!    without the `j−1`/`j+1` neighbourhood.
//! 3. **Distillation temperature γ** — unseen-domain EM of a Dual-Distill
//!    student at γ ∈ {1, 2, 4} (the paper fixes γ = 2).
//!
//! Run: `cargo run --release -p wb-bench --bin ablations`

use wb_bench::*;
use wb_core::{
    train, DistillConfig, DistillParts, DualDistill, Generator, JointGenerationTeacher,
    JointModel, JointVariant, PhraseBank, TeacherCache, TrainableModel,
};
use wb_eval::{ResultTable, SectionScores};
use wb_nn::EmbedderKind;

fn main() {
    let scale = Scale::from_env();
    eprintln!("Ablations at scale {}", scale.name());
    let d = timed("dataset", || experiment_dataset(scale));
    let setting = DistillSetting::new(&d, scale.n_unseen(), 7);
    let split = &setting.split;
    let mc = model_config(&d);
    let tc_ctx = train_config_contextual(scale);
    let pre = pretrain_for(&d, &mc, &split.train, scale);

    // --- 1. Beam width ---
    let joint = timed("Joint-WB (for beam sweep)", || {
        let mut m = JointModel::new(JointVariant::JointWb, mc, 1);
        pre.warm_start(&mut m, EmbedderKind::BertSum);
        train(&mut m, &d.examples, &split.train, tc_ctx);
        m
    });
    let mut beam_table = ResultTable::new(
        &format!("Ablation: beam width (Joint-WB, scale {})", scale.name()),
        &["Beam", "EM", "RM"],
    );
    for beam in [1usize, 2, 4, 8] {
        // Rebuild a model view with a different beam by cloning parameters
        // into an identically-shaped model whose config differs only in beam.
        let mut cfg_b = mc;
        cfg_b.beam = beam;
        let mut m = JointModel::new(JointVariant::JointWb, cfg_b, 1);
        m.params_mut().copy_from(joint.params());
        let (s, _) = eval_generation(&d, &split.test, |ex| m.generate(ex));
        beam_table.push_metrics(&beam.to_string(), &[Some(s.em()), Some(s.rm())]);
    }
    save_table(&beam_table, "ablation_beam_width");

    // --- 2. Markov dependency in the section predictor ---
    let mut markov_table = ResultTable::new(
        &format!("Ablation: Markov dependency in P (scale {})", scale.name()),
        &["Section predictor", "accuracy", "F1 (extraction)", "EM (generation)"],
    );
    for (name, markov) in [("Markov (j-1, j+1)", true), ("independent (self only)", false)] {
        let mut cfg_m = mc;
        cfg_m.markov_sections = markov;
        let m = timed(name, || {
            let mut m = JointModel::new(JointVariant::JointWb, cfg_m, 1);
            pre.warm_start(&mut m, EmbedderKind::BertSum);
            train(&mut m, &d.examples, &split.train, tc_ctx);
            m
        });
        let mut sec = SectionScores::default();
        for &i in &split.test {
            let ex = &d.examples[i];
            if let Some(pred) = m.predict_sections(ex) {
                sec.update(&pred, &ex.informative);
            }
        }
        let ext = eval_extraction(&d, &split.test, |ex| m.predict_tags(ex));
        let (gen, _) = eval_generation(&d, &split.test, |ex| m.generate(ex));
        markov_table
            .push_metrics(name, &[Some(sec.accuracy()), Some(ext.f1()), Some(gen.em())]);
    }
    save_table(&markov_table, "ablation_markov_dependency");

    // --- 3. Distillation temperature ---
    let teacher = timed("teacher for gamma sweep", || {
        let mut t = JointModel::new(JointVariant::JointWb, mc, 1);
        pre.warm_start(&mut t, EmbedderKind::BertSum);
        train(&mut t, &d.examples, &setting.seen_train, tc_ctx);
        t
    });
    let view = JointGenerationTeacher(&teacher);
    let bank = PhraseBank::build(&view, &phrase_bank_inputs(&d, &setting.seen));
    let mut gamma_table = ResultTable::new(
        &format!(
            "Ablation: softmax temperature gamma in Dual-Distill (scale {})",
            scale.name()
        ),
        &["gamma", "Unseen EM", "Seen EM"],
    );
    for gamma in [1.0f32, 2.0, 4.0] {
        let dc = DistillConfig { gamma, ..Default::default() };
        let cache = TeacherCache::build(&view, &d.examples, &split.train, gamma);
        let student = timed(&format!("gamma {gamma}"), || {
            let mut s = Generator::new(EmbedderKind::Static, false, mc, 9);
            pre.warm_start(&mut s, EmbedderKind::Static);
            let s = s;
            let mut dd = DualDistill::new(s, cache, bank.clone(), dc, DistillParts::dual(), 3)
                .with_seen_topics(&setting.seen);
            train(&mut dd, &d.examples, &split.train, train_config(scale));
            dd.into_student()
        });
        let (unseen, _) = eval_generation(&d, &setting.test_unseen, |ex| student.generate(ex));
        let (seen, _) = eval_generation(&d, &setting.test_seen, |ex| student.generate(ex));
        gamma_table.push_metrics(&format!("{gamma}"), &[Some(unseen.em()), Some(seen.em())]);
    }
    save_table(&gamma_table, "ablation_gamma");
}
