//! Tables VIII and IX — the joint-model grid on seen domains: Naive-Join,
//! Con-/Ave-/Att-Extractor, Att-Extractor+Att-Generator,
//! Pip-Extractor+Pip-Generator and Joint-WB, reporting attribute extraction
//! (P/R/F1, Table VIII) and topic generation (EM/RM, Table IX) from the
//! *same* trained models.
//!
//! Run: `cargo run --release -p wb-bench --bin table8_9_joint`

use wb_bench::*;
use wb_core::{train, JointModel, JointVariant};
use wb_eval::ResultTable;

fn main() {
    let scale = Scale::from_env();
    eprintln!("Tables VIII/IX at scale {}", scale.name());
    let d = timed("dataset", || experiment_dataset(scale));
    let split = d.split(7);
    let mc = model_config(&d);
    let tc = train_config_contextual(scale);
    let pre = pretrain_for(&d, &mc, &split.train, scale);

    let variants = [
        JointVariant::NaiveJoin,
        JointVariant::ConExtractor,
        JointVariant::AveExtractor,
        JointVariant::AttExtractor,
        JointVariant::AttBoth,
        JointVariant::PipBoth,
        JointVariant::JointWb,
    ];

    let mut table8 = ResultTable::new(
        &format!(
            "TABLE VIII: Comparison with joint models for key attribute extraction (scale {})",
            scale.name()
        ),
        &["Method", "P", "R", "F1"],
    );
    let mut table9 = ResultTable::new(
        &format!(
            "TABLE IX: Comparison with joint models for topic generation (scale {})",
            scale.name()
        ),
        &["Method", "EM", "RM"],
    );

    for variant in variants {
        let model = timed(variant.name(), || {
            let mut m = JointModel::new(variant, mc, 1);
            pre.warm_start(&mut m, wb_nn::EmbedderKind::BertSum);
            train(&mut m, &d.examples, &split.train, tc);
            m
        });
        let ext = eval_extraction(&d, &split.test, |ex| model.predict_tags(ex));
        table8.push_metrics(
            variant.name(),
            &[Some(ext.precision()), Some(ext.recall()), Some(ext.f1())],
        );
        let (gen, _) = eval_generation(&d, &split.test, |ex| model.generate(ex));
        table9.push_metrics(variant.name(), &[Some(gen.em()), Some(gen.rm())]);
    }

    save_table(&table8, "table8_joint_extraction");
    save_table(&table9, "table9_joint_generation");
}
