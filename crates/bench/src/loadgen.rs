//! `wb loadgen` — an HTTP load generator for the briefing server.
//!
//! Drives `POST /brief` against a running `wb serve` with a pool of
//! client connections and reports throughput, latency percentiles and
//! SLO attainment, in two arrival models:
//!
//! * **Closed loop** (the default): each of `concurrency` connections
//!   issues its next request as soon as the previous response lands —
//!   measures the server's capacity at a fixed multiprogramming level.
//! * **Open loop** (`rate > 0`): requests are *scheduled* at a fixed
//!   arrival rate and latency is measured from the scheduled arrival,
//!   not from when the client got around to sending — so a stalled
//!   server inflates the percentiles instead of silently throttling the
//!   generator (the coordinated-omission trap).
//!
//! Connections are HTTP/1.1 keep-alive unless `keep_alive` is off, in
//! which case every request pays connect + close — the comparison
//! `wb loadgen --compare` runs both and reports the speedup, which is
//! the headline number for the event-loop + keep-alive serving path.
//!
//! Results convert to a [`crate::perf::BenchReport`] (`BENCH_serve.json`)
//! so `wb bench --baseline` machinery can diff serving runs: request and
//! error *counts* are hard metrics (a framing error or a dropped request
//! is a bug, not noise), times are soft.

use crate::perf::{env_fingerprint, BenchReport, Metric, WorkloadResult, SCHEMA};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address (`HOST:PORT`).
    pub addr: String,
    /// Total measured requests.
    pub requests: u64,
    /// Concurrent client connections.
    pub concurrency: usize,
    /// Reuse connections (HTTP/1.1 keep-alive) vs. connect-per-request.
    pub keep_alive: bool,
    /// Open-loop arrival rate in requests/second; 0 = closed loop.
    pub rate: f64,
    /// Distinct synthetic pages cycled through (past the warmup, repeats
    /// are server-cache hits).
    pub pages: usize,
    /// Latency SLO for the attainment metric, in milliseconds.
    pub slo_ms: f64,
    /// Per-request socket timeout.
    pub timeout: Duration,
    /// Un-measured cache-warming pass over the page set before the run.
    pub warmup: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:8660".to_string(),
            requests: 1000,
            concurrency: 8,
            keep_alive: true,
            rate: 0.0,
            pages: 8,
            slo_ms: 50.0,
            timeout: Duration::from_secs(10),
            warmup: true,
        }
    }
}

/// Aggregated outcome of one load run.
#[derive(Debug, Clone)]
pub struct LoadSummary {
    /// `keepalive` or `close`.
    pub mode: &'static str,
    /// Requests attempted.
    pub requests: u64,
    /// 2xx responses.
    pub ok: u64,
    /// 4xx responses.
    pub client_errors: u64,
    /// 5xx responses.
    pub server_errors: u64,
    /// Connect/read/write failures (no usable response).
    pub transport_errors: u64,
    /// Responses the client could not frame (bad head, missing
    /// Content-Length) — always a server bug.
    pub framing_errors: u64,
    /// TCP connections opened.
    pub conns_opened: u64,
    /// Requests served on an already-used connection.
    pub reused: u64,
    /// Responses marked `X-Cache: hit`.
    pub cache_hits: u64,
    /// Wall-clock of the measured run.
    pub elapsed: Duration,
    /// Per-request latency in µs, sorted ascending.
    pub latencies_us: Vec<u64>,
    /// The SLO the attainment below is measured against.
    pub slo_ms: f64,
}

impl LoadSummary {
    /// Requests per second over the run.
    pub fn rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }

    /// Latency quantile in µs (nearest-rank on the sorted vector).
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        let rank = ((q * self.latencies_us.len() as f64).ceil() as usize)
            .clamp(1, self.latencies_us.len());
        self.latencies_us[rank - 1] as f64
    }

    /// Fraction of requests at or under the SLO.
    pub fn slo_attainment(&self) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        let limit = (self.slo_ms * 1000.0) as u64;
        let within = self.latencies_us.iter().filter(|&&us| us <= limit).count();
        within as f64 / self.latencies_us.len() as f64
    }

    /// Human-readable one-block summary.
    pub fn render(&self) -> String {
        format!(
            "mode {:<10} {} requests in {:.2}s = {:.0} rps\n\
             \x20 responses     2xx {}  4xx {}  5xx {}  transport {}  framing {}\n\
             \x20 connections   opened {}  reused {} ({:.1}% of requests)  cache hits {}\n\
             \x20 latency (us)  p50 {:.0}  p90 {:.0}  p99 {:.0}\n\
             \x20 SLO {:.0}ms     {:.2}% attained\n",
            self.mode,
            self.requests,
            self.elapsed.as_secs_f64(),
            self.rps(),
            self.ok,
            self.client_errors,
            self.server_errors,
            self.transport_errors,
            self.framing_errors,
            self.conns_opened,
            self.reused,
            100.0 * self.reused as f64 / (self.requests.max(1)) as f64,
            self.cache_hits,
            self.quantile_us(0.50),
            self.quantile_us(0.90),
            self.quantile_us(0.99),
            self.slo_ms,
            100.0 * self.slo_attainment(),
        )
    }
}

/// A parsed response, as much of it as the generator cares about.
struct Response {
    status: u16,
    cache_hit: bool,
    server_closes: bool,
}

/// What went wrong with one request.
enum RequestError {
    /// Socket-level failure (connect, write, read, timeout).
    Transport,
    /// The response could not be framed — a server protocol bug.
    Framing,
}

/// One client connection with a carry buffer, so back-to-back responses
/// that share a socket read are framed correctly.
struct ClientConn {
    stream: TcpStream,
    buf: Vec<u8>,
    served: u64,
}

impl ClientConn {
    fn connect(addr: &SocketAddr, timeout: Duration) -> Result<ClientConn, RequestError> {
        let stream =
            TcpStream::connect_timeout(addr, timeout).map_err(|_| RequestError::Transport)?;
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_write_timeout(Some(timeout));
        let _ = stream.set_nodelay(true);
        Ok(ClientConn { stream, buf: Vec::new(), served: 0 })
    }

    /// Sends one `POST /brief` and reads its `Content-Length`-framed
    /// response off the connection.
    fn request(&mut self, body: &[u8], close: bool) -> Result<Response, RequestError> {
        let conn_header = if close { "Connection: close\r\n" } else { "" };
        let head = format!(
            "POST /brief HTTP/1.1\r\nHost: loadgen\r\n{conn_header}Content-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes()).map_err(|_| RequestError::Transport)?;
        self.stream.write_all(body).map_err(|_| RequestError::Transport)?;
        let response = self.read_response()?;
        self.served += 1;
        Ok(response)
    }

    fn read_response(&mut self) -> Result<Response, RequestError> {
        let mut tmp = [0u8; 16 * 1024];
        let head_end = loop {
            if let Some(p) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break p + 4;
            }
            if self.buf.len() > 64 * 1024 {
                return Err(RequestError::Framing); // headers never end
            }
            match self.stream.read(&mut tmp) {
                Ok(0) => return Err(RequestError::Transport),
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(_) => return Err(RequestError::Transport),
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
        let mut lines = head.lines();
        let status: u16 = lines
            .next()
            .and_then(|l| l.split_ascii_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .ok_or(RequestError::Framing)?;
        let mut content_length: Option<usize> = None;
        let mut cache_hit = false;
        let mut server_closes = false;
        for line in lines {
            let Some((name, value)) = line.split_once(':') else { continue };
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.parse().ok();
            } else if name.eq_ignore_ascii_case("x-cache") {
                cache_hit = value == "hit";
            } else if name.eq_ignore_ascii_case("connection") {
                server_closes = value.eq_ignore_ascii_case("close");
            }
        }
        let content_length = content_length.ok_or(RequestError::Framing)?;
        while self.buf.len() < head_end + content_length {
            match self.stream.read(&mut tmp) {
                Ok(0) => return Err(RequestError::Transport),
                Ok(n) => self.buf.extend_from_slice(&tmp[..n]),
                Err(_) => return Err(RequestError::Transport),
            }
        }
        self.buf.drain(..head_end + content_length);
        Ok(Response { status, cache_hit, server_closes })
    }
}

/// The deterministic page set the generator cycles through: briefable
/// synthetic product pages, distinct per index so each is its own cache
/// key.
pub fn synthetic_pages(n: usize) -> Vec<Vec<u8>> {
    (0..n.max(1))
        .map(|i| {
            format!(
                "<html><body><section><p>great velcro books {i} , \
                 price : $ {}.{:02} . fast shipping to friendly people .\
                 </p></section></body></html>",
                9 + i,
                (i * 7) % 100
            )
            .into_bytes()
        })
        .collect()
}

/// Per-thread tallies, merged after the join.
#[derive(Default)]
struct ThreadTally {
    ok: u64,
    client_errors: u64,
    server_errors: u64,
    transport_errors: u64,
    framing_errors: u64,
    conns_opened: u64,
    reused: u64,
    cache_hits: u64,
    latencies_us: Vec<u64>,
}

/// Runs one load pass against a live server and aggregates the outcome.
pub fn run(cfg: &LoadConfig) -> Result<LoadSummary, String> {
    let addr: SocketAddr = cfg
        .addr
        .parse()
        .map_err(|_| format!("invalid address `{}` (expected HOST:PORT)", cfg.addr))?;
    let pages = Arc::new(synthetic_pages(cfg.pages));
    if cfg.warmup {
        // One pass over the page set on a single connection, so the
        // measured run hits a warm cache in every mode.
        let mut conn = ClientConn::connect(&addr, cfg.timeout)
            .map_err(|_| format!("cannot connect to {}", cfg.addr))?;
        for page in pages.iter() {
            if conn.request(page, false).map(|r| r.server_closes).unwrap_or(true) {
                conn = ClientConn::connect(&addr, cfg.timeout)
                    .map_err(|_| format!("lost connection to {} during warmup", cfg.addr))?;
            }
        }
    }

    let concurrency = cfg.concurrency.max(1);
    let tickets = Arc::new(AtomicU64::new(0));
    let total = cfg.requests;
    let start = Instant::now();
    let mut handles = Vec::with_capacity(concurrency);
    for _ in 0..concurrency {
        let tickets = Arc::clone(&tickets);
        let pages = Arc::clone(&pages);
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            let mut tally = ThreadTally::default();
            let mut conn: Option<ClientConn> = None;
            loop {
                let i = tickets.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                // Open loop: request i is *scheduled* at start + i/rate;
                // latency counts from there even if we fell behind.
                let scheduled = if cfg.rate > 0.0 {
                    let at = start + Duration::from_secs_f64(i as f64 / cfg.rate);
                    if let Some(wait) = at.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    Some(at)
                } else {
                    None
                };
                let t0 = scheduled.unwrap_or_else(Instant::now);
                let mut c = match conn.take() {
                    Some(c) => c,
                    None => match ClientConn::connect(&addr, cfg.timeout) {
                        Ok(c) => {
                            tally.conns_opened += 1;
                            c
                        }
                        Err(_) => {
                            tally.transport_errors += 1;
                            continue;
                        }
                    },
                };
                if c.served > 0 {
                    tally.reused += 1;
                }
                let body = &pages[(i as usize) % pages.len()];
                match c.request(body, !cfg.keep_alive) {
                    Ok(r) => {
                        tally.latencies_us.push(t0.elapsed().as_micros() as u64);
                        match r.status / 100 {
                            2 => tally.ok += 1,
                            4 => tally.client_errors += 1,
                            _ => tally.server_errors += 1,
                        }
                        if r.cache_hit {
                            tally.cache_hits += 1;
                        }
                        if cfg.keep_alive && !r.server_closes {
                            conn = Some(c);
                        }
                    }
                    Err(RequestError::Transport) => tally.transport_errors += 1,
                    Err(RequestError::Framing) => tally.framing_errors += 1,
                }
            }
            tally
        }));
    }
    let mut merged = ThreadTally::default();
    for h in handles {
        let t = h.join().map_err(|_| "load thread panicked".to_string())?;
        merged.ok += t.ok;
        merged.client_errors += t.client_errors;
        merged.server_errors += t.server_errors;
        merged.transport_errors += t.transport_errors;
        merged.framing_errors += t.framing_errors;
        merged.conns_opened += t.conns_opened;
        merged.reused += t.reused;
        merged.cache_hits += t.cache_hits;
        merged.latencies_us.extend(t.latencies_us);
    }
    let elapsed = start.elapsed();
    merged.latencies_us.sort_unstable();
    Ok(LoadSummary {
        mode: if cfg.keep_alive { "keepalive" } else { "close" },
        requests: total,
        ok: merged.ok,
        client_errors: merged.client_errors,
        server_errors: merged.server_errors,
        transport_errors: merged.transport_errors,
        framing_errors: merged.framing_errors,
        conns_opened: merged.conns_opened,
        reused: merged.reused,
        cache_hits: merged.cache_hits,
        elapsed,
        latencies_us: merged.latencies_us,
        slo_ms: cfg.slo_ms,
    })
}

/// Converts load summaries into a `wb bench`-compatible report, one
/// workload per summary (`serve_keepalive`, `serve_close`, …). When both
/// keep-alive and close modes are present, a `serve_compare` workload
/// carries the keep-alive speedup.
pub fn to_bench_report(label: &str, summaries: &[LoadSummary]) -> BenchReport {
    let mut workloads = BTreeMap::new();
    for s in summaries {
        let mut m = BTreeMap::new();
        let hard = |v: f64, unit: &str| Metric { value: v, unit: unit.to_string(), hard: true };
        let soft =
            |v: f64, unit: &str| Metric { value: v, unit: unit.to_string(), hard: false };
        // Counts are hard: a dropped request, an unframeable response or a
        // transport error is a correctness bug, not scheduler noise.
        m.insert("work_units".into(), hard(s.requests as f64, "requests"));
        m.insert("framing_errors".into(), hard(s.framing_errors as f64, "errors"));
        m.insert("transport_errors".into(), hard(s.transport_errors as f64, "errors"));
        m.insert(
            "answered".into(),
            hard((s.ok + s.client_errors + s.server_errors) as f64, "responses"),
        );
        m.insert("throughput".into(), soft(s.rps(), "requests/s"));
        m.insert("latency_p50_us".into(), soft(s.quantile_us(0.50), "us"));
        m.insert("latency_p90_us".into(), soft(s.quantile_us(0.90), "us"));
        m.insert("latency_p99_us".into(), soft(s.quantile_us(0.99), "us"));
        m.insert("slo_attainment".into(), soft(s.slo_attainment(), "fraction"));
        m.insert(
            "reuse_fraction".into(),
            soft(s.reused as f64 / s.requests.max(1) as f64, "fraction"),
        );
        m.insert(
            "cache_hit_fraction".into(),
            soft(s.cache_hits as f64 / s.requests.max(1) as f64, "fraction"),
        );
        m.insert("conns_opened".into(), soft(s.conns_opened as f64, "conns"));
        workloads
            .insert(format!("serve_{}", s.mode), WorkloadResult { repeats: 1, metrics: m });
    }
    let keepalive = summaries.iter().find(|s| s.mode == "keepalive");
    let close = summaries.iter().find(|s| s.mode == "close");
    if let (Some(ka), Some(cl)) = (keepalive, close) {
        let mut m = BTreeMap::new();
        let speedup = if cl.rps() > 0.0 { ka.rps() / cl.rps() } else { 0.0 };
        m.insert(
            "keepalive_speedup".into(),
            Metric { value: speedup, unit: "x".to_string(), hard: false },
        );
        workloads.insert("serve_compare".into(), WorkloadResult { repeats: 1, metrics: m });
    }
    BenchReport {
        schema: SCHEMA.to_string(),
        label: label.to_string(),
        tier: "loadgen".to_string(),
        env: env_fingerprint(),
        workloads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn synthetic_pages_are_distinct_and_deterministic() {
        let a = synthetic_pages(8);
        let b = synthetic_pages(8);
        assert_eq!(a, b);
        for (i, p) in a.iter().enumerate() {
            for q in &a[i + 1..] {
                assert_ne!(p, q, "pages must be distinct cache keys");
            }
        }
        assert_eq!(synthetic_pages(0).len(), 1, "zero pages clamps to one");
    }

    #[test]
    fn summary_math_percentiles_rps_and_slo() {
        let s = LoadSummary {
            mode: "keepalive",
            requests: 4,
            ok: 4,
            client_errors: 0,
            server_errors: 0,
            transport_errors: 0,
            framing_errors: 0,
            conns_opened: 1,
            reused: 3,
            cache_hits: 2,
            elapsed: Duration::from_secs(2),
            latencies_us: vec![100, 200, 300, 400_000],
            slo_ms: 1.0,
        };
        assert_eq!(s.rps(), 2.0);
        assert_eq!(s.quantile_us(0.50), 200.0);
        assert_eq!(s.quantile_us(0.99), 400_000.0);
        assert_eq!(s.slo_attainment(), 0.75, "3 of 4 under 1ms");
        let text = s.render();
        assert!(text.contains("p99 400000"), "{text}");
        assert!(text.contains("75.00% attained"), "{text}");
    }

    #[test]
    fn bench_report_roundtrips_and_carries_speedup() {
        let ka = LoadSummary {
            mode: "keepalive",
            requests: 100,
            ok: 100,
            client_errors: 0,
            server_errors: 0,
            transport_errors: 0,
            framing_errors: 0,
            conns_opened: 4,
            reused: 96,
            cache_hits: 90,
            elapsed: Duration::from_secs(1),
            latencies_us: (1..=100).collect(),
            slo_ms: 50.0,
        };
        let mut cl = ka.clone();
        cl.mode = "close";
        cl.elapsed = Duration::from_secs(4);
        cl.reused = 0;
        cl.conns_opened = 100;
        let report = to_bench_report("serve", &[ka, cl]);
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        let cmp = crate::perf::compare(&report, &parsed, 1.0);
        assert!(cmp.failures.is_empty(), "{:?}", cmp.failures);
        let speedup = report.workloads["serve_compare"].metrics["keepalive_speedup"].value;
        assert!((speedup - 4.0).abs() < 1e-9, "100rps vs 25rps = 4x, got {speedup}");
        assert!(report.workloads["serve_keepalive"].metrics["framing_errors"].hard);
        assert!(!report.workloads["serve_keepalive"].metrics["throughput"].hard);
    }

    #[test]
    fn transport_errors_are_counted_not_fatal() {
        // A listener that accepts and immediately closes: every request is
        // a transport error, none crash the generator.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stop = Arc::new(AtomicU64::new(0));
        let server = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                listener.set_nonblocking(true).unwrap();
                while stop.load(Ordering::Relaxed) == 0 {
                    match listener.accept() {
                        Ok((s, _)) => drop(s),
                        Err(_) => std::thread::sleep(Duration::from_millis(2)),
                    }
                }
            })
        };
        let cfg = LoadConfig {
            addr: addr.to_string(),
            requests: 6,
            concurrency: 2,
            warmup: false,
            timeout: Duration::from_millis(500),
            ..LoadConfig::default()
        };
        let summary = run(&cfg).unwrap();
        stop.store(1, Ordering::Relaxed);
        server.join().unwrap();
        assert_eq!(summary.requests, 6);
        assert_eq!(summary.transport_errors, 6, "{summary:?}");
        assert_eq!(summary.ok, 0);
    }
}
