//! # wb-bench
//!
//! The experiment harness reproducing every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index). Each table has a
//! binary in `src/bin/`; this library holds the shared protocol: dataset
//! scales, the seen/unseen distillation setting, evaluation drivers and
//! result persistence.

pub mod loadgen;
pub mod perf;

use rayon::prelude::*;
use std::path::PathBuf;
use wb_core::{ModelConfig, PretrainConfig, TrainConfig, TrainableModel};
use wb_corpus::{Dataset, DatasetConfig, Example, Split, TopicId};
use wb_eval::{ExtractionScores, GenerationScores, ResultTable};
use wb_nn::EmbedderKind;
use wb_tensor::Params;

/// Experiment scale, selected with the `WB_SCALE` environment variable
/// (`tiny` | `small` | `full`). `small` is the default and runs every table
/// in minutes on one CPU; `full` follows the paper's 160-topic / 140-seen /
/// 20-unseen protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 16 topics × 6 pages — smoke-test sized.
    Tiny,
    /// 24 topics × 12 pages — the default reported in EXPERIMENTS.md.
    Small,
    /// 160 topics × 24 pages — protocol-faithful (hours of CPU).
    Full,
}

impl Scale {
    /// Reads `WB_SCALE` (default `small`).
    pub fn from_env() -> Scale {
        match std::env::var("WB_SCALE").unwrap_or_default().as_str() {
            "tiny" => Scale::Tiny,
            "full" => Scale::Full,
            _ => Scale::Small,
        }
    }

    /// The dataset configuration at this scale.
    pub fn dataset_config(self) -> DatasetConfig {
        match self {
            Scale::Tiny => DatasetConfig::tiny(),
            Scale::Small => {
                let mut c = DatasetConfig::experiment(12);
                c.subjects_per_family = 3;
                c
            }
            Scale::Full => DatasetConfig::experiment(24),
        }
    }

    /// Number of held-out (unseen) topics for the distillation protocol
    /// (paper: 20 of 160).
    pub fn n_unseen(self) -> usize {
        match self {
            Scale::Tiny => 3,
            Scale::Small => 5,
            Scale::Full => 20,
        }
    }

    /// Training epochs for static-embedding models at this scale.
    pub fn epochs(self) -> usize {
        match self {
            Scale::Tiny => 30,
            Scale::Small => 15,
            Scale::Full => 9,
        }
    }

    /// Training epochs for contextual (MiniBert-based) models, which need
    /// longer at a lower learning rate.
    pub fn epochs_contextual(self) -> usize {
        match self {
            Scale::Tiny => 60,
            Scale::Small => 30,
            Scale::Full => 12,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Full => "full",
        }
    }
}

/// Generates the experiment dataset at a scale.
pub fn experiment_dataset(scale: Scale) -> Dataset {
    Dataset::generate(&scale.dataset_config())
}

/// The model configuration used by experiments.
pub fn model_config(d: &Dataset) -> ModelConfig {
    ModelConfig::scaled(d.tokenizer.vocab().len())
}

/// The training configuration for static-embedding models (tuned on dev:
/// lr 0.08).
pub fn train_config(scale: Scale) -> TrainConfig {
    let mut c = TrainConfig::scaled(scale.epochs());
    c.lr = 0.08;
    c.decay = 0.97;
    c
}

/// The training configuration for contextual (MiniBert-based) models
/// (tuned on dev: lr 0.01, longer schedule).
pub fn train_config_contextual(scale: Scale) -> TrainConfig {
    let mut c = TrainConfig::scaled(scale.epochs_contextual());
    c.lr = 0.01;
    c.decay = 0.98;
    c
}

/// In-domain pre-trained embedders (see `wb_core::pretrain`): the paper
/// fine-tunes *pre-trained* GloVe/BERT/BERTSUM encoders, so every
/// experiment model warm-starts its embedder from these.
pub struct Pretrained {
    /// MLM-pre-trained contextual encoder (BERTSUM superset).
    pub contextual: Params,
    /// Skip-gram-pre-trained static table.
    pub static_table: Params,
}

/// Runs both pre-training passes over the training split.
pub fn pretrain_for(
    d: &wb_corpus::Dataset,
    mc: &ModelConfig,
    train_idx: &[usize],
    scale: Scale,
) -> Pretrained {
    let cfg = PretrainConfig {
        epochs: match scale {
            Scale::Tiny => 10,
            Scale::Small => 8,
            Scale::Full => 4,
        },
        ..Default::default()
    };
    let contextual = timed("pretrain contextual (MLM)", || {
        wb_core::pretrain_contextual(d, mc, train_idx, cfg)
    });
    let static_table = timed("pretrain static (skip-gram)", || {
        wb_core::pretrain_static(d, mc, train_idx, cfg)
    });
    Pretrained { contextual, static_table }
}

impl Pretrained {
    /// Warm-starts a model's embedder from the pre-trained store matching
    /// its embedding kind. Static models are left at their random
    /// initialisation: with pre-training and task data drawn from the same
    /// corpus, the skip-gram warm start measurably *hurts* static models at
    /// this scale (it collapses co-occurring words the tagger must
    /// separate), while the paper's GloVe advantage comes from scarce
    /// downstream data — see EXPERIMENTS.md. The MLM warm start for
    /// contextual encoders is what carries the paper's
    /// contextual-beats-static contrast.
    pub fn warm_start<M: TrainableModel>(&self, model: &mut M, kind: EmbedderKind) {
        let src = match kind {
            EmbedderKind::Static => return,
            EmbedderKind::Bert | EmbedderKind::BertSum => &self.contextual,
        };
        let moved = wb_core::transfer_embedder(model.params_mut(), src);
        assert!(moved > 0, "warm start transferred nothing — name mismatch?");
    }
}

/// Token ids of a topic's phrase (no `[EOS]`).
pub fn phrase_ids(d: &Dataset, t: TopicId) -> Vec<u32> {
    d.taxonomy.topic(t).phrase.iter().flat_map(|w| d.tokenizer.encode(w)).collect()
}

/// Phrase token ids for a list of topics.
pub fn phrase_bank_inputs(d: &Dataset, topics: &[TopicId]) -> Vec<Vec<u32>> {
    topics.iter().map(|&t| phrase_ids(d, t)).collect()
}

/// Evaluates topic generation over examples, returning aggregate scores and
/// the per-example exact-match vector (for McNemar's test).
pub fn eval_generation<F>(
    d: &Dataset,
    indices: &[usize],
    gen: F,
) -> (GenerationScores, Vec<bool>)
where
    F: Fn(&Example) -> Vec<u32> + Sync,
{
    let per: Vec<(Vec<u32>, &Example)> = indices
        .par_iter()
        .map(|&i| {
            let ex = &d.examples[i];
            (gen(ex), ex)
        })
        .collect();
    let mut scores = GenerationScores::default();
    let mut exact = Vec::with_capacity(per.len());
    for (out, ex) in per {
        let gold = &ex.topic_target[..ex.topic_target.len() - 1];
        scores.update(&out, gold);
        exact.push(GenerationScores::is_exact(&out, gold));
    }
    (scores, exact)
}

/// Evaluates attribute extraction over examples.
pub fn eval_extraction<F>(d: &Dataset, indices: &[usize], tags: F) -> ExtractionScores
where
    F: Fn(&Example) -> Vec<u8> + Sync,
{
    let per: Vec<ExtractionScores> = indices
        .par_iter()
        .map(|&i| {
            let ex = &d.examples[i];
            let pred = wb_eval::bio_to_spans(&tags(ex));
            let gold: Vec<(usize, usize)> =
                ex.attr_spans.iter().map(|&(_, s, e)| (s, e)).collect();
            let mut s = ExtractionScores::default();
            s.update(&pred, &gold);
            s
        })
        .collect();
    let mut total = ExtractionScores::default();
    for s in &per {
        total.merge(s);
    }
    total
}

/// The seen/unseen distillation protocol of §IV-B: teachers train on seen
/// topics; students distill on all topics; evaluation splits the test set
/// into unseen / seen / all.
pub struct DistillSetting {
    /// Seen topic ids (`r` topics).
    pub seen: Vec<TopicId>,
    /// Unseen topic ids (`k` topics).
    pub unseen: Vec<TopicId>,
    /// The 80/10/10 split over all examples.
    pub split: Split,
    /// Training indices restricted to seen topics (teacher training set).
    pub seen_train: Vec<usize>,
    /// Test indices restricted to unseen topics.
    pub test_unseen: Vec<usize>,
    /// Test indices restricted to seen topics.
    pub test_seen: Vec<usize>,
}

impl DistillSetting {
    /// Builds the protocol deterministically.
    pub fn new(d: &Dataset, n_unseen: usize, seed: u64) -> Self {
        let split = d.split(seed);
        let (seen, unseen) = d.topic_partition(n_unseen, seed.wrapping_add(1));
        let seen_train = d.restrict(&split.train, &seen);
        let test_unseen = d.restrict(&split.test, &unseen);
        let test_seen = d.restrict(&split.test, &seen);
        DistillSetting { seen, unseen, split, seen_train, test_unseen, test_seen }
    }
}

/// Writes a result table to `results/<name>.{txt,json,md}` and prints it.
pub fn save_table(table: &ResultTable, name: &str) {
    println!("{}", table.render());
    let dir = results_dir();
    std::fs::create_dir_all(&dir).expect("create results dir");
    std::fs::write(dir.join(format!("{name}.txt")), table.render()).expect("write table txt");
    std::fs::write(
        dir.join(format!("{name}.json")),
        serde_json::to_string_pretty(table).expect("serialize table"),
    )
    .expect("write table json");
    std::fs::write(dir.join(format!("{name}.md")), table.render_markdown())
        .expect("write table md");
}

/// The `results/` directory at the workspace root. Under `cargo run` this
/// resolves relative to the bench crate's manifest; when a binary is
/// invoked directly it falls back to `./results` in the current directory.
pub fn results_dir() -> PathBuf {
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(manifest) => PathBuf::from(manifest).join("../..").join("results"),
        Err(_) => PathBuf::from("results"),
    }
}

/// Wall-clock timing helper for experiment logs.
pub fn timed<T>(label: &str, f: impl FnOnce() -> T) -> T {
    let t0 = std::time::Instant::now();
    let out = f();
    eprintln!("[{label}] {:.1}s", t0.elapsed().as_secs_f32());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_have_increasing_topics() {
        assert!(
            Scale::Tiny.dataset_config().subjects_per_family
                < Scale::Small.dataset_config().subjects_per_family
        );
        assert!(
            Scale::Small.dataset_config().subjects_per_family
                < Scale::Full.dataset_config().subjects_per_family
        );
    }

    #[test]
    fn full_scale_matches_paper_protocol() {
        let cfg = Scale::Full.dataset_config();
        assert_eq!(cfg.subjects_per_family * 8, 160);
        assert_eq!(Scale::Full.n_unseen(), 20);
    }

    #[test]
    fn distill_setting_partitions_cleanly() {
        let d = experiment_dataset(Scale::Tiny);
        let s = DistillSetting::new(&d, 3, 7);
        assert_eq!(s.seen.len() + s.unseen.len(), d.taxonomy.len());
        assert!(!s.test_unseen.is_empty());
        assert!(!s.test_seen.is_empty());
        for &i in &s.seen_train {
            assert!(s.seen.contains(&d.examples[i].topic));
        }
    }

    #[test]
    fn eval_helpers_agree_with_oracle() {
        let d = experiment_dataset(Scale::Tiny);
        let idx: Vec<usize> = (0..8).collect();
        let (gen, exact) = eval_generation(&d, &idx, |ex| {
            ex.topic_target[..ex.topic_target.len() - 1].to_vec()
        });
        assert_eq!(gen.em(), 100.0);
        assert!(exact.iter().all(|&b| b));
        let ext = eval_extraction(&d, &idx, |ex| ex.bio.clone());
        assert_eq!(ext.f1(), 100.0);
    }
}
