//! Measures the cost of `wb-obs` instrumentation on the matmul hot path.
//!
//! Every `wb_tensor::matmul` dispatch bumps four-ish counters (call
//! variant, FLOPs, parallel/serial); this bench runs the same matmul with
//! the registry enabled and disabled so the per-call overhead is visible
//! directly. The acceptance bar for the observability layer is < 2%
//! overhead on the instrumented path — counters are relaxed atomic
//! increments behind a single branch, so the two timings should be
//! indistinguishable at matmul granularity.
//!
//! A third case benchmarks the raw macro cost in isolation (no matmul),
//! which is the number that matters for very hot, very small call sites.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wb_tensor::Tensor;

const SHAPE: (usize, usize, usize) = (64, 64, 64);

fn bench_instrumented(c: &mut Criterion) {
    let (m, k, n) = SHAPE;
    let a = Tensor::full(&[m, k], 0.5);
    let b = Tensor::full(&[k, n], 0.25);
    wb_obs::set_enabled(true);
    c.bench_function("matmul_64x64x64_obs_enabled", |bench| {
        bench.iter(|| black_box(a.matmul(&b, false, false)));
    });
}

fn bench_disabled(c: &mut Criterion) {
    let (m, k, n) = SHAPE;
    let a = Tensor::full(&[m, k], 0.5);
    let b = Tensor::full(&[k, n], 0.25);
    wb_obs::set_enabled(false);
    c.bench_function("matmul_64x64x64_obs_disabled", |bench| {
        bench.iter(|| black_box(a.matmul(&b, false, false)));
    });
    wb_obs::set_enabled(true);
}

fn bench_macro_costs(c: &mut Criterion) {
    wb_obs::set_enabled(true);
    c.bench_function("counter_macro_enabled", |b| {
        b.iter(|| wb_obs::counter!("bench.obs.counter"));
    });
    c.bench_function("histogram_macro_enabled", |b| {
        b.iter(|| wb_obs::histogram!("bench.obs.histogram", black_box(1.5)));
    });
    c.bench_function("span_macro_enabled", |b| {
        b.iter(|| {
            let _s = wb_obs::span!("bench.obs.span");
        });
    });
    // Windowed (sliding 10s/60s) variants: the acceptance bar is within
    // 2x of the cumulative counter path — one extra tag check plus a
    // single relaxed add per hit (retired totals fold in at slot recycle).
    c.bench_function("window_counter_macro_enabled", |b| {
        b.iter(|| wb_obs::window_counter!("bench.obs.window_counter"));
    });
    c.bench_function("window_histogram_macro_enabled", |b| {
        b.iter(|| wb_obs::window_histogram!("bench.obs.window_histogram", black_box(1.5)));
    });
    wb_obs::set_enabled(false);
    c.bench_function("counter_macro_disabled", |b| {
        b.iter(|| wb_obs::counter!("bench.obs.counter"));
    });
    c.bench_function("window_counter_macro_disabled", |b| {
        b.iter(|| wb_obs::window_counter!("bench.obs.window_counter"));
    });
    wb_obs::set_enabled(true);
}

fn bench_fault_point_unarmed(c: &mut Criterion) {
    // The robustness bar for `wb-chaos`: an unarmed fault point is one
    // relaxed atomic load and must be free at hot-path granularity. (This
    // process never arms faults, so the armed branch is dead here.)
    assert!(!wb_chaos::armed(), "bench process must not arm faults");
    c.bench_function("fault_point_unarmed", |b| {
        b.iter(|| black_box(wb_chaos::fault_point!("bench.chaos.unarmed")));
    });
}

criterion_group!(
    benches,
    bench_instrumented,
    bench_disabled,
    bench_macro_costs,
    bench_fault_point_unarmed
);
criterion_main!(benches);
