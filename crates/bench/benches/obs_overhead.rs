//! Measures the cost of `wb-obs` instrumentation on the matmul hot path.
//!
//! Every `wb_tensor::matmul` dispatch bumps four-ish counters (call
//! variant, FLOPs, parallel/serial); this bench runs the same matmul with
//! the registry enabled and disabled so the per-call overhead is visible
//! directly. The acceptance bar for the observability layer is < 2%
//! overhead on the instrumented path — counters are relaxed atomic
//! increments behind a single branch, so the two timings should be
//! indistinguishable at matmul granularity.
//!
//! A third case benchmarks the raw macro cost in isolation (no matmul),
//! which is the number that matters for very hot, very small call sites.
//!
//! The profiler cases measure the same traced-brief workload with the
//! sampling profiler disarmed (the steady state: one relaxed load per
//! span enter/exit) and armed at 99 Hz (shadow-stack mirroring on every
//! span operation plus the sampler thread); the acceptance bar is < 2%
//! armed overhead. The allocation cases measure span-level allocation
//! attribution on/off through the counting global allocator installed
//! below; the bar there is < 5%.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use wb_bench::{experiment_dataset, model_config, Scale};
use wb_core::{Briefer, TrainConfig};
use wb_corpus::{generate_page, PageConfig};
use wb_tensor::Tensor;

// The bench binary routes allocations through the counting wrapper so the
// attribution on/off comparison exercises the real production path (the
// `wb` binary installs the same allocator).
#[global_allocator]
static ALLOC: wb_obs::alloc::Counting = wb_obs::alloc::Counting;

const SHAPE: (usize, usize, usize) = (64, 64, 64);

/// Trains a tiny briefer and renders one page, the traced-brief fixture
/// shared by the profiler and allocation benches.
fn traced_brief_fixture() -> (Briefer, String) {
    let dataset = experiment_dataset(Scale::Tiny);
    let mut tc = TrainConfig::scaled(1);
    tc.lr = 0.02;
    let briefer = Briefer::train_with(&dataset, model_config(&dataset), tc, 7);
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let topic = &dataset.taxonomy.topics()[0];
    let html = generate_page(topic, PageConfig::default(), &mut rng).dom.to_html();
    (briefer, html)
}

fn bench_instrumented(c: &mut Criterion) {
    let (m, k, n) = SHAPE;
    let a = Tensor::full(&[m, k], 0.5);
    let b = Tensor::full(&[k, n], 0.25);
    wb_obs::set_enabled(true);
    c.bench_function("matmul_64x64x64_obs_enabled", |bench| {
        bench.iter(|| black_box(a.matmul(&b, false, false)));
    });
}

fn bench_disabled(c: &mut Criterion) {
    let (m, k, n) = SHAPE;
    let a = Tensor::full(&[m, k], 0.5);
    let b = Tensor::full(&[k, n], 0.25);
    wb_obs::set_enabled(false);
    c.bench_function("matmul_64x64x64_obs_disabled", |bench| {
        bench.iter(|| black_box(a.matmul(&b, false, false)));
    });
    wb_obs::set_enabled(true);
}

fn bench_macro_costs(c: &mut Criterion) {
    wb_obs::set_enabled(true);
    c.bench_function("counter_macro_enabled", |b| {
        b.iter(|| wb_obs::counter!("bench.obs.counter"));
    });
    c.bench_function("histogram_macro_enabled", |b| {
        b.iter(|| wb_obs::histogram!("bench.obs.histogram", black_box(1.5)));
    });
    c.bench_function("span_macro_enabled", |b| {
        b.iter(|| {
            let _s = wb_obs::span!("bench.obs.span");
        });
    });
    // Windowed (sliding 10s/60s) variants: the acceptance bar is within
    // 2x of the cumulative counter path — one extra tag check plus a
    // single relaxed add per hit (retired totals fold in at slot recycle).
    c.bench_function("window_counter_macro_enabled", |b| {
        b.iter(|| wb_obs::window_counter!("bench.obs.window_counter"));
    });
    c.bench_function("window_histogram_macro_enabled", |b| {
        b.iter(|| wb_obs::window_histogram!("bench.obs.window_histogram", black_box(1.5)));
    });
    wb_obs::set_enabled(false);
    c.bench_function("counter_macro_disabled", |b| {
        b.iter(|| wb_obs::counter!("bench.obs.counter"));
    });
    c.bench_function("window_counter_macro_disabled", |b| {
        b.iter(|| wb_obs::window_counter!("bench.obs.window_counter"));
    });
    wb_obs::set_enabled(true);
}

fn bench_profiler_overhead(c: &mut Criterion) {
    let (briefer, html) = traced_brief_fixture();
    wb_obs::set_enabled(true);

    // Baseline: the profiler exists but is disarmed — every span enter and
    // exit pays exactly one relaxed load of the armed flag.
    c.bench_function("traced_brief_profiler_disarmed", |b| {
        b.iter(|| black_box(briefer.brief_html(&html).expect("page briefs")));
    });

    // Armed at the default 99 Hz: span operations mirror the stack into
    // the seqlock-protected shadow and the sampler thread walks it.
    let recorder = wb_obs::profile::start(wb_obs::profile::Options {
        hz: 99,
        mode: wb_obs::profile::Mode::Wall,
    })
    .expect("profiler arms");
    c.bench_function("traced_brief_profiler_armed_99hz", |b| {
        b.iter(|| black_box(briefer.brief_html(&html).expect("page briefs")));
    });
    c.bench_function("span_macro_profiler_armed", |b| {
        b.iter(|| {
            let _s = wb_obs::span!("bench.obs.span.armed");
        });
    });
    let profile = recorder.stop();
    eprintln!(
        "[bench] profiler captured {} rounds / {} samples while armed",
        profile.rounds, profile.total_weight
    );
}

fn bench_alloc_attribution(c: &mut Criterion) {
    let (briefer, html) = traced_brief_fixture();
    wb_obs::set_enabled(true);

    assert!(!wb_obs::alloc::tracking(), "bench starts with attribution off");
    c.bench_function("traced_brief_alloc_track_off", |b| {
        b.iter(|| black_box(briefer.brief_html(&html).expect("page briefs")));
    });

    wb_obs::alloc::set_tracking(true);
    c.bench_function("traced_brief_alloc_track_on", |b| {
        b.iter(|| black_box(briefer.brief_html(&html).expect("page briefs")));
    });
    c.bench_function("span_macro_alloc_track_on", |b| {
        b.iter(|| {
            let _s = wb_obs::span!("bench.obs.span.alloc");
            black_box(Vec::<u8>::with_capacity(64));
        });
    });
    wb_obs::alloc::set_tracking(false);
}

fn bench_fault_point_unarmed(c: &mut Criterion) {
    // The robustness bar for `wb-chaos`: an unarmed fault point is one
    // relaxed atomic load and must be free at hot-path granularity. (This
    // process never arms faults, so the armed branch is dead here.)
    assert!(!wb_chaos::armed(), "bench process must not arm faults");
    c.bench_function("fault_point_unarmed", |b| {
        b.iter(|| black_box(wb_chaos::fault_point!("bench.chaos.unarmed")));
    });
}

criterion_group!(
    benches,
    bench_instrumented,
    bench_disabled,
    bench_macro_costs,
    bench_profiler_overhead,
    bench_alloc_attribution,
    bench_fault_point_unarmed
);
criterion_main!(benches);
