//! Criterion micro-benchmarks for the `wb-tensor` substrate: matmul shapes
//! used by the models, softmax, and a full forward+backward tape.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wb_tensor::{Graph, Initializer, Params, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &(m, k, n) in &[(128usize, 20usize, 20usize), (128, 20, 64), (32, 32, 1600)] {
        let a = Tensor::full(&[m, k], 0.5);
        let b = Tensor::full(&[k, n], 0.25);
        group.bench_function(format!("{m}x{k}x{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b, false, false)));
        });
    }
    group.finish();
}

fn bench_softmax(c: &mut Criterion) {
    let t = Tensor::full(&[128, 128], 0.1);
    c.bench_function("softmax_128x128", |b| {
        b.iter(|| black_box(t.softmax_rows(2.0)));
    });
}

fn bench_tape_forward_backward(c: &mut Criterion) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut params = Params::new();
    let w1 = params.add_init("w1", &[64, 64], Initializer::XavierUniform, &mut rng);
    let w2 = params.add_init("w2", &[64, 64], Initializer::XavierUniform, &mut rng);
    let x = Tensor::full(&[32, 64], 0.1);
    c.bench_function("mlp_tape_fwd_bwd_32x64", |b| {
        b.iter(|| {
            let mut g = Graph::new(&params, true, 1);
            let xv = g.input(x.clone());
            let w1v = g.param(w1);
            let h = g.matmul(xv, w1v);
            let h = g.tanh(h);
            let w2v = g.param(w2);
            let y = g.matmul(h, w2v);
            let loss = g.mean_all(y);
            black_box(g.backward(loss));
        });
    });
}

criterion_group!(benches, bench_matmul, bench_softmax, bench_tape_forward_backward);
criterion_main!(benches);
