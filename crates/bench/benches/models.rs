//! Criterion benchmarks for the models: Joint-WB forward pass, one
//! training step (forward + backward), a Dual-Distill step, and beam-search
//! inference.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wb_bench::{experiment_dataset, model_config, phrase_bank_inputs, DistillSetting, Scale};
use wb_core::{
    DistillConfig, DistillParts, DualDistill, Generator, JointGenerationTeacher, JointModel,
    JointVariant, PhraseBank, TeacherCache, TrainableModel,
};
use wb_nn::EmbedderKind;
use wb_tensor::Graph;

fn bench_joint_wb(c: &mut Criterion) {
    let d = experiment_dataset(Scale::Tiny);
    let mc = model_config(&d);
    let model = JointModel::new(JointVariant::JointWb, mc, 0);
    let ex = &d.examples[0];

    c.bench_function("joint_wb_forward", |b| {
        b.iter(|| {
            let mut g = Graph::new(model.params(), false, 0);
            black_box(model.forward(&mut g, ex, &ex.topic_target));
        });
    });

    c.bench_function("joint_wb_train_step", |b| {
        b.iter(|| {
            let mut g = Graph::new(model.params(), true, 0);
            let loss = model.loss(&mut g, 0, ex);
            black_box(g.backward(loss));
        });
    });

    c.bench_function("joint_wb_beam_search", |b| {
        b.iter(|| black_box(model.generate(ex)));
    });
}

fn bench_distill_step(c: &mut Criterion) {
    let d = experiment_dataset(Scale::Tiny);
    let setting = DistillSetting::new(&d, 3, 7);
    let mc = model_config(&d);
    let teacher = JointModel::new(JointVariant::JointWb, mc, 0);
    let view = JointGenerationTeacher(&teacher);
    let idx: Vec<usize> = setting.split.train.iter().copied().take(4).collect();
    let cache = TeacherCache::build(&view, &d.examples, &idx, 2.0);
    let bank = PhraseBank::build(&view, &phrase_bank_inputs(&d, &setting.seen));
    let student = Generator::new(EmbedderKind::Static, false, mc, 9);
    let dd = DualDistill::new(
        student,
        cache,
        bank,
        DistillConfig::default(),
        DistillParts::dual(),
        1,
    );
    let ex = &d.examples[idx[0]];
    c.bench_function("dual_distill_step", |b| {
        b.iter(|| {
            let mut g = Graph::new(dd.params(), true, 0);
            let loss = dd.loss(&mut g, 0, ex);
            black_box(g.backward(loss));
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_joint_wb, bench_distill_step
}
criterion_main!(benches);
