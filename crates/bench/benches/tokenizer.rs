//! Criterion benchmarks for the text pipeline: normalisation, WordPiece
//! encoding and document chunking throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use wb_text::{
    normalize, split_sentences, ChunkConfig, EncodedDoc, WordPiece, WordPieceConfig,
};

fn sample_text() -> String {
    let sentence =
        "discover the best deep learning books, price : $ 40.13 , free shipping today.\n";
    sentence.repeat(100)
}

fn bench_normalize(c: &mut Criterion) {
    let text = sample_text();
    let mut group = c.benchmark_group("text");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("normalize", |b| {
        b.iter(|| black_box(normalize(&text)));
    });
    group.finish();
}

fn bench_wordpiece_encode(c: &mut Criterion) {
    let text = sample_text();
    let wp = WordPiece::train([text.as_str()].into_iter(), WordPieceConfig::default());
    let mut group = c.benchmark_group("text");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("wordpiece_encode", |b| {
        b.iter(|| black_box(wp.encode(&text)));
    });
    group.finish();
}

fn bench_document_encoding(c: &mut Criterion) {
    let text = sample_text();
    let wp = WordPiece::train([text.as_str()].into_iter(), WordPieceConfig::default());
    let sentences = split_sentences(&text);
    c.bench_function("encoded_doc_512", |b| {
        b.iter(|| {
            black_box(EncodedDoc::from_sentences(
                &sentences,
                &wp,
                ChunkConfig::scaled(512, 128),
            ))
        });
    });
}

criterion_group!(benches, bench_normalize, bench_wordpiece_encode, bench_document_encoding);
criterion_main!(benches);
