//! Serial-vs-parallel benchmarks for the rayon-backed compute layer: the
//! matmul kernel at sizes around the parallelism thresholds, and
//! end-to-end briefing throughput via `Briefer::brief_corpus`.
//!
//! `matmul_serial` is the bit-identical single-thread reference, so the
//! `serial/...` and `parallel/...` entries measure exactly the same
//! arithmetic — the gap is pure scheduling win (or overhead, below the
//! thresholds).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use wb_core::{Briefer, JointModel, JointVariant, ModelConfig};
use wb_corpus::{Dataset, DatasetConfig};
use wb_tensor::Tensor;

fn bench_matmul_serial_vs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[64usize, 128, 256, 384] {
        let a = Tensor::full(&[n, n], 0.5);
        let b = Tensor::full(&[n, n], 0.25);
        group.bench_function(format!("serial/{n}x{n}"), |bench| {
            bench.iter(|| black_box(a.matmul_serial(&b, false, false)));
        });
        group.bench_function(format!("parallel/{n}x{n}"), |bench| {
            bench.iter(|| black_box(a.matmul(&b, false, false)));
        });
    }
    group.finish();
}

fn bench_matmul_into(c: &mut Criterion) {
    let n = 256usize;
    let a = Tensor::full(&[n, n], 0.5);
    let b = Tensor::full(&[n, n], 0.25);
    let mut out = Tensor::zeros(&[n, n]);
    c.bench_function("matmul_into/256x256", |bench| {
        bench.iter(|| {
            a.matmul_into(&b, false, false, &mut out);
            black_box(out.data()[0]);
        });
    });
}

fn bench_brief_corpus(c: &mut Criterion) {
    let d = Dataset::generate(&DatasetConfig::tiny());
    let cfg = ModelConfig::scaled(d.tokenizer.vocab().len());
    let model = JointModel::new(JointVariant::JointWb, cfg, 0);
    let briefer = Briefer::from_model(model, d.tokenizer.clone());
    let pages: Vec<String> = (0..16)
        .map(|i| {
            format!(
                "<html><body><section><h1>Item {i}</h1>\
                 <p>Great velcro books volume {i}, price : $ {}.50 today.</p>\
                 <p>Author : emma smith. Category : fiction goods.</p>\
                 </section></body></html>",
                10 + i
            )
        })
        .collect();

    let mut group = c.benchmark_group("brief_corpus");
    group.bench_function("serial/16_pages", |bench| {
        std::env::set_var("RAYON_NUM_THREADS", "1");
        bench.iter(|| black_box(briefer.brief_corpus(&pages)));
        std::env::remove_var("RAYON_NUM_THREADS");
    });
    group.bench_function("parallel/16_pages", |bench| {
        bench.iter(|| black_box(briefer.brief_corpus(&pages)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul_serial_vs_parallel,
    bench_matmul_into,
    bench_brief_corpus
);
criterion_main!(benches);
