//! Hostile-corpus generation: websites exported to disk as raw `.html`
//! files, seeded with the malformations a real crawl delivers — truncated
//! transfers, unclosed/interleaved tags, oversized attributes, nesting
//! bombs, byte garbage, boilerplate-stuffed pages and near-duplicate farms.
//! The `wb crawl-brief` pipeline must survive all of it: hostile pages are
//! quarantined or degraded per-page, never allowed to kill the run.
//!
//! Unlike [`crate::generate_website`], pages here are *strings*, not DOM
//! nodes — malformed HTML cannot exist as a parsed `Node` by construction,
//! so the hostile site lives at the byte level, exactly as on disk.

use crate::page::{generate_page, PageConfig};
use crate::taxonomy::{TopicSpec, BOILERPLATE};
use rand::rngs::StdRng;
use rand::Rng;
use std::io;
use std::path::{Path, PathBuf};

/// Which hostility mix a generated site carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteScenario {
    /// Well-formed content pages only.
    Clean,
    /// Every third page is malformed (truncation, tag soup, nesting bombs,
    /// oversized attributes, byte garbage, invisible-only pages).
    Malformed,
    /// Every third page is boilerplate-stuffed chaff that still classifies
    /// as content-rich.
    Boilerplate,
    /// One base page plus a farm of near-duplicates of it.
    NearDup,
    /// Cycles through clean / malformed / boilerplate / near-dup pages.
    Mixed,
}

impl SiteScenario {
    /// Parses a CLI scenario name.
    pub fn parse(s: &str) -> Option<SiteScenario> {
        match s {
            "clean" => Some(SiteScenario::Clean),
            "malformed" => Some(SiteScenario::Malformed),
            "boilerplate" => Some(SiteScenario::Boilerplate),
            "near-dup" => Some(SiteScenario::NearDup),
            "mixed" => Some(SiteScenario::Mixed),
            _ => None,
        }
    }

    /// All scenario names accepted by [`SiteScenario::parse`].
    pub const NAMES: &'static [&'static str] =
        &["clean", "malformed", "boilerplate", "near-dup", "mixed"];
}

/// One file of an on-disk website.
#[derive(Debug, Clone)]
pub struct SiteFile {
    /// Site-relative URL (`/`, `/page/3`, …).
    pub url: String,
    /// Raw file contents — possibly malformed on purpose.
    pub html: String,
}

/// A generated on-disk website: the root index plus child pages.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// All files, index first.
    pub files: Vec<SiteFile>,
    /// URLs of the pages generated hostile (malformed variants).
    pub hostile: Vec<String>,
}

/// Maps a site-relative URL to its on-disk file path: `/` → `index.html`,
/// `/page/3` → `page/3.html`.
pub fn url_to_path(url: &str) -> PathBuf {
    let rest = url.trim_start_matches('/');
    if rest.is_empty() {
        PathBuf::from("index.html")
    } else {
        PathBuf::from(format!("{rest}.html"))
    }
}

/// Inserts crawl-graph links as a hidden `<nav>` just inside the closing
/// `</body>`: invisible to [`wb_html::visible_text`] (so briefs are
/// unaffected) but visible to the URL frontier via `<a href>`.
pub fn with_hidden_nav(html: &str, links: &[String]) -> String {
    if links.is_empty() {
        return html.to_string();
    }
    let anchors: String = links.iter().map(|u| format!("<a href=\"{u}\"></a>")).collect();
    let nav = format!("<nav hidden>{anchors}</nav>");
    match html.rfind("</body>") {
        Some(pos) => format!("{}{}{}", &html[..pos], nav, &html[pos..]),
        None => format!("{html}{nav}"),
    }
}

/// A page guaranteed to fail parsing with a clean `TooDeep` error — the
/// nesting bomb that used to overflow the parser stack. Deterministic, so
/// tests can drop one into a site and assert exactly it gets quarantined.
pub fn poison_page() -> String {
    "<div>".repeat(wb_html::MAX_DEPTH + 8)
}

/// A page that parses but renders no visible text (everything hidden):
/// the briefer must reject it as empty, not crash or emit a junk brief.
pub fn invisible_page() -> String {
    "<body><div hidden><p>nothing you can see</p></div>\
     <p style=\"display:none\">still nothing</p></body>"
        .to_string()
}

/// One malformed page; `variant` cycles round-robin so every site with
/// enough hostile slots is guaranteed to contain each malformation kind.
pub fn malformed_page(variant: usize, topic: &TopicSpec, rng: &mut StdRng) -> String {
    match variant % 6 {
        // Truncated transfer: a valid page cut off inside a tag.
        0 => {
            let full = generate_page(topic, PageConfig::default(), rng).dom.to_html();
            let cut = full.len() / 2;
            let mut end = cut;
            while end > 0 && !full.is_char_boundary(end) {
                end -= 1;
            }
            format!("{}<a href=\"/trunc", &full[..end])
        }
        // Unclosed and interleaved tags: lenient recovery territory.
        1 => "<body><div><p>opening text<b>bold run<div>deeper\
              </p><span>stray close</div><i>never closed</body>"
            .to_string(),
        // Oversized attribute value (64 KiB of padding).
        2 => {
            let pad = "x".repeat(64 * 1024);
            format!("<body><p data-pad=\"{pad}\">padded paragraph text here</p></body>")
        }
        // Nesting bomb beyond MAX_DEPTH.
        3 => poison_page(),
        // Byte garbage.
        4 => {
            let bytes: Vec<u8> = (0..256).map(|_| rng.gen_range(0..=255u8)).collect();
            String::from_utf8_lossy(&bytes).into_owned()
        }
        // Parses fine, but nothing is visible.
        _ => invisible_page(),
    }
}

/// A boilerplate-stuffed page: classifies content-rich (lots of words, few
/// links) but carries almost no informative content — adversarial chaff
/// for the summariser.
pub fn boilerplate_page(rng: &mut StdRng) -> String {
    let mut body = String::from("<body><nav>");
    for w in BOILERPLATE.iter().take(8) {
        body.push_str(&format!("<a href=\"#{w}\">{w}</a> "));
    }
    body.push_str("</nav>");
    let n_paras = rng.gen_range(8..14);
    for _ in 0..n_paras {
        let words: Vec<&str> = (0..rng.gen_range(9..16))
            .map(|_| BOILERPLATE[rng.gen_range(0..BOILERPLATE.len())])
            .collect();
        body.push_str(&format!("<p>{}</p>", words.join(" ")));
    }
    body.push_str("<footer>copyright terms privacy contact</footer></body>");
    body
}

/// Generation parameters for [`generate_site`].
#[derive(Debug, Clone, Copy)]
pub struct SiteSpecConfig {
    /// Number of child pages (the index is extra).
    pub pages: usize,
    /// Hostility mix.
    pub scenario: SiteScenario,
    /// Page shape for the clean content pages.
    pub page: PageConfig,
}

impl Default for SiteSpecConfig {
    fn default() -> Self {
        SiteSpecConfig { pages: 12, scenario: SiteScenario::Clean, page: PageConfig::default() }
    }
}

/// Generates an on-disk website: an index page linking into the first few
/// child pages, each child chaining onwards through hidden-nav links so
/// the crawl frontier grows incrementally instead of all at once.
pub fn generate_site(topic: &TopicSpec, cfg: SiteSpecConfig, rng: &mut StdRng) -> SiteSpec {
    let n = cfg.pages;
    let url = |i: usize| format!("/page/{i}");

    // The index: visible links to the first few pages, plus fragment
    // padding so it classifies as an index page (≥10 anchors, few words).
    let fanout = n.min(4);
    let mut index = String::from("<body><h1>site index</h1><ul>");
    for i in 0..fanout {
        index.push_str(&format!("<li><a href=\"{}\">item {i}</a></li>", url(i)));
    }
    for i in 0..24 {
        index.push_str(&format!("<li><a href=\"#pad{i}\">menu</a></li>"));
    }
    if cfg.scenario != SiteScenario::Clean {
        // A dangling link the crawler must count and skip, not die on.
        index.push_str("<li><a href=\"/missing\">gone</a></li>");
    }
    index.push_str("</ul></body>");

    let mut files = vec![SiteFile { url: "/".to_string(), html: index }];
    let mut hostile = Vec::new();
    let mut hostile_counter = 0;
    let mut near_dup_base: Option<String> = None;

    for i in 0..n {
        // Chain links: page i points at the next two pages, keeping every
        // page reachable while the frontier stays shallow.
        let links: Vec<String> = (i + 1..n.min(i + 3)).map(url).collect();
        let clean = |rng: &mut StdRng| generate_page(topic, cfg.page, rng).dom.to_html();
        let kind = match cfg.scenario {
            SiteScenario::Clean => 0,
            SiteScenario::Malformed => usize::from(i % 3 == 2),
            SiteScenario::Boilerplate => {
                if i % 3 == 2 {
                    2
                } else {
                    0
                }
            }
            SiteScenario::NearDup => {
                if i == 0 {
                    0
                } else {
                    3
                }
            }
            SiteScenario::Mixed => i % 4,
        };
        let html = match kind {
            1 => {
                hostile.push(url(i));
                let v = hostile_counter;
                hostile_counter += 1;
                malformed_page(v, topic, rng)
            }
            2 => boilerplate_page(rng),
            3 => {
                let base = near_dup_base.get_or_insert_with(|| clean(rng)).clone();
                match base.rfind("</body>") {
                    Some(pos) => {
                        format!("{}<p>variant note {i}</p>{}", &base[..pos], &base[pos..])
                    }
                    None => format!("{base}<p>variant note {i}</p>"),
                }
            }
            _ => {
                let html = clean(rng);
                if cfg.scenario == SiteScenario::NearDup {
                    near_dup_base = Some(html.clone());
                }
                html
            }
        };
        files.push(SiteFile { url: url(i), html: with_hidden_nav(&html, &links) });
    }
    SiteSpec { files, hostile }
}

/// Writes a site to `dir` using the [`url_to_path`] layout. Returns the
/// number of files written.
pub fn export_site(dir: impl AsRef<Path>, site: &SiteSpec) -> io::Result<usize> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    for f in &site.files {
        let path = dir.join(url_to_path(&f.url));
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, &f.html)?;
    }
    Ok(site.files.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::Taxonomy;
    use rand::SeedableRng;
    use std::collections::{HashSet, VecDeque};
    use wb_html::{classify_page, link_urls, parse_document, visible_text, PageKind};

    fn build(scenario: SiteScenario, pages: usize, seed: u64) -> SiteSpec {
        let tax = Taxonomy::build(0, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SiteSpecConfig { pages, scenario, ..Default::default() };
        generate_site(&tax.topics()[3], cfg, &mut rng)
    }

    #[test]
    fn scenario_names_roundtrip() {
        for name in SiteScenario::NAMES {
            assert!(SiteScenario::parse(name).is_some(), "{name}");
        }
        assert_eq!(SiteScenario::parse("near-dup"), Some(SiteScenario::NearDup));
        assert_eq!(SiteScenario::parse("bogus"), None);
    }

    #[test]
    fn url_mapping_is_stable() {
        assert_eq!(url_to_path("/"), PathBuf::from("index.html"));
        assert_eq!(url_to_path("/page/3"), PathBuf::from("page/3.html"));
    }

    #[test]
    fn clean_site_parses_and_is_fully_reachable() {
        let site = build(SiteScenario::Clean, 9, 1);
        assert!(site.hostile.is_empty());
        // Every file parses; the index classifies as an index page.
        let index = parse_document(&site.files[0].html).unwrap();
        assert_eq!(classify_page(&index), PageKind::Index);
        for f in &site.files[1..] {
            let dom = parse_document(&f.html).unwrap();
            assert_eq!(classify_page(&dom), PageKind::ContentRich, "{}", f.url);
        }
        // BFS over hrefs reaches every page.
        let by_url: std::collections::HashMap<&str, &SiteFile> =
            site.files.iter().map(|f| (f.url.as_str(), f)).collect();
        let mut seen: HashSet<String> = HashSet::new();
        let mut queue = VecDeque::from(["/".to_string()]);
        seen.insert("/".to_string());
        while let Some(u) = queue.pop_front() {
            let dom = parse_document(&by_url[u.as_str()].html).unwrap();
            for next in link_urls(&dom) {
                if by_url.contains_key(next.as_str()) && seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
        assert_eq!(seen.len(), site.files.len(), "all pages reachable from the index");
    }

    #[test]
    fn hidden_nav_does_not_change_visible_text() {
        let tax = Taxonomy::build(0, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let html =
            generate_page(&tax.topics()[0], PageConfig::default(), &mut rng).dom.to_html();
        let linked = with_hidden_nav(&html, &["/page/1".into(), "/page/2".into()]);
        let plain = visible_text(&parse_document(&html).unwrap());
        let navved = visible_text(&parse_document(&linked).unwrap());
        assert_eq!(plain, navved);
        assert_eq!(link_urls(&parse_document(&linked).unwrap()).len(), 2);
    }

    #[test]
    fn malformed_site_contains_unparseable_pages() {
        let site = build(SiteScenario::Malformed, 24, 3);
        assert!(!site.hostile.is_empty());
        let failures = site.files.iter().filter(|f| parse_document(&f.html).is_err()).count();
        assert!(failures >= 1, "round-robin variants must include hard parse failures");
        // Hostile URLs are a subset of the site's files.
        let urls: HashSet<&str> = site.files.iter().map(|f| f.url.as_str()).collect();
        assert!(site.hostile.iter().all(|u| urls.contains(u.as_str())));
    }

    #[test]
    fn poison_page_fails_with_too_deep() {
        match parse_document(&poison_page()) {
            Err(wb_html::ParseError::TooDeep(_)) => {}
            other => panic!("expected TooDeep, got {other:?}"),
        }
    }

    #[test]
    fn invisible_page_parses_but_renders_nothing() {
        let dom = parse_document(&invisible_page()).unwrap();
        assert!(visible_text(&dom).trim().is_empty());
    }

    #[test]
    fn near_dup_farm_shares_the_base_text() {
        let site = build(SiteScenario::NearDup, 6, 4);
        let base = visible_text(&parse_document(&site.files[1].html).unwrap());
        for f in &site.files[2..] {
            let text = visible_text(&parse_document(&f.html).unwrap());
            assert!(
                text.starts_with(&base),
                "near-duplicate {} must extend the base page",
                f.url
            );
        }
    }

    #[test]
    fn boilerplate_page_is_content_rich_chaff() {
        let mut rng = StdRng::seed_from_u64(5);
        let dom = parse_document(&boilerplate_page(&mut rng)).unwrap();
        assert_eq!(classify_page(&dom), PageKind::ContentRich);
        let text = visible_text(&dom).to_lowercase();
        assert!(text.contains("privacy") || text.contains("copyright"));
    }

    #[test]
    fn export_writes_the_layout() {
        let dir = std::env::temp_dir().join("wb_hostile_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        let site = build(SiteScenario::Mixed, 8, 6);
        let n = export_site(&dir, &site).unwrap();
        assert_eq!(n, site.files.len());
        assert!(dir.join("index.html").is_file());
        assert!(dir.join("page/0.html").is_file());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
