//! The topic taxonomy replacing the Jasmine Directory + SWDE website lists
//! (§IV-A1). 160 topics over eight domain families; each topic carries a
//! three-token topic phrase (subject word + family kind + family suffix,
//! matching the paper's average topic length of three tokens), its own
//! content vocabulary, and an attribute schema inherited from the family.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The eight domain families. Attribute *kinds* are family-level, mirroring
/// the paper's observation that "in a book shopping webpage, author, title
/// and price are more likely to be key attributes, while in a recruitment
/// webpage, key attributes are more likely to be job, company and salary".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub enum Family {
    Shopping,
    News,
    Recruitment,
    Education,
    Travel,
    Health,
    RealEstate,
    Events,
}

/// All families in a fixed order.
pub const FAMILIES: [Family; 8] = [
    Family::Shopping,
    Family::News,
    Family::Recruitment,
    Family::Education,
    Family::Travel,
    Family::Health,
    Family::RealEstate,
    Family::Events,
];

impl Family {
    /// The two family-level tokens of the topic phrase
    /// (e.g. `fiction` + `books shopping`).
    pub fn phrase_tail(self) -> [&'static str; 2] {
        match self {
            Family::Shopping => ["goods", "shopping"],
            Family::News => ["news", "portal"],
            Family::Recruitment => ["jobs", "listing"],
            Family::Education => ["course", "catalog"],
            Family::Travel => ["travel", "booking"],
            Family::Health => ["health", "guide"],
            Family::RealEstate => ["property", "listings"],
            Family::Events => ["event", "tickets"],
        }
    }

    /// The four attribute kinds of this family, in schema order.
    pub fn attribute_kinds(self) -> [AttrKind; 4] {
        match self {
            Family::Shopping => {
                [AttrKind::Category, AttrKind::ItemName, AttrKind::Maker, AttrKind::Price]
            }
            Family::News => {
                [AttrKind::Category, AttrKind::Headline, AttrKind::Author, AttrKind::Date]
            }
            Family::Recruitment => {
                [AttrKind::Category, AttrKind::JobTitle, AttrKind::Company, AttrKind::Salary]
            }
            Family::Education => {
                [AttrKind::Category, AttrKind::CourseName, AttrKind::Instructor, AttrKind::Fee]
            }
            Family::Travel => {
                [AttrKind::Category, AttrKind::Destination, AttrKind::Hotel, AttrKind::Price]
            }
            Family::Health => [
                AttrKind::Category,
                AttrKind::Condition,
                AttrKind::Specialist,
                AttrKind::Clinic,
            ],
            Family::RealEstate => {
                [AttrKind::Category, AttrKind::PropertyName, AttrKind::Agent, AttrKind::Price]
            }
            Family::Events => {
                [AttrKind::Category, AttrKind::EventName, AttrKind::Venue, AttrKind::Price]
            }
        }
    }

    /// Family-level content vocabulary that appears in informative sections.
    pub fn content_words(self) -> &'static [&'static str] {
        match self {
            Family::Shopping => &[
                "buy",
                "order",
                "stock",
                "shipping",
                "discount",
                "sale",
                "brand",
                "quality",
                "delivery",
                "warranty",
                "review",
                "rating",
                "bestseller",
                "edition",
                "bundle",
            ],
            Family::News => &[
                "report",
                "breaking",
                "coverage",
                "story",
                "editor",
                "press",
                "headline",
                "exclusive",
                "update",
                "analysis",
                "interview",
                "sources",
                "published",
            ],
            Family::Recruitment => &[
                "hire",
                "career",
                "position",
                "apply",
                "resume",
                "benefits",
                "remote",
                "experience",
                "interview",
                "vacancy",
                "fulltime",
                "team",
                "skills",
            ],
            Family::Education => &[
                "learn",
                "study",
                "lecture",
                "semester",
                "enroll",
                "degree",
                "tutorial",
                "assignment",
                "certificate",
                "campus",
                "faculty",
                "syllabus",
                "exam",
            ],
            Family::Travel => &[
                "flight",
                "tour",
                "resort",
                "beach",
                "itinerary",
                "luggage",
                "visa",
                "adventure",
                "cruise",
                "departure",
                "sightseeing",
                "reservation",
                "guidebook",
            ],
            Family::Health => &[
                "symptom",
                "therapy",
                "diagnosis",
                "wellness",
                "nutrition",
                "patient",
                "prevention",
                "recovery",
                "prescription",
                "screening",
                "consultation",
            ],
            Family::RealEstate => &[
                "bedroom",
                "bathroom",
                "garage",
                "lease",
                "mortgage",
                "suburb",
                "inspection",
                "acreage",
                "renovated",
                "auction",
                "tenant",
                "landlord",
                "frontage",
            ],
            Family::Events => &[
                "concert",
                "festival",
                "lineup",
                "stage",
                "performance",
                "doors",
                "seating",
                "headliner",
                "encore",
                "backstage",
                "matinee",
                "premiere",
                "soldout",
            ],
        }
    }

    /// Short family name for labels.
    pub fn name(self) -> &'static str {
        match self {
            Family::Shopping => "shopping",
            Family::News => "news",
            Family::Recruitment => "recruitment",
            Family::Education => "education",
            Family::Travel => "travel",
            Family::Health => "health",
            Family::RealEstate => "real-estate",
            Family::Events => "events",
        }
    }
}

/// The kind of a key attribute. `Category` is always the topic's subject
/// word; the others are value attributes with family-specific cue phrases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
#[allow(missing_docs)]
pub enum AttrKind {
    Category,
    ItemName,
    Maker,
    Price,
    Headline,
    Author,
    Date,
    JobTitle,
    Company,
    Salary,
    CourseName,
    Instructor,
    Fee,
    Destination,
    Hotel,
    Condition,
    Specialist,
    Clinic,
    PropertyName,
    Agent,
    EventName,
    Venue,
}

impl AttrKind {
    /// The human-readable attribute name (future work in the paper predicts
    /// these; we carry them as ground truth).
    pub fn name(self) -> &'static str {
        match self {
            AttrKind::Category => "category",
            AttrKind::ItemName => "item",
            AttrKind::Maker => "maker",
            AttrKind::Price => "price",
            AttrKind::Headline => "headline",
            AttrKind::Author => "author",
            AttrKind::Date => "date",
            AttrKind::JobTitle => "job",
            AttrKind::Company => "company",
            AttrKind::Salary => "salary",
            AttrKind::CourseName => "course",
            AttrKind::Instructor => "instructor",
            AttrKind::Fee => "fee",
            AttrKind::Destination => "destination",
            AttrKind::Hotel => "hotel",
            AttrKind::Condition => "condition",
            AttrKind::Specialist => "specialist",
            AttrKind::Clinic => "clinic",
            AttrKind::PropertyName => "property",
            AttrKind::Agent => "agent",
            AttrKind::EventName => "event",
            AttrKind::Venue => "venue",
        }
    }

    /// The cue phrase introducing this attribute in informative text.
    /// Cues are family-level and therefore *seen* even for unseen topics —
    /// this is what makes domain adaptation learnable.
    pub fn cue(self) -> &'static str {
        match self {
            AttrKind::Category => "category :",
            AttrKind::ItemName => "featured item :",
            AttrKind::Maker => "made by",
            AttrKind::Price => "price : $",
            AttrKind::Headline => "top story :",
            AttrKind::Author => "written by",
            AttrKind::Date => "published on",
            AttrKind::JobTitle => "open role :",
            AttrKind::Company => "hiring company :",
            AttrKind::Salary => "salary : $",
            AttrKind::CourseName => "course title :",
            AttrKind::Instructor => "taught by",
            AttrKind::Fee => "tuition fee : $",
            AttrKind::Destination => "destination :",
            AttrKind::Hotel => "stay at",
            AttrKind::Condition => "condition :",
            AttrKind::Specialist => "consult with",
            AttrKind::Clinic => "treated at",
            AttrKind::PropertyName => "listing :",
            AttrKind::Agent => "listed by",
            AttrKind::EventName => "featured event :",
            AttrKind::Venue => "held at",
        }
    }

    /// True for purely numeric-valued attributes.
    pub fn is_numeric(self) -> bool {
        matches!(self, AttrKind::Price | AttrKind::Salary | AttrKind::Fee | AttrKind::Date)
    }
}

/// Where a topic's websites come from, mirroring the two dataset sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Source {
    /// Jasmine-Directory-style crawl (`D_jasm`, 153 topics in the paper).
    Directory,
    /// SWDE-style labelled pages (`D_swde`, 7 topics in the paper).
    Swde,
}

/// Identifier of a topic within a [`Taxonomy`].
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct TopicId(pub usize);

/// One topic: a subject within a family, with its own vocabulary.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TopicSpec {
    /// The topic id (index in the taxonomy).
    pub id: TopicId,
    /// The domain family.
    pub family: Family,
    /// The topic-specific subject word (first token of the phrase).
    pub subject: String,
    /// The full three-token topic phrase.
    pub phrase: Vec<String>,
    /// Topic-specific content words used in item names and body text.
    pub vocab: Vec<String>,
    /// Dataset source this topic belongs to.
    pub source: Source,
}

impl TopicSpec {
    /// The topic phrase as a single string.
    pub fn phrase_text(&self) -> String {
        self.phrase.join(" ")
    }
}

/// The full topic taxonomy.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Taxonomy {
    topics: Vec<TopicSpec>,
}

/// Syllables used to mint pronounceable topic-specific pseudo-words. They
/// stand in for the long tail of domain vocabulary (the paper's corpus has a
/// 13M raw vocabulary); pseudo-words guarantee unseen topics really are
/// lexically unseen.
const ONSETS: [&str; 12] = ["br", "cl", "dr", "fl", "gr", "k", "l", "m", "n", "pr", "st", "v"];
const NUCLEI: [&str; 6] = ["a", "e", "i", "o", "u", "ay"];
const CODAS: [&str; 8] = ["n", "r", "l", "s", "m", "t", "nd", "rk"];

fn mint_word(rng: &mut StdRng, syllables: usize) -> String {
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
        w.push_str(NUCLEI[rng.gen_range(0..NUCLEI.len())]);
        if rng.gen_bool(0.6) {
            w.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
        }
    }
    w
}

impl Taxonomy {
    /// Builds the default 160-topic taxonomy (8 families × 20 subjects):
    /// 153 `Directory` topics and 7 `Swde` topics, matching the paper's
    /// counts.
    pub fn paper_scale(seed: u64) -> Self {
        Self::build(seed, 20)
    }

    /// Builds a smaller taxonomy for tests (`subjects_per_family × 8`
    /// topics; the last 7 are `Swde` when there are at least 8).
    pub fn build(seed: u64, subjects_per_family: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut topics = Vec::new();
        let total = subjects_per_family * FAMILIES.len();
        let mut used = std::collections::HashSet::new();
        for s in 0..subjects_per_family {
            for &family in &FAMILIES {
                let id = TopicId(topics.len());
                let subject = loop {
                    let w = mint_word(&mut rng, 2);
                    if used.insert(w.clone()) {
                        break w;
                    }
                };
                let tail = family.phrase_tail();
                let phrase = vec![subject.clone(), tail[0].to_string(), tail[1].to_string()];
                let vocab: Vec<String> = (0..16)
                    .map(|_| {
                        let syllables = 1 + rng.gen_range(1..3usize);
                        mint_word(&mut rng, syllables)
                    })
                    .collect();
                let source = if topics.len() >= total.saturating_sub(7) {
                    Source::Swde
                } else {
                    Source::Directory
                };
                topics.push(TopicSpec { id, family, subject, phrase, vocab, source });
                let _ = s;
            }
        }
        Taxonomy { topics }
    }

    /// All topics.
    pub fn topics(&self) -> &[TopicSpec] {
        &self.topics
    }

    /// A topic by id.
    pub fn topic(&self, id: TopicId) -> &TopicSpec {
        &self.topics[id.0]
    }

    /// Number of topics.
    pub fn len(&self) -> usize {
        self.topics.len()
    }

    /// True when there are no topics.
    pub fn is_empty(&self) -> bool {
        self.topics.is_empty()
    }

    /// Ids of topics from the given source.
    pub fn by_source(&self, source: Source) -> Vec<TopicId> {
        self.topics.iter().filter(|t| t.source == source).map(|t| t.id).collect()
    }
}

/// Shared boilerplate vocabulary appearing in navigation, footers and ads
/// across all sites — identical for seen and unseen domains.
pub const BOILERPLATE: &[&str] = &[
    "home",
    "login",
    "register",
    "contact",
    "about",
    "privacy",
    "terms",
    "copyright",
    "subscribe",
    "newsletter",
    "menu",
    "search",
    "cart",
    "help",
    "faq",
    "sitemap",
    "follow",
    "social",
    "cookies",
    "settings",
];

/// Person/company name pools shared across families (cue targets).
pub const FIRST_NAMES: &[&str] = &[
    "emma", "liam", "olivia", "noah", "ava", "mason", "sophia", "lucas", "mia", "ethan",
    "harper", "logan", "ella", "james", "grace", "henry",
];

/// Surname pool.
pub const LAST_NAMES: &[&str] = &[
    "smith", "jones", "brown", "taylor", "wilson", "clarke", "walker", "hall", "young", "king",
    "wright", "baker", "adams", "carter", "mitchell", "turner",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_has_160_topics_153_directory_7_swde() {
        let t = Taxonomy::paper_scale(0);
        assert_eq!(t.len(), 160);
        assert_eq!(t.by_source(Source::Directory).len(), 153);
        assert_eq!(t.by_source(Source::Swde).len(), 7);
    }

    #[test]
    fn phrases_are_three_tokens() {
        let t = Taxonomy::paper_scale(0);
        assert!(t.topics().iter().all(|s| s.phrase.len() == 3));
    }

    #[test]
    fn subjects_are_unique() {
        let t = Taxonomy::paper_scale(0);
        let mut subjects: Vec<&str> = t.topics().iter().map(|s| s.subject.as_str()).collect();
        subjects.sort_unstable();
        subjects.dedup();
        assert_eq!(subjects.len(), 160);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = Taxonomy::build(7, 2);
        let b = Taxonomy::build(7, 2);
        assert_eq!(a.topics()[3].subject, b.topics()[3].subject);
        assert_eq!(a.topics()[3].vocab, b.topics()[3].vocab);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Taxonomy::build(1, 2);
        let b = Taxonomy::build(2, 2);
        assert_ne!(
            a.topics().iter().map(|t| t.subject.clone()).collect::<Vec<_>>(),
            b.topics().iter().map(|t| t.subject.clone()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_family_has_category_first() {
        for &f in &FAMILIES {
            assert_eq!(f.attribute_kinds()[0], AttrKind::Category);
        }
    }

    #[test]
    fn attribute_cues_are_nonempty_and_distinct_per_family() {
        for &f in &FAMILIES {
            let kinds = f.attribute_kinds();
            let cues: std::collections::HashSet<&str> = kinds.iter().map(|k| k.cue()).collect();
            assert_eq!(cues.len(), 4, "family {f:?} reuses a cue");
        }
    }

    #[test]
    fn small_taxonomy_source_split() {
        let t = Taxonomy::build(0, 2); // 16 topics
        assert_eq!(t.by_source(Source::Swde).len(), 7);
        assert_eq!(t.by_source(Source::Directory).len(), 9);
    }
}
