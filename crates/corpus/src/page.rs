//! Synthetic webpage generation.
//!
//! Every page carries ground truth by construction: per-sentence
//! informative/boilerplate labels, the topic phrase, and key-attribute
//! mentions with exact word offsets. The DOM is assembled so that running
//! the honest pipeline (`wb-html::visible_text` → `wb-text::normalize`)
//! reproduces the generator's word sequence exactly — a property asserted by
//! tests — which is how token-level supervision stays aligned.

use crate::taxonomy::{AttrKind, Family, TopicSpec, BOILERPLATE, FIRST_NAMES, LAST_NAMES};
use rand::rngs::StdRng;
use rand::Rng;
use wb_html::{Node, Tag};
use wb_text::DIGIT_TOKEN;

/// One ground-truth attribute mention.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AttributeMention {
    /// The attribute kind.
    pub kind: AttrKind,
    /// The normalised value words (e.g. `["emma", "clarke"]` or
    /// `["<digit>"]`).
    pub value: Vec<String>,
    /// Index of the sentence containing the mention.
    pub sentence: usize,
    /// Word offset of the value within that sentence.
    pub word_start: usize,
}

/// One generated sentence with its ground-truth label.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SentenceRecord {
    /// Normalised words (digits already replaced by `<digit>`).
    pub words: Vec<String>,
    /// Whether the sentence lies in an informative section.
    pub informative: bool,
}

impl SentenceRecord {
    /// The sentence as display text (words joined by spaces).
    pub fn text(&self) -> String {
        self.words.join(" ")
    }
}

/// A fully labelled synthetic webpage.
#[derive(Debug, Clone)]
pub struct PageRecord {
    /// The topic this page belongs to.
    pub topic: crate::taxonomy::TopicId,
    /// Sentences in document order.
    pub sentences: Vec<SentenceRecord>,
    /// Ground-truth attribute mentions (always 4, matching §IV-A1).
    pub attributes: Vec<AttributeMention>,
    /// The page DOM.
    pub dom: Node,
}

impl PageRecord {
    /// Total number of words across sentences.
    pub fn num_words(&self) -> usize {
        self.sentences.iter().map(|s| s.words.len()).sum()
    }
}

/// Knobs for page generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageConfig {
    /// Number of informative sections (the attributes are spread over them).
    pub informative_sections: usize,
    /// Number of noisy, non-informative sections (ads/related links).
    pub noise_sections: usize,
    /// Extra topical filler sentences per informative section.
    pub filler_sentences: usize,
    /// Probability that a noise section contains a distractor pattern that
    /// superficially resembles an attribute cue.
    pub distractor_rate: f64,
}

impl Default for PageConfig {
    fn default() -> Self {
        PageConfig {
            informative_sections: 2,
            noise_sections: 2,
            filler_sentences: 2,
            distractor_rate: 0.5,
        }
    }
}

/// Generation context collecting sentences and mentions.
struct Builder {
    sentences: Vec<SentenceRecord>,
    attributes: Vec<AttributeMention>,
}

impl Builder {
    fn push_sentence(&mut self, words: Vec<String>, informative: bool) -> usize {
        self.sentences.push(SentenceRecord { words, informative });
        self.sentences.len() - 1
    }
}

fn pick<'a>(rng: &mut StdRng, pool: &[&'a str]) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

fn pick_owned(rng: &mut StdRng, pool: &[String]) -> String {
    pool[rng.gen_range(0..pool.len())].clone()
}

/// Generates the normalised value words for an attribute kind.
fn attr_value(kind: AttrKind, topic: &TopicSpec, rng: &mut StdRng) -> Vec<String> {
    if kind == AttrKind::Category {
        return vec![topic.subject.clone()];
    }
    if kind.is_numeric() {
        return vec![DIGIT_TOKEN.to_string()];
    }
    match kind {
        AttrKind::Maker
        | AttrKind::Author
        | AttrKind::Instructor
        | AttrKind::Specialist
        | AttrKind::Agent
        | AttrKind::Company => {
            vec![pick(rng, FIRST_NAMES).to_string(), pick(rng, LAST_NAMES).to_string()]
        }
        _ => {
            // Name-like values: two topic-specific vocabulary words.
            let a = pick_owned(rng, &topic.vocab);
            let mut b = pick_owned(rng, &topic.vocab);
            while b == a && topic.vocab.len() > 1 {
                b = pick_owned(rng, &topic.vocab);
            }
            vec![a, b]
        }
    }
}

/// The surface (display) form of a value: `<digit>` becomes an actual
/// number so the DOM looks like a real page and the normaliser restores the
/// token.
fn surface(word: &str, rng: &mut StdRng) -> String {
    if word == DIGIT_TOKEN {
        format!("{}.{:02}", rng.gen_range(5..2500), rng.gen_range(0..100))
    } else {
        word.to_string()
    }
}

/// Splits a cue phrase into normalised words (cues are already lowercase
/// with punctuation space-separated).
fn cue_words(kind: AttrKind) -> Vec<String> {
    kind.cue().split_whitespace().map(str::to_string).collect()
}

/// Builds an attribute sentence: `[lead-in] cue value [tail] .`, recording
/// the mention offset.
fn attribute_sentence(
    b: &mut Builder,
    kind: AttrKind,
    topic: &TopicSpec,
    family: Family,
    rng: &mut StdRng,
) {
    let mut words: Vec<String> = Vec::new();
    if rng.gen_bool(0.5) {
        words.push(pick(rng, family.content_words()).to_string());
        if rng.gen_bool(0.5) {
            words.push(pick(rng, &["today", "now", "available", "special"]).to_string());
        }
        words.push(",".to_string());
    }
    words.extend(cue_words(kind));
    let value = attr_value(kind, topic, rng);
    let word_start = words.len();
    words.extend(value.iter().cloned());
    if rng.gen_bool(0.4) {
        words.push(",".to_string());
        words.push(pick(rng, family.content_words()).to_string());
    }
    words.push(".".to_string());
    let sentence = b.push_sentence(words, true);
    b.attributes.push(AttributeMention { kind, value, sentence, word_start });
}

/// A topical sentence mixing the subject word, topic vocabulary and family
/// content words — the signal the topic generator learns from.
fn topical_sentence(topic: &TopicSpec, family: Family, rng: &mut StdRng) -> Vec<String> {
    let mut words = vec![
        pick(rng, &["explore", "discover", "browse", "find", "enjoy"]).to_string(),
        pick(rng, &["the", "our", "top", "new"]).to_string(),
    ];
    words.push(topic.subject.clone());
    words.push(pick_owned(rng, &topic.vocab));
    words.push(pick(rng, &["and", "with", "plus"]).to_string());
    words.push(pick(rng, family.content_words()).to_string());
    words.push(pick(rng, family.content_words()).to_string());
    words.push(".".to_string());
    words
}

/// A boilerplate sentence built from the shared pool.
fn boilerplate_sentence(rng: &mut StdRng, len: usize) -> Vec<String> {
    let mut words: Vec<String> = (0..len).map(|_| pick(rng, BOILERPLATE).to_string()).collect();
    words.push(".".to_string());
    words
}

/// A distractor in a noise section: a superficial cue-like pattern whose
/// value is *not* a ground-truth attribute (e.g. an ad price).
fn distractor_sentence(rng: &mut StdRng) -> Vec<String> {
    let mut words = vec![
        pick(rng, &["offer", "deal", "ad", "promo"]).to_string(),
        ":".to_string(),
        pick(rng, &["from", "only", "save"]).to_string(),
        "$".to_string(),
        DIGIT_TOKEN.to_string(),
    ];
    words.push(".".to_string());
    words
}

/// Generates one labelled page for `topic`.
pub fn generate_page(topic: &TopicSpec, cfg: PageConfig, rng: &mut StdRng) -> PageRecord {
    let family = topic.family;
    let mut b = Builder { sentences: Vec::new(), attributes: Vec::new() };
    // Section index per sentence so DOM assembly can group them.
    let mut section_of: Vec<usize> = Vec::new();
    let mut section_kinds: Vec<SectionKind> = Vec::new();

    let push_section = |b: &mut Builder,
                        section_of: &mut Vec<usize>,
                        kinds: &mut Vec<SectionKind>,
                        kind: SectionKind,
                        sentences: Vec<(Vec<String>, bool)>| {
        let sid = kinds.len();
        kinds.push(kind);
        for (words, informative) in sentences {
            b.push_sentence(words, informative);
            section_of.push(sid);
        }
    };

    // Navigation.
    push_section(
        &mut b,
        &mut section_of,
        &mut section_kinds,
        SectionKind::Nav,
        vec![(boilerplate_sentence(rng, 4), false)],
    );
    // Header (generic welcome, no topic leakage).
    push_section(
        &mut b,
        &mut section_of,
        &mut section_kinds,
        SectionKind::Header,
        vec![(
            vec!["welcome".into(), "to".into(), "our".into(), "website".into(), ".".into()],
            false,
        )],
    );

    // Informative sections with the four attributes spread across them.
    let kinds = family.attribute_kinds();
    let sections = cfg.informative_sections.max(1);
    for s in 0..sections {
        let sid = section_kinds.len();
        section_kinds.push(SectionKind::Informative);
        // Leading topical sentence.
        b.push_sentence(topical_sentence(topic, family, rng), true);
        section_of.push(sid);
        // This section's share of attributes.
        for (i, &kind) in kinds.iter().enumerate() {
            if i % sections == s {
                attribute_sentence(&mut b, kind, topic, family, rng);
                section_of.push(sid);
            }
        }
        for _ in 0..cfg.filler_sentences {
            b.push_sentence(topical_sentence(topic, family, rng), true);
            section_of.push(sid);
        }
    }

    // Noise sections.
    for _ in 0..cfg.noise_sections {
        let mut sentences = vec![(boilerplate_sentence(rng, 5), false)];
        if rng.gen_bool(cfg.distractor_rate) {
            sentences.push((distractor_sentence(rng), false));
        }
        push_section(
            &mut b,
            &mut section_of,
            &mut section_kinds,
            SectionKind::Aside,
            sentences,
        );
    }

    // Footer.
    push_section(
        &mut b,
        &mut section_of,
        &mut section_kinds,
        SectionKind::Footer,
        vec![(boilerplate_sentence(rng, 3), false)],
    );

    let dom = assemble_dom(&b.sentences, &section_of, &section_kinds, rng);
    PageRecord { topic: topic.id, sentences: b.sentences, attributes: b.attributes, dom }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum SectionKind {
    Nav,
    Header,
    Informative,
    Aside,
    Footer,
}

/// Assembles the DOM so `visible_text` → sentence split reproduces the
/// sentences exactly (one `<p>` per sentence, display surface for digits).
fn assemble_dom(
    sentences: &[SentenceRecord],
    section_of: &[usize],
    section_kinds: &[SectionKind],
    rng: &mut StdRng,
) -> Node {
    let mut section_children: Vec<Vec<Node>> = vec![Vec::new(); section_kinds.len()];
    for (sent, &sid) in sentences.iter().zip(section_of) {
        let display: Vec<String> = sent.words.iter().map(|w| surface(w, rng)).collect();
        section_children[sid].push(Node::elem(Tag::P, vec![Node::text(display.join(" "))]));
    }
    let mut body = Vec::new();
    for (kind, children) in section_kinds.iter().zip(section_children) {
        let (tag, label) = match kind {
            SectionKind::Nav => (Tag::Nav, "nav"),
            SectionKind::Header => (Tag::Header, "header"),
            SectionKind::Informative => (Tag::Section, "informative"),
            SectionKind::Aside => (Tag::Aside, "noise"),
            SectionKind::Footer => (Tag::Footer, "footer"),
        };
        body.push(Node::elem_attrs(tag, vec![("data-section", label)], children));
    }
    Node::elem(
        Tag::Html,
        vec![
            Node::elem(
                Tag::Head,
                vec![
                    Node::elem(Tag::Title, vec![Node::text("page")]),
                    Node::elem(Tag::Script, vec![Node::text("var t = 1;")]),
                ],
            ),
            Node::elem(Tag::Body, body),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::Taxonomy;
    use rand::SeedableRng;
    use wb_text::normalize;

    fn sample_page(seed: u64) -> (PageRecord, TopicSpec) {
        let tax = Taxonomy::build(0, 2);
        let topic = tax.topics()[3].clone();
        let mut rng = StdRng::seed_from_u64(seed);
        (generate_page(&topic, PageConfig::default(), &mut rng), topic)
    }

    #[test]
    fn page_has_exactly_four_attributes() {
        let (page, _) = sample_page(1);
        assert_eq!(page.attributes.len(), 4);
    }

    #[test]
    fn category_attribute_is_subject() {
        let (page, topic) = sample_page(2);
        let cat = page
            .attributes
            .iter()
            .find(|a| a.kind == AttrKind::Category)
            .expect("category present");
        assert_eq!(cat.value, vec![topic.subject.clone()]);
    }

    #[test]
    fn mention_offsets_are_correct() {
        let (page, _) = sample_page(3);
        for m in &page.attributes {
            let words = &page.sentences[m.sentence].words;
            assert_eq!(
                &words[m.word_start..m.word_start + m.value.len()],
                m.value.as_slice(),
                "mention {m:?} misaligned in {words:?}"
            );
            assert!(page.sentences[m.sentence].informative);
        }
    }

    #[test]
    fn has_informative_and_boilerplate_sentences() {
        let (page, _) = sample_page(4);
        assert!(page.sentences.iter().any(|s| s.informative));
        assert!(page.sentences.iter().any(|s| !s.informative));
    }

    #[test]
    fn rendered_dom_normalizes_back_to_ground_truth_words() {
        let (page, _) = sample_page(5);
        let text = wb_html::visible_text(&page.dom);
        let sentences = wb_text::split_sentences(&text);
        assert_eq!(sentences.len(), page.sentences.len(), "sentence count mismatch");
        for (rendered, truth) in sentences.iter().zip(&page.sentences) {
            let words = normalize(rendered);
            assert_eq!(words, truth.words, "rendered {rendered:?}");
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (a, _) = sample_page(9);
        let (b, _) = sample_page(9);
        assert_eq!(a.sentences, b.sentences);
    }

    #[test]
    fn informative_sections_configurable() {
        let tax = Taxonomy::build(0, 2);
        let topic = tax.topics()[0].clone();
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = PageConfig { informative_sections: 4, ..PageConfig::default() };
        let page = generate_page(&topic, cfg, &mut rng);
        // Four leading topical sentences + four attribute sentences + filler.
        let informative = page.sentences.iter().filter(|s| s.informative).count();
        assert!(informative >= 8, "only {informative} informative sentences");
    }

    #[test]
    fn page_is_content_rich_for_the_crawler() {
        let (page, _) = sample_page(6);
        assert_eq!(wb_html::classify_page(&page.dom), wb_html::PageKind::ContentRich);
    }
}
