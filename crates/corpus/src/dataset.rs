//! Dataset assembly: pages → tokenised, labelled [`Example`]s with
//! train/develop/test splits (80%-10%-10%, §IV-B/IV-C) and the seen/unseen
//! topic protocol used by the distillation experiments.

use crate::page::{generate_page, PageConfig, PageRecord};
use crate::taxonomy::{AttrKind, Taxonomy, TopicId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;
use wb_text::{WordPiece, WordPieceConfig, CLS, EOS};

/// BIO tag values used by the extractor.
pub const TAG_O: u8 = 0;
/// Beginning of an attribute span.
pub const TAG_B: u8 = 1;
/// Inside an attribute span.
pub const TAG_I: u8 = 2;
/// Number of BIO classes.
pub const NUM_TAGS: usize = 3;

/// One tokenised training/evaluation example.
#[derive(Debug, Clone)]
pub struct Example {
    /// Topic of the source page.
    pub topic: TopicId,
    /// Token ids (unpadded; includes a `[CLS]` at every sentence start).
    pub tokens: Vec<u32>,
    /// Positions of sentence `[CLS]` tokens.
    pub cls_positions: Vec<usize>,
    /// Sentence index of every token.
    pub sentence_of: Vec<usize>,
    /// Per-token BIO tag.
    pub bio: Vec<u8>,
    /// Per-sentence informative label.
    pub informative: Vec<bool>,
    /// Target topic phrase token ids, terminated by `[EOS]`.
    pub topic_target: Vec<u32>,
    /// Ground-truth attribute spans as `(kind, start, end)` token ranges.
    pub attr_spans: Vec<(AttrKind, usize, usize)>,
}

impl Example {
    /// Number of sentences.
    pub fn num_sentences(&self) -> usize {
        self.cls_positions.len()
    }
}

/// Encodes a [`PageRecord`] with a tokenizer. Word-level alignment is exact:
/// each ground-truth word is tokenised independently and its pieces tagged.
pub fn encode_page(page: &PageRecord, taxonomy: &Taxonomy, wp: &WordPiece) -> Example {
    let mut tokens = Vec::new();
    let mut cls_positions = Vec::new();
    let mut sentence_of = Vec::new();
    let mut bio = Vec::new();
    let mut informative = Vec::new();
    // (sentence, word) → token offset of the word's first piece.
    let mut word_token_start: Vec<Vec<usize>> = Vec::new();

    for (s_idx, sent) in page.sentences.iter().enumerate() {
        cls_positions.push(tokens.len());
        tokens.push(CLS);
        sentence_of.push(s_idx);
        bio.push(TAG_O);
        informative.push(sent.informative);
        let mut starts = Vec::with_capacity(sent.words.len());
        for word in &sent.words {
            starts.push(tokens.len());
            for id in wp.encode(word) {
                tokens.push(id);
                sentence_of.push(s_idx);
                bio.push(TAG_O);
            }
        }
        // Sentinel: one-past-the-end for span arithmetic.
        starts.push(tokens.len());
        word_token_start.push(starts);
    }

    let mut attr_spans = Vec::new();
    for m in &page.attributes {
        let starts = &word_token_start[m.sentence];
        let t_start = starts[m.word_start];
        let t_end = starts[m.word_start + m.value.len()];
        debug_assert!(t_end > t_start, "empty attribute span");
        bio[t_start] = TAG_B;
        for t in bio.iter_mut().take(t_end).skip(t_start + 1) {
            *t = TAG_I;
        }
        attr_spans.push((m.kind, t_start, t_end));
    }

    let topic_spec = taxonomy.topic(page.topic);
    let mut topic_target = Vec::new();
    for word in &topic_spec.phrase {
        topic_target.extend(wp.encode(word));
    }
    topic_target.push(EOS);

    Example {
        topic: page.topic,
        tokens,
        cls_positions,
        sentence_of,
        bio,
        informative,
        topic_target,
        attr_spans,
    }
}

/// Generation parameters for a whole dataset.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Seed for taxonomy, pages and tokenizer training.
    pub seed: u64,
    /// Subjects per family; total topics = 8 × this.
    pub subjects_per_family: usize,
    /// Pages generated per topic.
    pub pages_per_topic: usize,
    /// Page shape.
    pub page: PageConfig,
    /// Tokenizer training configuration.
    pub wordpiece: WordPieceConfig,
}

impl DatasetConfig {
    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        DatasetConfig {
            seed: 7,
            subjects_per_family: 2,
            pages_per_topic: 6,
            page: PageConfig::default(),
            wordpiece: WordPieceConfig {
                max_words: 4000,
                max_pieces: 800,
                min_word_freq: 1,
                max_piece_len: 6,
            },
        }
    }

    /// The configuration used by the experiment harnesses (160 topics).
    pub fn experiment(pages_per_topic: usize) -> Self {
        DatasetConfig {
            seed: 13,
            subjects_per_family: 20,
            pages_per_topic,
            page: PageConfig::default(),
            wordpiece: WordPieceConfig {
                max_words: 9000,
                max_pieces: 1500,
                min_word_freq: 1,
                max_piece_len: 6,
            },
        }
    }
}

/// Index-based split of a dataset's examples.
#[derive(Debug, Clone, Default)]
pub struct Split {
    /// Training example indices.
    pub train: Vec<usize>,
    /// Development example indices.
    pub dev: Vec<usize>,
    /// Test example indices.
    pub test: Vec<usize>,
}

/// A generated corpus: taxonomy, tokenizer and encoded examples.
pub struct Dataset {
    /// The topic taxonomy.
    pub taxonomy: Taxonomy,
    /// The trained tokenizer (over *all* topics — the student always has
    /// access to the new webpages' text, §I).
    pub tokenizer: WordPiece,
    /// All encoded examples.
    pub examples: Vec<Example>,
}

impl Dataset {
    /// Generates pages for every topic, trains the tokenizer and encodes.
    pub fn generate(cfg: &DatasetConfig) -> Dataset {
        let taxonomy = Taxonomy::build(cfg.seed, cfg.subjects_per_family);
        // Per-topic independent RNG streams keep generation parallel and
        // deterministic.
        let pages: Vec<PageRecord> = taxonomy
            .topics()
            .par_iter()
            .flat_map_iter(|topic| {
                let mut rng = StdRng::seed_from_u64(
                    cfg.seed ^ (topic.id.0 as u64).wrapping_mul(0x9E37_79B9),
                );
                (0..cfg.pages_per_topic)
                    .map(|_| generate_page(topic, cfg.page, &mut rng))
                    .collect::<Vec<_>>()
            })
            .collect();

        let mut texts: Vec<String> = pages
            .iter()
            .map(|p| p.sentences.iter().map(|s| s.text()).collect::<Vec<_>>().join("\n"))
            .collect();
        // The tokenizer is trained over the labelled dataset, which includes
        // the topic-phrase labels — phrase words must be whole tokens or the
        // generator would have to emit piece sequences the pages never show.
        for topic in taxonomy.topics() {
            for _ in 0..cfg.pages_per_topic {
                texts.push(topic.phrase_text());
            }
        }
        let tokenizer = WordPiece::train(texts.iter().map(String::as_str), cfg.wordpiece);

        let examples: Vec<Example> =
            pages.par_iter().map(|p| encode_page(p, &taxonomy, &tokenizer)).collect();

        Dataset { taxonomy, tokenizer, examples }
    }

    /// 80/10/10 split stratified per topic (§IV-B: "randomly taken …
    /// following 80%-10%-10% train-develop-test splits").
    pub fn split(&self, seed: u64) -> Split {
        let mut split = Split::default();
        let mut by_topic: std::collections::BTreeMap<TopicId, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, e) in self.examples.iter().enumerate() {
            by_topic.entry(e.topic).or_default().push(i);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for (_, mut idxs) in by_topic {
            idxs.shuffle(&mut rng);
            let n = idxs.len();
            let n_dev = (n / 10).max(1).min(n.saturating_sub(2));
            let n_test = n_dev;
            let n_train = n.saturating_sub(n_dev + n_test);
            split.train.extend(&idxs[..n_train]);
            split.dev.extend(&idxs[n_train..n_train + n_dev]);
            split.test.extend(&idxs[n_train + n_dev..]);
        }
        split
    }

    /// Partitions topic ids into `(seen, unseen)` with `n_unseen` held-out
    /// topics chosen deterministically (§IV-B uses 140 seen / 20 unseen).
    pub fn topic_partition(&self, n_unseen: usize, seed: u64) -> (Vec<TopicId>, Vec<TopicId>) {
        let mut ids: Vec<TopicId> = self.taxonomy.topics().iter().map(|t| t.id).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        ids.shuffle(&mut rng);
        let n_unseen = n_unseen.min(ids.len());
        let unseen = ids.split_off(ids.len() - n_unseen);
        (ids, unseen)
    }

    /// Filters example indices to the given topics.
    pub fn restrict(&self, indices: &[usize], topics: &[TopicId]) -> Vec<usize> {
        let set: std::collections::HashSet<TopicId> = topics.iter().copied().collect();
        indices.iter().copied().filter(|&i| set.contains(&self.examples[i].topic)).collect()
    }

    /// Mean and standard deviation of example token lengths.
    pub fn length_stats(&self) -> (f64, f64) {
        let n = self.examples.len().max(1) as f64;
        let mean = self.examples.iter().map(|e| e.tokens.len() as f64).sum::<f64>() / n;
        let var = self
            .examples
            .iter()
            .map(|e| {
                let d = e.tokens.len() as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        (mean, var.sqrt())
    }
}

/// Concatenates the contents of two pages for the §IV-D sensitivity study:
/// `proportion` of the words come from `a` (taken from its start), the rest
/// from `b`. Sentences are kept whole; labels follow their source page.
pub fn concat_pages(a: &Example, b: &Example, proportion: f64, rng: &mut StdRng) -> Example {
    assert!((0.0..=1.0).contains(&proportion), "proportion must be in [0,1]");
    let _ = rng; // Reserved for future shuffling variants.
    let take_a = ((a.tokens.len() as f64) * proportion) as usize;
    let take_b = a.tokens.len().saturating_sub(take_a).min(b.tokens.len());

    let mut out = Example {
        topic: if proportion >= 0.5 { a.topic } else { b.topic },
        tokens: Vec::new(),
        cls_positions: Vec::new(),
        sentence_of: Vec::new(),
        bio: Vec::new(),
        informative: Vec::new(),
        topic_target: if proportion >= 0.5 {
            a.topic_target.clone()
        } else {
            b.topic_target.clone()
        },
        attr_spans: Vec::new(),
    };

    let append = |src: &Example, limit: usize, out: &mut Example| {
        let mut sentence_remap: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for s in 0..src.num_sentences() {
            let (start, end) = {
                let start = src.cls_positions[s];
                let end = src.cls_positions.get(s + 1).copied().unwrap_or(src.tokens.len());
                (start, end)
            };
            if end > limit {
                break;
            }
            let new_s = out.informative.len();
            sentence_remap.insert(s, new_s);
            out.informative.push(src.informative[s]);
            out.cls_positions.push(out.tokens.len());
            let offset = out.tokens.len();
            out.tokens.extend_from_slice(&src.tokens[start..end]);
            out.bio.extend_from_slice(&src.bio[start..end]);
            out.sentence_of.extend(std::iter::repeat_n(new_s, end - start));
            for &(kind, s0, e0) in &src.attr_spans {
                if s0 >= start && e0 <= end {
                    out.attr_spans.push((kind, s0 - start + offset, e0 - start + offset));
                }
            }
        }
    };
    append(a, take_a, &mut out);
    append(b, take_b, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::generate(&DatasetConfig::tiny())
    }

    #[test]
    fn generates_expected_example_count() {
        let d = tiny();
        assert_eq!(d.examples.len(), 16 * 6);
    }

    #[test]
    fn bio_tags_align_with_spans() {
        let d = tiny();
        for e in &d.examples {
            assert_eq!(e.attr_spans.len(), 4);
            for &(_, s, t) in &e.attr_spans {
                assert_eq!(e.bio[s], TAG_B, "span start must be B");
                assert!(e.bio[s + 1..t].iter().all(|&b| b == TAG_I));
                if t < e.bio.len() {
                    assert_ne!(e.bio[t], TAG_I, "span must end");
                }
            }
        }
    }

    #[test]
    fn cls_positions_hold_cls_token() {
        let d = tiny();
        for e in &d.examples {
            for &p in &e.cls_positions {
                assert_eq!(e.tokens[p], CLS);
            }
            assert_eq!(e.informative.len(), e.num_sentences());
        }
    }

    #[test]
    fn topic_target_ends_with_eos_and_decodes_to_phrase() {
        let d = tiny();
        let e = &d.examples[0];
        assert_eq!(*e.topic_target.last().unwrap(), EOS);
        let words = d.tokenizer.decode_ids(&e.topic_target[..e.topic_target.len() - 1]);
        let phrase = &d.taxonomy.topic(e.topic).phrase;
        assert_eq!(&words, phrase);
    }

    #[test]
    fn split_is_80_10_10_per_topic() {
        let d = tiny();
        let s = d.split(1);
        assert_eq!(s.train.len() + s.dev.len() + s.test.len(), d.examples.len());
        assert!(!s.dev.is_empty() && !s.test.is_empty());
        // Disjoint.
        let mut all: Vec<usize> =
            s.train.iter().chain(&s.dev).chain(&s.test).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), d.examples.len());
    }

    #[test]
    fn topic_partition_sizes() {
        let d = tiny();
        let (seen, unseen) = d.topic_partition(3, 5);
        assert_eq!(seen.len(), 13);
        assert_eq!(unseen.len(), 3);
        let overlap: Vec<_> = seen.iter().filter(|t| unseen.contains(t)).collect();
        assert!(overlap.is_empty());
    }

    #[test]
    fn restrict_filters_by_topic() {
        let d = tiny();
        let s = d.split(1);
        let (_, unseen) = d.topic_partition(3, 5);
        let r = d.restrict(&s.test, &unseen);
        assert!(r.iter().all(|&i| unseen.contains(&d.examples[i].topic)));
        assert!(!r.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.examples[5].tokens, b.examples[5].tokens);
        assert_eq!(a.examples[5].bio, b.examples[5].bio);
    }

    #[test]
    fn concat_pages_mixes_proportionally() {
        let d = tiny();
        let mut rng = StdRng::seed_from_u64(0);
        let a = &d.examples[0];
        // Pick an example from a different topic.
        let b = d.examples.iter().find(|e| e.topic != a.topic).unwrap();
        let c = concat_pages(a, b, 0.7, &mut rng);
        assert_eq!(c.topic, a.topic);
        let c2 = concat_pages(a, b, 0.3, &mut rng);
        assert_eq!(c2.topic, b.topic);
        // Structure stays consistent.
        for &p in &c.cls_positions {
            assert_eq!(c.tokens[p], CLS);
        }
        assert_eq!(c.tokens.len(), c.bio.len());
        assert_eq!(c.tokens.len(), c.sentence_of.len());
        for &(_, s, t) in &c.attr_spans {
            assert_eq!(c.bio[s], TAG_B);
            assert!(t <= c.tokens.len());
        }
    }

    #[test]
    fn length_stats_positive() {
        let d = tiny();
        let (mean, std) = d.length_stats();
        assert!(mean > 50.0, "mean {mean}");
        assert!(std > 0.0);
    }
}
