//! Corpus export/import: persist generated pages as `.html` files with a
//! JSON label sidecar, so the synthetic dataset can be inspected, versioned
//! or consumed by external tools — the on-disk shape a crawled dataset
//! would have.

use crate::page::{AttributeMention, PageRecord, SentenceRecord};
use crate::taxonomy::TopicId;
use std::io;
use std::path::Path;
use wb_html::parse_document;

/// The label sidecar written next to each page.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PageLabels {
    /// Topic id of the page.
    pub topic: usize,
    /// The gold topic phrase.
    pub topic_phrase: Vec<String>,
    /// Per-sentence records (normalised words + informative flag).
    pub sentences: Vec<SentenceRecord>,
    /// Attribute mentions with exact offsets.
    pub attributes: Vec<AttributeMention>,
}

/// Writes pages into `dir` as `page_<i>.html` + `page_<i>.json`.
pub fn export_pages(
    dir: impl AsRef<Path>,
    pages: &[(PageRecord, Vec<String>)],
) -> io::Result<()> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    for (i, (page, phrase)) in pages.iter().enumerate() {
        std::fs::write(dir.join(format!("page_{i}.html")), page.dom.to_html())?;
        let labels = PageLabels {
            topic: page.topic.0,
            topic_phrase: phrase.clone(),
            sentences: page.sentences.clone(),
            attributes: page.attributes.clone(),
        };
        std::fs::write(
            dir.join(format!("page_{i}.json")),
            serde_json::to_string_pretty(&labels).map_err(io::Error::other)?,
        )?;
    }
    Ok(())
}

/// Reads pages back from a directory written by [`export_pages`].
pub fn import_pages(dir: impl AsRef<Path>) -> io::Result<Vec<(PageRecord, Vec<String>)>> {
    let dir = dir.as_ref();
    let mut out = Vec::new();
    let mut i = 0;
    loop {
        let html_path = dir.join(format!("page_{i}.html"));
        let json_path = dir.join(format!("page_{i}.json"));
        if !html_path.exists() || !json_path.exists() {
            break;
        }
        let html = std::fs::read_to_string(&html_path)?;
        let dom = parse_document(&html)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let labels: PageLabels = serde_json::from_str(&std::fs::read_to_string(&json_path)?)
            .map_err(io::Error::other)?;
        out.push((
            PageRecord {
                topic: TopicId(labels.topic),
                sentences: labels.sentences,
                attributes: labels.attributes,
                dom,
            },
            labels.topic_phrase,
        ));
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{generate_page, PageConfig};
    use crate::taxonomy::Taxonomy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_pages(n: usize) -> Vec<(PageRecord, Vec<String>)> {
        let tax = Taxonomy::build(0, 2);
        let mut rng = StdRng::seed_from_u64(1);
        (0..n)
            .map(|i| {
                let topic = &tax.topics()[i % tax.len()];
                (generate_page(topic, PageConfig::default(), &mut rng), topic.phrase.clone())
            })
            .collect()
    }

    #[test]
    fn export_import_roundtrip() {
        let dir = std::env::temp_dir().join("wb_corpus_export_test");
        let _ = std::fs::remove_dir_all(&dir);
        let pages = sample_pages(3);
        export_pages(&dir, &pages).unwrap();
        let back = import_pages(&dir).unwrap();
        assert_eq!(back.len(), 3);
        for ((orig, phrase), (re, re_phrase)) in pages.iter().zip(&back) {
            assert_eq!(orig.topic, re.topic);
            assert_eq!(phrase, re_phrase);
            assert_eq!(orig.sentences, re.sentences);
            assert_eq!(orig.attributes, re.attributes);
            // DOM text content survives the HTML roundtrip.
            assert_eq!(wb_html::visible_text(&orig.dom), wb_html::visible_text(&re.dom));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn import_of_empty_dir_is_empty() {
        let dir = std::env::temp_dir().join("wb_corpus_export_empty");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(import_pages(&dir).unwrap().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
