#![warn(missing_docs)]
//! # wb-corpus
//!
//! The synthetic dataset substrate replacing the paper's 655K crawled
//! webpages (see DESIGN.md §2 for the substitution argument). Provides:
//!
//! * [`Taxonomy`] — 160 topics over eight domain families with three-token
//!   topic phrases and per-topic vocabularies,
//! * [`generate_page`] — labelled webpages (DOM + per-sentence
//!   informative labels + exact attribute offsets),
//! * [`Dataset`] — tokenised [`Example`]s with 80/10/10 splits and the
//!   seen/unseen topic protocol,
//! * [`concat_pages`] — the §IV-D content-sensitivity synthesizer.
//!
//! ```
//! use wb_corpus::{Dataset, DatasetConfig};
//!
//! let d = Dataset::generate(&DatasetConfig::tiny());
//! assert_eq!(d.taxonomy.len(), 16);
//! let split = d.split(1);
//! assert_eq!(
//!     split.train.len() + split.dev.len() + split.test.len(),
//!     d.examples.len()
//! );
//! // Every example carries the paper's 4 attribute spans.
//! assert!(d.examples.iter().all(|e| e.attr_spans.len() == 4));
//! ```

mod dataset;
mod export;
mod hostile;
mod page;
mod taxonomy;
mod website;

pub use dataset::{
    concat_pages, encode_page, Dataset, DatasetConfig, Example, Split, NUM_TAGS, TAG_B, TAG_I,
    TAG_O,
};
pub use export::{export_pages, import_pages, PageLabels};
pub use hostile::{
    boilerplate_page, export_site, generate_site, invisible_page, malformed_page, poison_page,
    url_to_path, with_hidden_nav, SiteFile, SiteScenario, SiteSpec, SiteSpecConfig,
};
pub use page::{generate_page, AttributeMention, PageConfig, PageRecord, SentenceRecord};
pub use taxonomy::{
    AttrKind, Family, Source, Taxonomy, TopicId, TopicSpec, BOILERPLATE, FAMILIES, FIRST_NAMES,
    LAST_NAMES,
};
pub use website::{generate_website, GeneratedWebsite, WebsiteConfig};
