//! Whole-website synthesis: one topic-coherent site with an index page,
//! content-rich pages, media pages and cross-links — the unit the paper's
//! structure-driven crawler [24] walks (1,500–2,000 content pages per site;
//! scaled down here).

use crate::page::{generate_page, PageConfig, PageRecord};
use crate::taxonomy::TopicSpec;
use rand::rngs::StdRng;
use rand::Rng;
use wb_html::{Node, Tag, Website};

/// Website-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebsiteConfig {
    /// Number of content-rich pages.
    pub content_pages: usize,
    /// Number of media pages (the crawler must skip them).
    pub media_pages: usize,
    /// Page shape for the content pages.
    pub page: PageConfig,
    /// Probability of a cross-link between two content pages.
    pub cross_link_rate: f64,
}

impl Default for WebsiteConfig {
    fn default() -> Self {
        WebsiteConfig {
            content_pages: 8,
            media_pages: 1,
            page: PageConfig::default(),
            cross_link_rate: 0.3,
        }
    }
}

/// A generated website plus the labelled records of its content pages
/// (index/media pages carry no labels — they are crawler chaff).
pub struct GeneratedWebsite {
    /// The site graph (page 0 is the index root).
    pub site: Website,
    /// `(page index in site, labelled record)` for every content page.
    pub content: Vec<(usize, PageRecord)>,
}

/// Builds the hub/index page: many links, little text. Real index pages
/// link far beyond the crawlable frontier (categories, pagination), so the
/// hub always renders at least 24 anchors regardless of site size.
fn index_page(n_links: usize) -> Node {
    let n_links = n_links.max(24);
    let anchors: Vec<Node> = (0..n_links)
        .map(|i| {
            Node::elem_attrs(
                Tag::A,
                vec![("href", &format!("/item/{i}") as &str)],
                vec![Node::text(format!("item {i}"))],
            )
        })
        .collect();
    Node::elem(
        Tag::Body,
        vec![
            Node::elem(Tag::Nav, vec![Node::text("home catalog contact")]),
            Node::elem(Tag::Ul, anchors),
        ],
    )
}

/// Builds a media page (videos, no text to speak of).
fn media_page(rng: &mut StdRng) -> Node {
    let n = rng.gen_range(9..14);
    Node::elem(Tag::Body, (0..n).map(|_| Node::elem(Tag::Video, vec![])).collect())
}

/// Generates a topic-coherent website.
pub fn generate_website(
    topic: &TopicSpec,
    cfg: WebsiteConfig,
    rng: &mut StdRng,
) -> GeneratedWebsite {
    let mut site = Website::default();
    let root = site.add_page("/", index_page(cfg.content_pages + cfg.media_pages));

    let mut content = Vec::with_capacity(cfg.content_pages);
    let mut content_ids = Vec::new();
    // The indices below come straight from `add_page`, so every edge is in
    // range; `expect` documents the invariant rather than handling a case
    // that cannot arise here.
    let in_range = "edge endpoints come from add_page";
    for i in 0..cfg.content_pages {
        let record = generate_page(topic, cfg.page, rng);
        let idx = site.add_page(&format!("/item/{i}"), record.dom.clone());
        site.link(root, idx).expect(in_range);
        content_ids.push(idx);
        content.push((idx, record));
    }
    for i in 0..cfg.media_pages {
        let idx = site.add_page(&format!("/media/{i}"), media_page(rng));
        site.link(root, idx).expect(in_range);
    }
    // Cross-links between content pages ("related items").
    for (a_pos, &a) in content_ids.iter().enumerate() {
        for &b in content_ids.iter().skip(a_pos + 1) {
            if rng.gen_bool(cfg.cross_link_rate) {
                site.link(a, b).expect(in_range);
                site.link(b, a).expect(in_range);
            }
        }
    }
    GeneratedWebsite { site, content }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::Taxonomy;
    use rand::SeedableRng;
    use wb_html::{classify_page, crawl, CrawlConfig, PageKind};

    fn build(seed: u64, cfg: WebsiteConfig) -> GeneratedWebsite {
        let tax = Taxonomy::build(0, 2);
        let mut rng = StdRng::seed_from_u64(seed);
        generate_website(&tax.topics()[2], cfg, &mut rng)
    }

    #[test]
    fn site_structure_matches_config() {
        let cfg = WebsiteConfig { content_pages: 5, media_pages: 2, ..Default::default() };
        let w = build(1, cfg);
        // Root + 5 content + 2 media.
        assert_eq!(w.site.pages.len(), 8);
        assert_eq!(w.content.len(), 5);
    }

    #[test]
    fn crawler_keeps_exactly_the_content_pages() {
        let cfg = WebsiteConfig { content_pages: 6, media_pages: 2, ..Default::default() };
        let w = build(2, cfg);
        let r = crawl(&w.site, CrawlConfig::default());
        assert_eq!(r.content_pages.len(), 6);
        assert_eq!(r.skipped_index, 1);
        assert_eq!(r.skipped_media, 2);
        let expected: Vec<usize> = w.content.iter().map(|(i, _)| *i).collect();
        let mut got = r.content_pages.clone();
        got.sort_unstable();
        let mut exp = expected.clone();
        exp.sort_unstable();
        assert_eq!(got, exp);
    }

    #[test]
    fn page_kinds_classified_correctly() {
        let w = build(3, WebsiteConfig::default());
        assert_eq!(classify_page(&w.site.pages[0].dom), PageKind::Index);
        for (idx, _) in &w.content {
            assert_eq!(classify_page(&w.site.pages[*idx].dom), PageKind::ContentRich);
        }
    }

    #[test]
    fn cross_links_are_bidirectional() {
        let cfg =
            WebsiteConfig { content_pages: 6, cross_link_rate: 1.0, ..Default::default() };
        let w = build(4, cfg);
        for (a, _) in &w.content {
            for (b, _) in &w.content {
                if a != b {
                    assert!(w.site.pages[*a].links.contains(b));
                }
            }
        }
    }
}
