//! Property-based tests of the page generator: ground-truth alignment must
//! hold for *every* page shape, not just the default configuration.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use wb_corpus::{generate_page, PageConfig, Taxonomy};

fn config_strategy() -> impl Strategy<Value = PageConfig> {
    (1usize..5, 0usize..4, 0usize..4, 0.0f64..1.0).prop_map(
        |(informative_sections, noise_sections, filler_sentences, distractor_rate)| {
            PageConfig {
                informative_sections,
                noise_sections,
                filler_sentences,
                distractor_rate,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated page has exactly four attribute mentions whose word
    /// offsets align with the sentence text, all inside informative
    /// sentences.
    #[test]
    fn mentions_always_align(cfg in config_strategy(), seed in 0u64..500, topic_idx in 0usize..16) {
        let tax = Taxonomy::build(0, 2);
        let topic = &tax.topics()[topic_idx % tax.len()];
        let mut rng = StdRng::seed_from_u64(seed);
        let page = generate_page(topic, cfg, &mut rng);
        prop_assert_eq!(page.attributes.len(), 4);
        for m in &page.attributes {
            let words = &page.sentences[m.sentence].words;
            prop_assert_eq!(
                &words[m.word_start..m.word_start + m.value.len()],
                m.value.as_slice()
            );
            prop_assert!(page.sentences[m.sentence].informative);
        }
    }

    /// The rendered DOM reproduces the ground-truth word sequence exactly
    /// for every configuration.
    #[test]
    fn dom_roundtrip_holds_for_all_shapes(cfg in config_strategy(), seed in 0u64..200) {
        let tax = Taxonomy::build(0, 2);
        let topic = &tax.topics()[(seed as usize) % tax.len()];
        let mut rng = StdRng::seed_from_u64(seed);
        let page = generate_page(topic, cfg, &mut rng);
        let text = wb_html::visible_text(&page.dom);
        let sentences = wb_text::split_sentences(&text);
        prop_assert_eq!(sentences.len(), page.sentences.len());
        for (rendered, truth) in sentences.iter().zip(&page.sentences) {
            prop_assert_eq!(wb_text::normalize(rendered), truth.words.clone());
        }
    }

    /// Boilerplate is always present (nav/header/footer), so pages are
    /// never pure signal — the extractor really has something to reject.
    #[test]
    fn pages_always_contain_boilerplate(cfg in config_strategy(), seed in 0u64..200) {
        let tax = Taxonomy::build(0, 2);
        let topic = &tax.topics()[3];
        let mut rng = StdRng::seed_from_u64(seed);
        let page = generate_page(topic, cfg, &mut rng);
        let boiler = page.sentences.iter().filter(|s| !s.informative).count();
        prop_assert!(boiler >= 3, "only {} boilerplate sentences", boiler);
    }

    /// Generation is a pure function of (topic, config, rng seed).
    #[test]
    fn generation_is_deterministic(cfg in config_strategy(), seed in 0u64..100) {
        let tax = Taxonomy::build(0, 2);
        let topic = &tax.topics()[5];
        let a = generate_page(topic, cfg, &mut StdRng::seed_from_u64(seed));
        let b = generate_page(topic, cfg, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(a.sentences, b.sentences);
        prop_assert_eq!(a.attributes, b.attributes);
        prop_assert_eq!(a.dom, b.dom);
    }
}
