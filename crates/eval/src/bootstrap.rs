//! Bootstrap confidence intervals over per-example scores — used by the
//! experiment harnesses to qualify the scaled-down runs' headline numbers
//! (with hundreds rather than tens of thousands of test pages, interval
//! width matters).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A two-sided percentile bootstrap interval.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Interval {
    /// Point estimate (mean of the observed scores).
    pub mean: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
}

impl Interval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Whether the interval contains a value.
    pub fn contains(&self, v: f64) -> bool {
        (self.lo..=self.hi).contains(&v)
    }
}

/// Percentile bootstrap of the mean of `scores` (e.g. per-example 0/1
/// exact-match outcomes or per-example F1), with `resamples` draws at the
/// given `confidence` (e.g. 0.95).
pub fn bootstrap_mean(
    scores: &[f64],
    resamples: usize,
    confidence: f64,
    seed: u64,
) -> Interval {
    assert!(!scores.is_empty(), "bootstrap of zero scores");
    assert!((0.0..1.0).contains(&(1.0 - confidence)), "confidence must be in (0,1)");
    let n = scores.len();
    let mean = scores.iter().sum::<f64>() / n as f64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let mut s = 0.0;
            for _ in 0..n {
                s += scores[rng.gen_range(0..n)];
            }
            s / n as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((resamples as f64) * alpha).floor() as usize;
    let hi_idx = (((resamples as f64) * (1.0 - alpha)).ceil() as usize).min(resamples - 1);
    Interval { mean, lo: means[lo_idx], hi: means[hi_idx] }
}

/// Bootstrap of an exact-match percentage from per-example booleans.
pub fn bootstrap_percentage(outcomes: &[bool], resamples: usize, seed: u64) -> Interval {
    let scores: Vec<f64> = outcomes.iter().map(|&b| if b { 100.0 } else { 0.0 }).collect();
    bootstrap_mean(&scores, resamples, 0.95, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_contains_true_mean_for_constant_data() {
        let scores = vec![5.0; 50];
        let iv = bootstrap_mean(&scores, 200, 0.95, 1);
        assert_eq!(iv.mean, 5.0);
        assert_eq!(iv.lo, 5.0);
        assert_eq!(iv.hi, 5.0);
        assert!(iv.contains(5.0));
    }

    #[test]
    fn interval_narrows_with_more_data() {
        let make = |n: usize| -> Vec<f64> {
            (0..n).map(|i| if i % 2 == 0 { 0.0 } else { 100.0 }).collect()
        };
        let wide = bootstrap_mean(&make(10), 500, 0.95, 2);
        let narrow = bootstrap_mean(&make(1000), 500, 0.95, 2);
        assert!(narrow.half_width() < wide.half_width());
    }

    #[test]
    fn percentage_bootstrap_brackets_the_rate() {
        let outcomes: Vec<bool> = (0..200).map(|i| i % 4 != 0).collect(); // 75%
        let iv = bootstrap_percentage(&outcomes, 500, 3);
        assert!((iv.mean - 75.0).abs() < 1e-9);
        assert!(iv.lo < 75.0 && 75.0 < iv.hi);
        assert!(iv.half_width() < 15.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let scores: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let a = bootstrap_mean(&scores, 300, 0.95, 7);
        let b = bootstrap_mean(&scores, 300, 0.95, 7);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "zero scores")]
    fn empty_scores_panic() {
        let _ = bootstrap_mean(&[], 10, 0.95, 0);
    }
}
