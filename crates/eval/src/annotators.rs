//! Simulated annotator panels replacing the paper's human volunteers
//! (§IV-A2 dataset quality, §IV-E human evaluation of topic generation).
//!
//! Each judge scores an output 2 (perfectly suitable), 1 (suitable) or
//! 0 (unsuitable). Judges are noisy-but-calibrated oracles: the latent true
//! score is derived from token overlap with the ground truth; each judge
//! perturbs it with an independent, seeded error rate. This reproduces what
//! Table X actually measures — the ordering of systems under near-ceiling
//! inter-annotator agreement — while staying deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The latent quality of an output against the ground truth.
pub fn latent_score(generated: &[u32], gold: &[u32]) -> u8 {
    if generated == gold {
        2
    } else if generated.iter().any(|t| gold.contains(t)) {
        1
    } else {
        0
    }
}

/// One simulated judge.
#[derive(Debug, Clone)]
pub struct Judge {
    rng: StdRng,
    /// Probability of deviating from the latent score by one point.
    pub error_rate: f64,
}

impl Judge {
    /// A judge with the given seed and error rate.
    pub fn new(seed: u64, error_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&error_rate), "error rate must be a probability");
        Judge { rng: StdRng::seed_from_u64(seed), error_rate }
    }

    /// Scores an output 0/1/2.
    pub fn score(&mut self, generated: &[u32], gold: &[u32]) -> u8 {
        let latent = latent_score(generated, gold);
        if self.rng.gen_bool(self.error_rate) {
            // Deviate by one point toward the other end of the scale.
            match latent {
                0 => 1,
                2 => 1,
                _ => {
                    if self.rng.gen_bool(0.5) {
                        0
                    } else {
                        2
                    }
                }
            }
        } else {
            latent
        }
    }
}

/// A panel of judges.
#[derive(Debug, Clone)]
pub struct Panel {
    judges: Vec<Judge>,
}

/// Per-item panel scores plus aggregate statistics.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct PanelResult {
    /// `scores[j][i]` — judge `j`'s score for item `i`.
    pub scores: Vec<Vec<u8>>,
    /// Mean score over all judges and items.
    pub mean: f64,
    /// Mean pairwise Cohen's κ across judges.
    pub kappa: f64,
}

impl Panel {
    /// Builds `n` judges with seeds derived from `seed`. The paper's
    /// volunteers reach κ > 0.83–0.93; an error rate around 0.03 lands in
    /// that band.
    pub fn new(n: usize, seed: u64, error_rate: f64) -> Self {
        assert!(n >= 2, "a panel needs at least two judges");
        Panel {
            judges: (0..n)
                .map(|j| {
                    Judge::new(seed.wrapping_add(j as u64).wrapping_mul(0x9E37), error_rate)
                })
                .collect(),
        }
    }

    /// Scores a batch of `(generated, gold)` pairs.
    pub fn evaluate(&mut self, items: &[(Vec<u32>, Vec<u32>)]) -> PanelResult {
        let mut scores = vec![Vec::with_capacity(items.len()); self.judges.len()];
        for (gen, gold) in items {
            for (j, judge) in self.judges.iter_mut().enumerate() {
                scores[j].push(judge.score(gen, gold));
            }
        }
        let total: usize = scores.iter().flatten().map(|&s| s as usize).sum();
        let count = scores.len() * items.len().max(1);
        let mean = if items.is_empty() { 0.0 } else { total as f64 / count as f64 };
        let kappa = if items.is_empty() { 1.0 } else { crate::stats::panel_kappa(&scores) };
        PanelResult { scores, mean, kappa }
    }
}

/// Majority vote over a panel's scores for one item.
pub fn majority_vote(scores: &[u8]) -> u8 {
    let mut counts = [0usize; 3];
    for &s in scores {
        counts[s.min(2) as usize] += 1;
    }
    counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(i, _)| i as u8).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latent_scoring() {
        assert_eq!(latent_score(&[1, 2], &[1, 2]), 2);
        assert_eq!(latent_score(&[1, 9], &[1, 2]), 1);
        assert_eq!(latent_score(&[8, 9], &[1, 2]), 0);
    }

    #[test]
    fn perfect_outputs_score_near_two() {
        let mut panel = Panel::new(5, 42, 0.03);
        let items: Vec<(Vec<u32>, Vec<u32>)> =
            (0..40).map(|i| (vec![i, i + 1], vec![i, i + 1])).collect();
        let r = panel.evaluate(&items);
        assert!(r.mean > 1.85, "mean {}", r.mean);
    }

    #[test]
    fn mixed_quality_items_give_high_kappa() {
        // κ needs label variety to be meaningful; a mixed batch with
        // low-noise judges should agree strongly, like the paper's panels
        // (κ > 0.83).
        let mut panel = Panel::new(5, 42, 0.03);
        let items: Vec<(Vec<u32>, Vec<u32>)> = (0..60)
            .map(|i| match i % 3 {
                0 => (vec![i, i + 1], vec![i, i + 1]),   // exact
                1 => (vec![i, 9999], vec![i, i + 1]),    // partial
                _ => (vec![8888, 9999], vec![i, i + 1]), // wrong
            })
            .collect();
        let r = panel.evaluate(&items);
        assert!(r.kappa > 0.83, "kappa {}", r.kappa);
    }

    #[test]
    fn garbage_outputs_score_near_zero() {
        let mut panel = Panel::new(5, 42, 0.03);
        let items: Vec<(Vec<u32>, Vec<u32>)> =
            (0..40).map(|i| (vec![1000 + i], vec![i, i + 1])).collect();
        let r = panel.evaluate(&items);
        assert!(r.mean < 0.15, "mean {}", r.mean);
    }

    #[test]
    fn better_systems_get_higher_means() {
        let gold: Vec<(Vec<u32>, Vec<u32>)> =
            (0..40).map(|i| (vec![i, i + 1], vec![i, i + 1])).collect();
        let partial: Vec<(Vec<u32>, Vec<u32>)> =
            (0..40).map(|i| (vec![i, 999], vec![i, i + 1])).collect();
        let mut p1 = Panel::new(5, 7, 0.03);
        let mut p2 = Panel::new(5, 7, 0.03);
        assert!(p1.evaluate(&gold).mean > p2.evaluate(&partial).mean);
    }

    #[test]
    fn deterministic_under_seed() {
        let items: Vec<(Vec<u32>, Vec<u32>)> = (0..10).map(|i| (vec![i], vec![i])).collect();
        let a = Panel::new(3, 5, 0.1).evaluate(&items);
        let b = Panel::new(3, 5, 0.1).evaluate(&items);
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn majority_vote_picks_mode() {
        assert_eq!(majority_vote(&[2, 2, 1, 0, 2]), 2);
        assert_eq!(majority_vote(&[0, 0, 1]), 0);
    }

    #[test]
    fn noisier_judges_lower_kappa() {
        let items: Vec<(Vec<u32>, Vec<u32>)> =
            (0..60).map(|i| (vec![i % 3], vec![i, 1])).collect();
        let tight = Panel::new(5, 1, 0.02).evaluate(&items);
        let loose = Panel::new(5, 1, 0.4).evaluate(&items);
        assert!(tight.kappa > loose.kappa);
    }
}
