//! Evaluation metrics (§IV-A4): span-level precision/recall/F1 for key
//! attribute extraction, exact matching (EM) and relaxed matching (RM) for
//! topic generation.

/// Decodes BIO tags into `(start, end)` token spans. A span starts at `B`
/// and extends over following `I`s; an `I` without a preceding `B` starts a
/// span too (lenient decoding, standard for taggers).
pub fn bio_to_spans(tags: &[u8]) -> Vec<(usize, usize)> {
    const B: u8 = 1;
    const I: u8 = 2;
    let mut spans = Vec::new();
    let mut start: Option<usize> = None;
    for (i, &t) in tags.iter().enumerate() {
        match t {
            B => {
                if let Some(s) = start.take() {
                    spans.push((s, i));
                }
                start = Some(i);
            }
            I => {
                if start.is_none() {
                    start = Some(i);
                }
            }
            _ => {
                if let Some(s) = start.take() {
                    spans.push((s, i));
                }
            }
        }
    }
    if let Some(s) = start {
        spans.push((s, tags.len()));
    }
    spans
}

/// Running counts for span-level precision/recall/F1.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExtractionScores {
    /// True positives (exactly matching spans).
    pub tp: usize,
    /// Predicted spans that match no gold span.
    pub fp: usize,
    /// Gold spans that were not predicted.
    pub fn_: usize,
}

impl ExtractionScores {
    /// Accumulates one example's predicted vs gold spans (exact match).
    ///
    /// Matching is greedy in prediction order: each prediction claims the
    /// first *not-yet-matched* gold occurrence of its span, so when both
    /// sides contain duplicates every pair counts as a true positive. A
    /// prediction with no unmatched gold occurrence left is a false
    /// positive; gold occurrences left unclaimed are false negatives.
    pub fn update(&mut self, predicted: &[(usize, usize)], gold: &[(usize, usize)]) {
        let mut matched = vec![false; gold.len()];
        for p in predicted {
            match gold.iter().enumerate().position(|(i, g)| g == p && !matched[i]) {
                Some(i) => {
                    matched[i] = true;
                    self.tp += 1;
                }
                None => self.fp += 1,
            }
        }
        self.fn_ += matched.iter().filter(|&&m| !m).count();
    }

    /// Precision in percent.
    pub fn precision(&self) -> f64 {
        pct(self.tp, self.tp + self.fp)
    }

    /// Recall in percent.
    pub fn recall(&self) -> f64 {
        pct(self.tp, self.tp + self.fn_)
    }

    /// F1 in percent.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Merges counts from another accumulator.
    pub fn merge(&mut self, other: &ExtractionScores) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
    }
}

fn pct(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Running counts for EM/RM topic-generation scores.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GenerationScores {
    /// Examples evaluated.
    pub total: usize,
    /// Exactly matching generations.
    pub exact: usize,
    /// Generations sharing ≥1 token with the ground truth.
    pub relaxed: usize,
}

impl GenerationScores {
    /// Accumulates one `(generated, gold)` pair of token-id sequences
    /// (without `[EOS]`).
    pub fn update(&mut self, generated: &[u32], gold: &[u32]) {
        self.total += 1;
        if generated == gold {
            self.exact += 1;
        }
        if generated.iter().any(|t| gold.contains(t)) {
            self.relaxed += 1;
        }
    }

    /// Per-example EM outcomes are needed by McNemar's test; this reports
    /// whether a single pair is an exact match.
    pub fn is_exact(generated: &[u32], gold: &[u32]) -> bool {
        generated == gold
    }

    /// Exact-match percentage.
    pub fn em(&self) -> f64 {
        pct(self.exact, self.total)
    }

    /// Relaxed-match percentage.
    pub fn rm(&self) -> f64 {
        pct(self.relaxed, self.total)
    }

    /// Merges counts from another accumulator.
    pub fn merge(&mut self, other: &GenerationScores) {
        self.total += other.total;
        self.exact += other.exact;
        self.relaxed += other.relaxed;
    }
}

/// Accuracy of binary informative-section predictions.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SectionScores {
    /// Sentences evaluated.
    pub total: usize,
    /// Correct predictions.
    pub correct: usize,
}

impl SectionScores {
    /// Accumulates per-sentence predictions.
    pub fn update(&mut self, predicted: &[bool], gold: &[bool]) {
        assert_eq!(predicted.len(), gold.len(), "one prediction per sentence");
        self.total += gold.len();
        self.correct += predicted.iter().zip(gold).filter(|(p, g)| p == g).count();
    }

    /// Accuracy in percent.
    pub fn accuracy(&self) -> f64 {
        pct(self.correct, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bio_decoding_basic() {
        // O B I O B O
        assert_eq!(bio_to_spans(&[0, 1, 2, 0, 1, 0]), vec![(1, 3), (4, 5)]);
    }

    #[test]
    fn bio_decoding_adjacent_b() {
        // B B I
        assert_eq!(bio_to_spans(&[1, 1, 2]), vec![(0, 1), (1, 3)]);
    }

    #[test]
    fn bio_decoding_trailing_span() {
        assert_eq!(bio_to_spans(&[0, 0, 1, 2]), vec![(2, 4)]);
    }

    #[test]
    fn bio_decoding_orphan_i() {
        assert_eq!(bio_to_spans(&[2, 2, 0]), vec![(0, 2)]);
    }

    #[test]
    fn extraction_counts() {
        let mut s = ExtractionScores::default();
        s.update(&[(0, 2), (5, 6)], &[(0, 2), (3, 4)]);
        assert_eq!(s.tp, 1);
        assert_eq!(s.fp, 1);
        assert_eq!(s.fn_, 1);
        assert!((s.precision() - 50.0).abs() < 1e-9);
        assert!((s.recall() - 50.0).abs() < 1e-9);
        assert!((s.f1() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn extraction_duplicate_prediction_counts_once() {
        let mut s = ExtractionScores::default();
        s.update(&[(0, 2), (0, 2)], &[(0, 2)]);
        assert_eq!(s.tp, 1);
        assert_eq!(s.fp, 1);
        assert_eq!(s.fn_, 0);
    }

    #[test]
    fn extraction_duplicate_gold_matches_duplicate_predictions() {
        // Both sides hold the same span twice: each prediction claims its
        // own gold occurrence, so neither is a false positive.
        let mut s = ExtractionScores::default();
        s.update(&[(0, 2), (0, 2)], &[(0, 2), (0, 2)]);
        assert_eq!(s.tp, 2);
        assert_eq!(s.fp, 0);
        assert_eq!(s.fn_, 0);

        // Three predictions vs two gold copies: the surplus one is FP.
        let mut s = ExtractionScores::default();
        s.update(&[(0, 2), (0, 2), (0, 2)], &[(0, 2), (0, 2)]);
        assert_eq!(s.tp, 2);
        assert_eq!(s.fp, 1);
        assert_eq!(s.fn_, 0);
    }

    #[test]
    fn extraction_empty_cases() {
        let s = ExtractionScores::default();
        assert_eq!(s.precision(), 0.0);
        assert_eq!(s.f1(), 0.0);
    }

    #[test]
    fn generation_em_rm() {
        let mut s = GenerationScores::default();
        s.update(&[1, 2, 3], &[1, 2, 3]); // exact
        s.update(&[1, 9, 9], &[1, 2, 3]); // relaxed only
        s.update(&[7, 8], &[1, 2, 3]); // neither
        assert_eq!(s.total, 3);
        assert!((s.em() - 33.333).abs() < 0.01);
        assert!((s.rm() - 66.666).abs() < 0.01);
    }

    #[test]
    fn exact_match_is_order_sensitive() {
        assert!(!GenerationScores::is_exact(&[1, 2], &[2, 1]));
        assert!(GenerationScores::is_exact(&[2, 1], &[2, 1]));
    }

    #[test]
    fn section_accuracy() {
        let mut s = SectionScores::default();
        s.update(&[true, false, true], &[true, true, true]);
        assert!((s.accuracy() - 66.666).abs() < 0.01);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = GenerationScores::default();
        a.update(&[1], &[1]);
        let mut b = GenerationScores::default();
        b.update(&[2], &[3]);
        a.merge(&b);
        assert_eq!(a.total, 2);
        assert_eq!(a.exact, 1);
    }
}
