//! Result-table formatting: the experiment harnesses print rows in the same
//! layout as the paper's tables and serialise them for EXPERIMENTS.md.

/// A result table: a caption, column headers and string rows.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct ResultTable {
    /// Table caption (e.g. "TABLE IV: topic generation, distillation").
    pub caption: String,
    /// Column headers; the first column is the method name.
    pub columns: Vec<String>,
    /// Rows of cells, aligned with `columns`.
    pub rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates an empty table.
    pub fn new(caption: &str, columns: &[&str]) -> Self {
        ResultTable {
            caption: caption.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row; cells beyond the column count are rejected.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width must match header");
        self.rows.push(cells);
    }

    /// Convenience: a method name plus f64 metric cells formatted to two
    /// decimals (`None` renders as `-`, matching the paper's tables).
    pub fn push_metrics(&mut self, method: &str, metrics: &[Option<f64>]) {
        let mut cells = vec![method.to_string()];
        cells.extend(metrics.iter().map(|m| match m {
            Some(v) => format!("{v:.2}"),
            None => "-".to_string(),
        }));
        self.push_row(cells);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.caption);
        out.push('\n');
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("**{}**\n\n", self.caption));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.columns.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Looks up a metric cell by method name and column header.
    pub fn get(&self, method: &str, column: &str) -> Option<&str> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows.iter().find(|r| r[0] == method).map(|r| r[col].as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_renders() {
        let mut t = ResultTable::new("TABLE T", &["Method", "EM", "RM"]);
        t.push_metrics("Dual-Distill", &[Some(94.86), Some(96.1)]);
        t.push_metrics("No Distill", &[Some(86.23), None]);
        let text = t.render();
        assert!(text.contains("Dual-Distill"));
        assert!(text.contains("94.86"));
        assert!(text.contains('-'));
        let md = t.render_markdown();
        assert!(md.starts_with("**TABLE T**"));
        assert!(md.contains("| Dual-Distill | 94.86 | 96.10 |"));
    }

    #[test]
    fn get_by_method_and_column() {
        let mut t = ResultTable::new("T", &["Method", "F1"]);
        t.push_metrics("A", &[Some(50.0)]);
        assert_eq!(t.get("A", "F1"), Some("50.00"));
        assert_eq!(t.get("B", "F1"), None);
        assert_eq!(t.get("A", "nope"), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = ResultTable::new("T", &["Method", "F1"]);
        t.push_row(vec!["only-method".into()]);
    }
}
