#![warn(missing_docs)]
//! # wb-eval
//!
//! Evaluation machinery for Webpage Briefing (§IV-A4 and §IV-E):
//!
//! * [`ExtractionScores`] — span-level precision/recall/F1 for key
//!   attribute extraction, with [`bio_to_spans`] BIO decoding,
//! * [`GenerationScores`] — exact-match (EM) and relaxed-match (RM) topic
//!   generation scores,
//! * [`mcnemar`] — McNemar's paired significance test,
//! * [`cohens_kappa`] / [`panel_kappa`] — inter-annotator agreement,
//! * [`Panel`] — the simulated annotator panel replacing human volunteers
//!   (see DESIGN.md §2),
//! * [`ResultTable`] — paper-style result-table formatting.
//!
//! ```
//! use wb_eval::{bio_to_spans, ExtractionScores, GenerationScores, mcnemar};
//!
//! // Span F1 from BIO tags.
//! let mut ext = ExtractionScores::default();
//! ext.update(&bio_to_spans(&[0, 1, 2, 0]), &[(1, 3)]);
//! assert_eq!(ext.f1(), 100.0);
//!
//! // EM/RM for topic generation.
//! let mut gen = GenerationScores::default();
//! gen.update(&[4, 7], &[4, 7]);
//! assert_eq!(gen.em(), 100.0);
//!
//! // Paired significance.
//! let t = mcnemar(&[true, true, false], &[true, false, false]);
//! assert!(!t.significant(0.05));
//! ```

mod annotators;
mod bootstrap;
mod breakdown;
mod metrics;
mod stats;
mod table;

pub use annotators::{latent_score, majority_vote, Judge, Panel, PanelResult};
pub use bootstrap::{bootstrap_mean, bootstrap_percentage, Interval};
pub use breakdown::KindBreakdown;
pub use metrics::{bio_to_spans, ExtractionScores, GenerationScores, SectionScores};
pub use stats::{chi2_sf_1df, cohens_kappa, erfc, mcnemar, panel_kappa, McNemar};
pub use table::ResultTable;
