//! Per-attribute-kind extraction breakdown: the aggregate F1 of Table VI
//! hides that numeric attributes (strong lexical cue + `<digit>` value) are
//! far easier than name-like attributes built from topic vocabulary. The
//! `attribute_breakdown` experiment reports F1 per kind.

use crate::metrics::ExtractionScores;
use std::collections::BTreeMap;

/// Accumulates extraction scores keyed by an attribute-kind label.
#[derive(Debug, Clone, Default)]
pub struct KindBreakdown {
    per_kind: BTreeMap<String, ExtractionScores>,
}

impl KindBreakdown {
    /// An empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Updates with one example: predicted spans vs gold spans labelled by
    /// kind. A predicted span counts for the kind of the gold span it
    /// matches; unmatched predictions are charged to the kind of the
    /// *nearest* gold span (by start offset) so precision degradation is
    /// attributed somewhere meaningful.
    pub fn update(&mut self, predicted: &[(usize, usize)], gold: &[(&str, usize, usize)]) {
        // Recall/TP side: per-kind gold matching.
        for &(kind, s, e) in gold {
            let entry = self.per_kind.entry(kind.to_string()).or_default();
            if predicted.contains(&(s, e)) {
                entry.tp += 1;
            } else {
                entry.fn_ += 1;
            }
        }
        // Precision side: false positives attributed to the nearest kind.
        for &(ps, pe) in predicted {
            if gold.iter().any(|&(_, s, e)| (s, e) == (ps, pe)) {
                continue;
            }
            if let Some(&(kind, _, _)) = gold.iter().min_by_key(|&&(_, s, _)| s.abs_diff(ps)) {
                self.per_kind.entry(kind.to_string()).or_default().fp += 1;
            } else {
                self.per_kind.entry("(none)".to_string()).or_default().fp += 1;
            }
            let _ = pe;
        }
    }

    /// Iterates `(kind, scores)` in kind order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ExtractionScores)> {
        self.per_kind.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The scores for one kind, if present.
    pub fn get(&self, kind: &str) -> Option<&ExtractionScores> {
        self.per_kind.get(kind)
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &KindBreakdown) {
        for (k, v) in &other.per_kind {
            self.per_kind.entry(k.clone()).or_default().merge(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_kind_accounting() {
        let mut b = KindBreakdown::new();
        b.update(&[(0, 2), (10, 11)], &[("price", 0, 2), ("maker", 5, 7)]);
        // price: matched. maker: missed. The stray (10,11) is nearest to
        // maker's span.
        assert_eq!(b.get("price").unwrap().tp, 1);
        assert_eq!(b.get("maker").unwrap().fn_, 1);
        assert_eq!(b.get("maker").unwrap().fp, 1);
        assert_eq!(b.get("price").unwrap().f1(), 100.0);
    }

    #[test]
    fn no_gold_spans_charges_none_bucket() {
        let mut b = KindBreakdown::new();
        b.update(&[(3, 4)], &[]);
        assert_eq!(b.get("(none)").unwrap().fp, 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = KindBreakdown::new();
        a.update(&[(0, 1)], &[("price", 0, 1)]);
        let mut b = KindBreakdown::new();
        b.update(&[(0, 1)], &[("price", 0, 1)]);
        a.merge(&b);
        assert_eq!(a.get("price").unwrap().tp, 2);
    }

    #[test]
    fn iteration_is_sorted_by_kind() {
        let mut b = KindBreakdown::new();
        b.update(&[], &[("zebra", 0, 1), ("apple", 2, 3)]);
        let kinds: Vec<&str> = b.iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, vec!["apple", "zebra"]);
    }
}
