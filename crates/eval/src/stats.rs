//! Statistical tests used in §IV: McNemar's test for paired model
//! comparisons ("McNemar's test of p < 0.05 is used to test whether the
//! improvements are statistically significant") and Cohen's κ for
//! inter-annotator agreement.

/// Result of McNemar's test on paired binary outcomes.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct McNemar {
    /// Cases model A was right and B wrong.
    pub b: usize,
    /// Cases model B was right and A wrong.
    pub c: usize,
    /// Continuity-corrected χ² statistic.
    pub chi2: f64,
    /// Two-sided p-value (χ² with 1 d.o.f.).
    pub p_value: f64,
}

impl McNemar {
    /// Whether the difference is significant at `alpha`.
    pub fn significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Runs McNemar's test over paired per-example correctness vectors.
///
/// # Panics
/// Panics when the vectors differ in length (the models must be evaluated
/// on identical examples).
pub fn mcnemar(a_correct: &[bool], b_correct: &[bool]) -> McNemar {
    assert_eq!(a_correct.len(), b_correct.len(), "paired test requires equal lengths");
    let mut b = 0usize; // A right, B wrong
    let mut c = 0usize; // B right, A wrong
    for (&x, &y) in a_correct.iter().zip(b_correct) {
        match (x, y) {
            (true, false) => b += 1,
            (false, true) => c += 1,
            _ => {}
        }
    }
    let n = (b + c) as f64;
    let chi2 = if n == 0.0 {
        0.0
    } else {
        let d = (b as f64 - c as f64).abs() - 1.0;
        (d.max(0.0)).powi(2) / n
    };
    McNemar { b, c, chi2, p_value: chi2_sf_1df(chi2) }
}

/// Survival function of the χ² distribution with one degree of freedom:
/// `P(X > x) = erfc(sqrt(x/2))`.
pub fn chi2_sf_1df(x: f64) -> f64 {
    erfc((x / 2.0).sqrt())
}

/// Complementary error function (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
pub fn erfc(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))))
        * (-x * x).exp();
    if sign < 0.0 {
        2.0 - y
    } else {
        y
    }
}

/// Cohen's κ between two raters over categorical labels.
///
/// # Panics
/// Panics when the label vectors differ in length or are empty.
pub fn cohens_kappa(rater_a: &[u8], rater_b: &[u8]) -> f64 {
    assert_eq!(rater_a.len(), rater_b.len(), "raters must label the same items");
    assert!(!rater_a.is_empty(), "kappa of zero items");
    let n = rater_a.len() as f64;
    let categories: std::collections::BTreeSet<u8> =
        rater_a.iter().chain(rater_b).copied().collect();
    let observed = rater_a.iter().zip(rater_b).filter(|(a, b)| a == b).count() as f64 / n;
    let mut expected = 0.0;
    for &cat in &categories {
        let pa = rater_a.iter().filter(|&&x| x == cat).count() as f64 / n;
        let pb = rater_b.iter().filter(|&&x| x == cat).count() as f64 / n;
        expected += pa * pb;
    }
    if (1.0 - expected).abs() < 1e-12 {
        1.0
    } else {
        (observed - expected) / (1.0 - expected)
    }
}

/// Mean pairwise Cohen's κ over a panel of raters (the paper reports a
/// single κ per evaluation aspect for five/ten volunteers).
pub fn panel_kappa(raters: &[Vec<u8>]) -> f64 {
    assert!(raters.len() >= 2, "panel needs at least two raters");
    let mut sum = 0.0;
    let mut pairs = 0;
    for i in 0..raters.len() {
        for j in i + 1..raters.len() {
            sum += cohens_kappa(&raters[i], &raters[j]);
            pairs += 1;
        }
    }
    sum / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcnemar_identical_models_not_significant() {
        let a = vec![true, false, true, true];
        let r = mcnemar(&a, &a);
        assert_eq!(r.b, 0);
        assert_eq!(r.c, 0);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn mcnemar_large_asymmetry_is_significant() {
        // A right / B wrong on 30 cases, the reverse on 2.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for _ in 0..30 {
            a.push(true);
            b.push(false);
        }
        for _ in 0..2 {
            a.push(false);
            b.push(true);
        }
        let r = mcnemar(&a, &b);
        assert_eq!(r.b, 30);
        assert_eq!(r.c, 2);
        assert!(r.significant(0.05), "p = {}", r.p_value);
    }

    #[test]
    fn mcnemar_small_difference_not_significant() {
        let a = vec![true, false, true, false];
        let b = vec![false, true, true, false];
        let r = mcnemar(&a, &b);
        assert!(!r.significant(0.05));
    }

    #[test]
    fn chi2_sf_reference_values() {
        // χ² = 3.841 ↔ p = 0.05 at 1 d.o.f.
        assert!((chi2_sf_1df(3.841) - 0.05).abs() < 2e-3);
        assert!((chi2_sf_1df(0.0) - 1.0).abs() < 1e-9);
        assert!(chi2_sf_1df(10.83) < 0.0011);
    }

    #[test]
    fn kappa_perfect_agreement() {
        let a = vec![0, 1, 2, 1, 0];
        assert!((cohens_kappa(&a, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn kappa_chance_agreement_near_zero() {
        // Rater B's labels are independent of A's with matching marginals.
        let a = vec![0, 0, 1, 1, 0, 0, 1, 1];
        let b = vec![0, 1, 0, 1, 1, 0, 1, 0];
        let k = cohens_kappa(&a, &b);
        assert!(k.abs() < 0.3, "kappa {k}");
    }

    #[test]
    fn kappa_textbook_example() {
        // 2x2 example: observed agreement 0.8, expected 0.5 → κ = 0.6.
        let a = vec![1, 1, 1, 1, 1, 0, 0, 0, 0, 0];
        let b = vec![1, 1, 1, 1, 0, 1, 0, 0, 0, 0];
        let k = cohens_kappa(&a, &b);
        assert!((k - 0.6).abs() < 1e-9, "kappa {k}");
    }

    #[test]
    fn panel_kappa_averages_pairs() {
        let r1 = vec![0, 1, 2];
        let r2 = vec![0, 1, 2];
        let r3 = vec![0, 1, 2];
        assert!((panel_kappa(&[r1, r2, r3]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-5);
    }
}
