//! Forces the multi-threaded kernels on and checks them bit-for-bit
//! against the serial reference — even on single-core machines, where the
//! default thread count would otherwise keep every op on the serial path.
//!
//! The vendored rayon re-reads `RAYON_NUM_THREADS` on every call, so one
//! process can force 4 workers, then 2, then compare. This file holds a
//! single `#[test]` because the variable is process-global.

use wb_tensor::{softmax_slice, Tensor, PAR_MIN_ELEMS, PAR_MIN_ROWS};

/// Deterministic pseudo-random fill (cheap LCG).
fn fill(seed: u64, n: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
        })
        .collect()
}

#[test]
fn forced_parallel_kernels_match_serial_bit_for_bit() {
    // Shapes safely past every threshold: m*k*n MACs and elem counts.
    let (m, k, n) = (PAR_MIN_ROWS + 9, 96, 80);
    let rows = PAR_MIN_ROWS + 5;
    let cols = 1 + PAR_MIN_ELEMS / rows;

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let serial = run_all(m, k, n, rows, cols);
    for forced in ["2", "4"] {
        std::env::set_var("RAYON_NUM_THREADS", forced);
        let parallel = run_all(m, k, n, rows, cols);
        assert_eq!(serial.len(), parallel.len(), "result count changed at {forced} threads");
        for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
            // Compare bit patterns (NaN != NaN under `==`; the matmul
            // results deliberately contain NaN/±Inf/-0.0), with NaN
            // payloads canonicalized — payload selection in a NaN + NaN
            // sum is codegen-chosen, not part of the kernel contract.
            let canon = |v: &f32| if v.is_nan() { f32::NAN.to_bits() } else { v.to_bits() };
            let sb: Vec<u32> = s.data().iter().map(canon).collect();
            let pb: Vec<u32> = p.data().iter().map(canon).collect();
            assert!(
                sb == pb && s.shape() == p.shape(),
                "kernel #{i} diverged from serial at {forced} threads"
            );
        }
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

/// Runs every parallelizable op once at the current thread count.
fn run_all(m: usize, k: usize, n: usize, rows: usize, cols: usize) -> Vec<Tensor> {
    let mut out = Vec::new();

    // All four matmul transpose variants, with NaN/±Inf/-0.0 and a zero
    // row laced in: the packed kernels must propagate non-finites exactly
    // like the serial reference at every thread count (the old zero-skip
    // turned 0 × NaN into 0 on the nn/tn paths).
    for (ta, tb) in [(false, false), (false, true), (true, false), (true, true)] {
        let a_shape = if ta { [k, m] } else { [m, k] };
        let b_shape = if tb { [n, k] } else { [k, n] };
        let mut av = fill(7, m * k);
        av[0] = f32::NAN;
        av[m * k / 2] = f32::INFINITY;
        av[m * k - 1] = -0.0;
        av[a_shape[1]..2 * a_shape[1]].fill(0.0); // zero row
        let mut bv = fill(11, k * n);
        bv[k * n / 3] = f32::NEG_INFINITY;
        bv[k * n / 5] = f32::NAN;
        let a = Tensor::from_vec(&a_shape, av);
        let b = Tensor::from_vec(&b_shape, bv);
        out.push(a.matmul(&b, ta, tb));
        // matmul_into must agree with matmul exactly.
        let mut buf = Tensor::zeros(&[1]);
        a.matmul_into(&b, ta, tb, &mut buf);
        out.push(buf);
    }

    // Row-parallel softmax against the public per-row primitive.
    let t = Tensor::from_vec(&[rows, cols], fill(13, rows * cols));
    out.push(t.softmax_rows(1.7));
    let mut by_row = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        let mut row = t.data()[r * cols..(r + 1) * cols].to_vec();
        softmax_slice(&mut row, 1.7);
        by_row.extend_from_slice(&row);
    }
    out.push(Tensor::from_vec(&[rows, cols], by_row));

    // Element-wise family.
    let u = Tensor::from_vec(&[rows, cols], fill(17, rows * cols));
    out.push(t.map(|x| (x * 1.5).tanh()));
    out.push(t.zip_map(&u, |a, b| a * b + 0.25));
    let bias = Tensor::from_vec(&[cols], fill(19, cols));
    out.push(t.add_row_broadcast(&bias));

    out
}
