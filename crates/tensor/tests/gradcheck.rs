//! Numerical gradient checks for every differentiable op in `wb-tensor`.
//!
//! For a scalar loss `L(θ)` built from one parameter tensor, the analytic
//! gradient from `Graph::backward` must match the central finite difference
//! `(L(θ+h) − L(θ−h)) / 2h` at every coordinate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wb_tensor::{Graph, Params, Tensor};

/// Builds params with one tensor `w` of `shape`, evaluates `f` to a scalar
/// loss, and compares analytic vs numeric gradients.
fn check(shape: &[usize], f: impl Fn(&mut Graph, wb_tensor::Var) -> wb_tensor::Var) {
    let mut rng = StdRng::seed_from_u64(42);
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let mut params = Params::new();
    let w = params.add("w", Tensor::from_vec(shape, data));

    let analytic = {
        let mut g = Graph::new(&params, false, 0);
        let wv = g.param(w);
        let loss = f(&mut g, wv);
        assert_eq!(g.value(loss).len(), 1, "loss must be scalar");
        g.backward(loss)
    };
    let analytic = analytic.get(w).expect("no gradient for w").clone();

    let h = 1e-3f32;
    let eval = |params: &Params| -> f32 {
        let mut g = Graph::new(params, false, 0);
        let wv = g.param(w);
        let loss = f(&mut g, wv);
        g.value(loss).item()
    };
    for i in 0..n {
        let orig = params.get(w).data()[i];
        params.get_mut(w).data_mut()[i] = orig + h;
        let up = eval(&params);
        params.get_mut(w).data_mut()[i] = orig - h;
        let down = eval(&params);
        params.get_mut(w).data_mut()[i] = orig;
        let numeric = (up - down) / (2.0 * h);
        let a = analytic.data()[i];
        let denom = 1.0f32.max(a.abs()).max(numeric.abs());
        assert!(
            (a - numeric).abs() / denom < 2e-2,
            "coordinate {i}: analytic {a} vs numeric {numeric}"
        );
    }
}

#[test]
fn grad_matmul_left() {
    let b = Tensor::from_vec(&[3, 2], vec![0.5, -1.0, 2.0, 0.25, -0.75, 1.5]);
    check(&[2, 3], move |g, w| {
        let bv = g.input(b.clone());
        let y = g.matmul(w, bv);
        g.sum_all(y)
    });
}

#[test]
fn grad_matmul_right() {
    let a = Tensor::from_vec(&[2, 3], vec![0.5, -1.0, 2.0, 0.25, -0.75, 1.5]);
    check(&[3, 2], move |g, w| {
        let av = g.input(a.clone());
        let y = g.matmul(av, w);
        let t = g.tanh(y);
        g.sum_all(t)
    });
}

#[test]
fn grad_matmul_nt() {
    let b = Tensor::from_vec(&[4, 3], (0..12).map(|i| (i as f32 - 6.0) * 0.2).collect());
    check(&[2, 3], move |g, w| {
        let bv = g.input(b.clone());
        let y = g.matmul_nt(w, bv);
        let t = g.tanh(y);
        g.sum_all(t)
    });
    let a = Tensor::from_vec(&[2, 3], vec![0.5, -1.0, 2.0, 0.25, -0.75, 1.5]);
    check(&[4, 3], move |g, w| {
        let av = g.input(a.clone());
        let y = g.matmul_nt(av, w);
        let t = g.sigmoid(y);
        g.sum_all(t)
    });
}

#[test]
fn grad_add_sub_mul_scale() {
    check(&[2, 2], |g, w| {
        let c = g.input(Tensor::from_vec(&[2, 2], vec![1.0, -2.0, 0.5, 3.0]));
        let a = g.add(w, c);
        let s = g.sub(a, w);
        let m = g.mul(s, w);
        let sc = g.scale(m, 0.7);
        g.sum_all(sc)
    });
}

#[test]
fn grad_mul_self() {
    // w appears on both sides of Mul — gradient accumulation must double.
    check(&[3], |g, w| {
        let sq = g.mul(w, w);
        g.sum_all(sq)
    });
}

#[test]
fn grad_add_bias() {
    check(&[3], |g, w| {
        let x = g.input(Tensor::from_vec(&[2, 3], vec![0.1, 0.2, 0.3, -0.1, -0.2, -0.3]));
        let y = g.add_bias(x, w);
        let t = g.tanh(y);
        g.sum_all(t)
    });
}

#[test]
fn grad_mul_row_broadcast() {
    check(&[1, 3], |g, w| {
        let x = g.input(Tensor::from_vec(&[2, 3], vec![0.6, 0.2, -0.3, -0.4, 0.5, 0.9]));
        let y = g.mul_row_broadcast(x, w);
        g.sum_all(y)
    });
    // Also check gradient through the matrix operand.
    check(&[2, 3], |g, w| {
        let v = g.input(Tensor::from_vec(&[1, 3], vec![0.5, -1.5, 2.0]));
        let y = g.mul_row_broadcast(w, v);
        let t = g.sigmoid(y);
        g.sum_all(t)
    });
}

#[test]
fn grad_mul_col_broadcast() {
    check(&[3, 1], |g, w| {
        let x = g.input(Tensor::from_vec(&[3, 2], vec![0.5, -0.2, 0.8, 0.1, -0.6, 0.4]));
        let y = g.mul_col_broadcast(x, w);
        let t = g.tanh(y);
        g.sum_all(t)
    });
    check(&[3, 2], |g, w| {
        let s = g.input(Tensor::from_vec(&[3, 1], vec![0.7, -1.2, 0.4]));
        let y = g.mul_col_broadcast(w, s);
        g.sum_all(y)
    });
}

#[test]
fn grad_activations() {
    check(&[2, 3], |g, w| {
        let t = g.tanh(w);
        let s = g.sigmoid(t);
        let r = g.relu(s);
        g.sum_all(r)
    });
}

#[test]
fn grad_softmax_rows() {
    check(&[2, 4], |g, w| {
        let s = g.softmax_rows(w, 1.0);
        // Weighted sum so the gradient is non-trivial.
        let weights = g.input(Tensor::from_vec(&[2, 4], vec![1., 2., 3., 4., -1., 0., 1., 2.]));
        let m = g.mul(s, weights);
        g.sum_all(m)
    });
}

#[test]
fn grad_softmax_with_temperature() {
    check(&[1, 4], |g, w| {
        let s = g.softmax_rows(w, 2.0);
        let weights = g.input(Tensor::from_vec(&[1, 4], vec![3., 1., -2., 0.5]));
        let m = g.mul(s, weights);
        g.sum_all(m)
    });
}

#[test]
fn grad_softmax_matmul_nt_fused() {
    // Left operand (the queries).
    let b = Tensor::from_vec(&[4, 3], (0..12).map(|i| (i as f32 - 6.0) * 0.2).collect());
    let weights = Tensor::from_vec(&[2, 4], vec![1., 2., 3., 4., -1., 0., 1., 2.]);
    let w2 = weights.clone();
    check(&[2, 3], move |g, w| {
        let bv = g.input(b.clone());
        let att = g.softmax_matmul_nt(w, bv, 0.7, 1.3);
        // Weighted sum so the gradient is non-trivial (softmax rows sum
        // to 1, so a plain sum has zero gradient).
        let wv = g.input(w2.clone());
        let m = g.mul(att, wv);
        g.sum_all(m)
    });
    // Right operand (the keys / phrase matrix).
    let a = Tensor::from_vec(&[2, 3], vec![0.5, -1.0, 2.0, 0.25, -0.75, 1.5]);
    check(&[4, 3], move |g, w| {
        let av = g.input(a.clone());
        let att = g.softmax_matmul_nt(av, w, 0.7, 1.3);
        let wv = g.input(weights.clone());
        let m = g.mul(att, wv);
        g.sum_all(m)
    });
}

/// The fused attention op is bit-identical to the unfused
/// `matmul_nt` → `scale` → `softmax_rows` chain — forward value AND both
/// gradients — including with a non-trivial scale and temperature.
#[test]
fn fused_softmax_matmul_matches_unfused_bit_for_bit() {
    let mut rng = StdRng::seed_from_u64(7);
    let (m, n, d) = (9, 11, 6);
    let mut params = Params::new();
    let a = params.add(
        "a",
        Tensor::from_vec(&[m, d], (0..m * d).map(|_| rng.gen_range(-2.0..2.0)).collect()),
    );
    let b = params.add(
        "b",
        Tensor::from_vec(&[n, d], (0..n * d).map(|_| rng.gen_range(-2.0..2.0)).collect()),
    );
    let weights =
        Tensor::from_vec(&[m, n], (0..m * n).map(|_| rng.gen_range(-1.0..1.0)).collect());
    let bits = |t: &Tensor| -> Vec<u32> { t.data().iter().map(|v| v.to_bits()).collect() };
    for &(scale, temperature) in &[(1.0f32, 1.0f32), (0.25, 1.0), (0.25, 2.0), (1.0, 0.5)] {
        let run = |fused: bool| {
            let mut g = Graph::new(&params, false, 0);
            let av = g.param(a);
            let bv = g.param(b);
            let att = if fused {
                g.softmax_matmul_nt(av, bv, scale, temperature)
            } else {
                let mut s = g.matmul_nt(av, bv);
                if scale != 1.0 {
                    s = g.scale(s, scale);
                }
                g.softmax_rows(s, temperature)
            };
            let forward = bits(g.value(att));
            let wv = g.input(weights.clone());
            let weighted = g.mul(att, wv);
            let loss = g.sum_all(weighted);
            let grads = g.backward(loss);
            (forward, bits(grads.get(a).unwrap()), bits(grads.get(b).unwrap()))
        };
        assert_eq!(
            run(true),
            run(false),
            "fused op diverged at scale={scale} temperature={temperature}"
        );
    }
}

#[test]
fn grad_log_softmax_rows() {
    check(&[2, 3], |g, w| {
        let s = g.log_softmax_rows(w, 1.5);
        let weights = g.input(Tensor::from_vec(&[2, 3], vec![0.2, 0.3, 0.5, 0.1, 0.8, 0.1]));
        let m = g.mul(s, weights);
        g.sum_all(m)
    });
}

#[test]
fn grad_concat_rows_cols() {
    check(&[2, 2], |g, w| {
        let other = g.input(Tensor::from_vec(&[1, 2], vec![0.4, -0.6]));
        let cat = g.concat_rows(&[w, other]);
        let t = g.tanh(cat);
        let other2 = g.input(Tensor::from_vec(&[3, 1], vec![1.0, 2.0, 3.0]));
        let cc = g.concat_cols(&[t, other2]);
        g.sum_all(cc)
    });
}

#[test]
fn grad_gather_rows() {
    check(&[4, 2], |g, w| {
        let gathered = g.gather_rows(w, &[1, 1, 3, 0]);
        let t = g.tanh(gathered);
        g.sum_all(t)
    });
}

#[test]
fn grad_slice_rows() {
    check(&[4, 2], |g, w| {
        let s = g.slice_rows(w, 1, 3);
        let t = g.sigmoid(s);
        g.sum_all(t)
    });
}

#[test]
fn grad_mean_rows_and_all() {
    check(&[3, 2], |g, w| {
        let m = g.mean_rows(w);
        let t = g.tanh(m);
        g.mean_all(t)
    });
}

#[test]
fn grad_cross_entropy() {
    check(&[3, 4], |g, w| g.cross_entropy_rows(w, &[0, 3, 1]));
}

#[test]
fn grad_kl_div() {
    let p = Tensor::from_vec(&[2, 3], vec![0.2, 0.3, 0.5, 0.6, 0.3, 0.1]);
    check(&[2, 3], move |g, w| {
        let lq = g.log_softmax_rows(w, 2.0);
        g.kl_div(lq, p.clone())
    });
}

#[test]
fn grad_l1_to_const() {
    // Offsets chosen so no coordinate sits exactly on the |x| kink.
    let target = Tensor::from_vec(&[2, 2], vec![5.0, 5.0, -5.0, -5.0]);
    check(&[2, 2], move |g, w| g.l1_to_const(w, target.clone()));
}

#[test]
fn grad_rms_norm() {
    let gain = Tensor::from_vec(&[3], vec![1.0, 0.5, 2.0]);
    check(&[2, 3], move |g, w| {
        let gn = g.input(gain.clone());
        let y = g.rms_norm_rows(w, gn);
        let weights = g.input(Tensor::from_vec(&[2, 3], vec![1., -1., 2., 0.5, 0.3, -0.7]));
        let m = g.mul(y, weights);
        g.sum_all(m)
    });
}

#[test]
fn grad_rms_norm_gain() {
    let x = Tensor::from_vec(&[2, 3], vec![0.3, -0.8, 1.2, 0.9, 0.1, -0.4]);
    check(&[3], move |g, w| {
        let xv = g.input(x.clone());
        let y = g.rms_norm_rows(xv, w);
        g.sum_all(y)
    });
}

#[test]
fn grad_composite_mlp() {
    // A two-layer MLP with softmax head — the shape of every model in wb-nn.
    let x = Tensor::from_vec(&[2, 3], vec![0.1, 0.5, -0.3, 0.7, -0.2, 0.4]);
    check(&[3, 3], move |g, w| {
        let xv = g.input(x.clone());
        let h = g.matmul(xv, w);
        let h = g.tanh(h);
        let h2 = g.matmul(h, w);
        g.cross_entropy_rows(h2, &[2, 0])
    });
}

#[test]
fn dropout_is_identity_in_eval_mode() {
    let params = Params::new();
    let mut g = Graph::new(&params, false, 7);
    let x = g.input(Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]));
    let y = g.dropout(x, 0.5);
    assert_eq!(g.value(y).data(), &[1., 2., 3., 4.]);
}

#[test]
fn dropout_scales_kept_units_in_train_mode() {
    let params = Params::new();
    let mut g = Graph::new(&params, true, 7);
    let x = g.input(Tensor::full(&[100], 1.0));
    let y = g.dropout(x, 0.5);
    let vals = g.value(y).data();
    assert!(vals.iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    let kept = vals.iter().filter(|&&v| v != 0.0).count();
    assert!(kept > 20 && kept < 80, "kept {kept} of 100");
}

#[test]
fn gradients_merge_and_clip() {
    let mut params = Params::new();
    let w = params.add("w", Tensor::from_vec(&[2], vec![1.0, 1.0]));
    let grads = |k: f32| {
        let mut g = Graph::new(&params, false, 0);
        let wv = g.param(w);
        let s = g.scale(wv, k);
        let loss = g.sum_all(s);
        g.backward(loss)
    };
    let mut a = grads(3.0);
    let b = grads(4.0);
    a.merge(b);
    let g = a.get(w).unwrap();
    assert_eq!(g.data(), &[7.0, 7.0]);
    let norm = a.global_norm();
    a.clip_global_norm(1.0);
    assert!((a.global_norm() - 1.0).abs() < 1e-4);
    assert!(norm > 1.0);
}
