//! `tensor.matmul.flops` must equal the multiply-accumulates the kernels
//! actually execute. The old nn/tn loops skipped `av == 0.0` terms, so the
//! counter reported nominal `2·m·k·n` while the executed work was
//! data-dependent — letting `wb bench` hard-counter gating drift silently.
//! After the kernel rewrite every term runs, and the kernels count their own
//! loop trips into `tensor.matmul.kernel.macs`; the two must agree exactly.
//!
//! The wb-obs registry is process-global, so this file holds a single
//! `#[test]` — its counter deltas must not race with other tests.

use wb_obs::metrics::snapshot;
use wb_tensor::Tensor;

fn counter(name: &str) -> u64 {
    snapshot().counters.get(name).copied().unwrap_or(0)
}

#[test]
fn flops_counter_equals_executed_macs() {
    // Zero-laced inputs: under the old zero-skip, executed MACs would fall
    // short of nominal on exactly these (≈1/17 of fill values are zero, plus
    // a forced zero row). Mixed shapes cover the packed path (large, beyond
    // PACK_MIN_MACS), the direct path (small) and all four variants.
    let shapes: &[(usize, usize, usize)] = &[(3, 5, 4), (40, 64, 48), (150, 130, 140)];
    let mut nominal_macs = 0u64;
    let (flops0, macs0) =
        (counter("tensor.matmul.flops"), counter("tensor.matmul.kernel.macs"));
    for &(m, k, n) in shapes {
        for (ta, tb) in [(false, false), (false, true), (true, false), (true, true)] {
            let a_shape = if ta { [k, m] } else { [m, k] };
            let b_shape = if tb { [n, k] } else { [k, n] };
            let mut av: Vec<f32> =
                (0..m * k).map(|i| ((i % 17) as f32 - 8.0) * 0.125).collect();
            av[..a_shape[1]].fill(0.0); // a zero row the old skip would elide
            let bv: Vec<f32> = (0..k * n).map(|i| ((i % 13) as f32 - 6.0) * 0.25).collect();
            let a = Tensor::from_vec(&a_shape, av);
            let b = Tensor::from_vec(&b_shape, bv);
            std::hint::black_box(a.matmul(&b, ta, tb));
            nominal_macs += (m * k * n) as u64;
        }
    }
    let flops = counter("tensor.matmul.flops") - flops0;
    let macs = counter("tensor.matmul.kernel.macs") - macs0;
    assert_eq!(
        macs, nominal_macs,
        "kernels executed a different MAC count than the shapes imply"
    );
    assert_eq!(flops, 2 * macs, "tensor.matmul.flops must be exactly 2 × executed MACs");
}
