//! Property-based tests of the tensor algebra and optimizer invariants.

use proptest::prelude::*;
use wb_tensor::{Gradients, Graph, Params, Tensor};

/// Deterministic pseudo-random fill (cheap LCG) for the large tensors the
/// parallel-vs-serial properties need; proptest drives only the seed.
fn lcg_fill(seed: u64, n: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
        })
        .collect()
}

/// Laces a buffer with the values the packed kernels must propagate exactly
/// like the serial reference: a zero row, a zero column, NaN, ±Inf and -0.0
/// at seed-dependent positions.
fn lace_nonfinite(data: &mut [f32], rows: usize, cols: usize, seed: u64) {
    let s = seed as usize;
    let zr = s % rows;
    data[zr * cols..(zr + 1) * cols].fill(0.0);
    let zc = (s / 7) % cols;
    for r in 0..rows {
        data[r * cols + zc] = 0.0;
    }
    let n = rows * cols;
    data[(s.wrapping_mul(31)) % n] = f32::NAN;
    data[(s.wrapping_mul(53)) % n] = f32::INFINITY;
    data[(s.wrapping_mul(71)) % n] = f32::NEG_INFINITY;
    data[(s.wrapping_mul(97)) % n] = -0.0;
}

/// Bit patterns with NaN payloads canonicalized: NaN-ness, ±Inf, -0.0 and
/// all finite values compare exactly; which payload survives a NaN + NaN
/// sum is codegen-chosen (LLVM commutes `fadd`) and not part of the
/// kernels' bit-exactness contract.
fn bits(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| if v.is_nan() { f32::NAN.to_bits() } else { v.to_bits() }).collect()
}

fn tensor_2x3() -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, 6).prop_map(|v| Tensor::from_vec(&[2, 3], v))
}

proptest! {
    /// Transpose is an involution.
    #[test]
    fn transpose_involution(t in tensor_2x3()) {
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    /// `(A·B)ᵀ = Bᵀ·Aᵀ`.
    #[test]
    fn matmul_transpose_identity(
        a in tensor_2x3(),
        b in proptest::collection::vec(-10.0f32..10.0, 12)
            .prop_map(|v| Tensor::from_vec(&[3, 4], v)),
    ) {
        let left = a.matmul(&b, false, false).transpose();
        let right = b.transpose().matmul(&a.transpose(), false, false);
        for (l, r) in left.data().iter().zip(right.data()) {
            prop_assert!((l - r).abs() < 1e-3);
        }
    }

    /// Scaling commutes with addition: k(A+B) = kA + kB.
    #[test]
    fn scale_distributes(a in tensor_2x3(), b in tensor_2x3(), k in -3.0f32..3.0) {
        let left = a.add(&b).scale(k);
        let right = a.scale(k).add(&b.scale(k));
        for (l, r) in left.data().iter().zip(right.data()) {
            prop_assert!((l - r).abs() < 1e-3);
        }
    }

    /// Softmax is invariant to per-row additive shifts.
    #[test]
    fn softmax_shift_invariance(t in tensor_2x3(), shift in -20.0f32..20.0) {
        let shifted = t.map(|x| x + shift);
        let a = t.softmax_rows(1.0);
        let b = shifted.softmax_rows(1.0);
        for (x, y) in a.data().iter().zip(b.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Row gather of all rows is the identity.
    #[test]
    fn gather_identity(t in tensor_2x3()) {
        prop_assert_eq!(t.gather_rows(&[0, 1]), t);
    }

    /// Concat of row slices reconstructs the tensor.
    #[test]
    fn slice_concat_identity(t in tensor_2x3()) {
        let top = t.slice_rows(0, 1);
        let bottom = t.slice_rows(1, 2);
        prop_assert_eq!(Tensor::concat_rows(&[&top, &bottom]), t);
    }

    /// Gradient clipping never increases the global norm and respects the
    /// bound.
    #[test]
    fn clipping_bounds_norm(vals in proptest::collection::vec(-100.0f32..100.0, 6), max in 0.1f32..10.0) {
        let mut params = Params::new();
        let w = params.add("w", Tensor::zeros(&[2, 3]));
        let grads = {
            let mut g = Graph::new(&params, false, 0);
            let wv = g.param(w);
            let c = g.input(Tensor::from_vec(&[2, 3], vals));
            let m = g.mul(wv, c); // gradient of w is c
            let loss = g.sum_all(m);
            g.backward(loss)
        };
        let mut grads: Gradients = grads;
        grads.clip_global_norm(max);
        prop_assert!(grads.global_norm() <= max + 1e-3);
    }

    /// Backward through a linear chain scales gradients linearly: the
    /// gradient of `sum(k·w)` is exactly `k` everywhere.
    #[test]
    fn linear_chain_gradient(k in -5.0f32..5.0) {
        let mut params = Params::new();
        let w = params.add("w", Tensor::full(&[3], 1.0));
        let grads = {
            let mut g = Graph::new(&params, false, 0);
            let wv = g.param(w);
            let s = g.scale(wv, k);
            let loss = g.sum_all(s);
            g.backward(loss)
        };
        let gw = grads.get(w).unwrap();
        for &v in gw.data() {
            prop_assert!((v - k).abs() < 1e-5);
        }
    }

    /// The parallel matmul path agrees bit-for-bit with the serial
    /// reference, for every transpose variant, on shapes that cross the
    /// parallelism thresholds.
    #[test]
    fn parallel_matmul_matches_serial(
        seed in 0u64..1_000_000,
        extra_m in 0usize..24,
        extra_k in 0usize..12,
        extra_n in 0usize..12,
    ) {
        let m = wb_tensor::PAR_MIN_ROWS + extra_m;
        let k = 64 + extra_k;
        let n = 64 + extra_n;
        for (ta, tb) in [(false, false), (false, true), (true, false), (true, true)] {
            let a_shape = if ta { [k, m] } else { [m, k] };
            let b_shape = if tb { [n, k] } else { [k, n] };
            let a = Tensor::from_vec(&a_shape, lcg_fill(seed, m * k));
            let b = Tensor::from_vec(&b_shape, lcg_fill(seed ^ 0x9e37, k * n));
            let par = a.matmul(&b, ta, tb);
            let ser = a.matmul_serial(&b, ta, tb);
            prop_assert_eq!(par.shape(), ser.shape());
            prop_assert!(
                par.data() == ser.data(),
                "parallel and serial matmul diverged for ta={} tb={}", ta, tb
            );
        }
    }

    /// The packed-kernel path propagates NaN/±Inf/-0.0 and zero
    /// rows/columns *bit-for-bit* like the direct serial reference, for
    /// every transpose variant. This is the regression property for the
    /// zero-skip bug: the old nn/tn loops skipped `av == 0.0` terms and
    /// turned `0 × NaN` into `0`, so the four variants disagreed on exactly
    /// the inputs the NaN-rollback guard needs to observe.
    #[test]
    fn nonfinite_matmul_matches_serial_all_variants(
        seed in 0u64..1_000_000,
        extra_m in 0usize..16,
        extra_k in 0usize..16,
        extra_n in 0usize..16,
    ) {
        let m = wb_tensor::PAR_MIN_ROWS + extra_m;
        let k = 64 + extra_k;
        let n = 64 + extra_n;
        for (ta, tb) in [(false, false), (false, true), (true, false), (true, true)] {
            let a_shape = if ta { [k, m] } else { [m, k] };
            let b_shape = if tb { [n, k] } else { [k, n] };
            let mut av = lcg_fill(seed, m * k);
            let mut bv = lcg_fill(seed ^ 0x9e37, k * n);
            lace_nonfinite(&mut av, a_shape[0], a_shape[1], seed);
            lace_nonfinite(&mut bv, b_shape[0], b_shape[1], seed.wrapping_add(1));
            let a = Tensor::from_vec(&a_shape, av);
            let b = Tensor::from_vec(&b_shape, bv);
            let par = a.matmul(&b, ta, tb);
            let ser = a.matmul_serial(&b, ta, tb);
            prop_assert_eq!(par.shape(), ser.shape());
            prop_assert!(
                bits(&par) == bits(&ser),
                "non-finite propagation diverged for ta={} tb={}", ta, tb
            );
        }
    }

    /// `pack_b` is a pure relayout: every element of B (straight or
    /// transposed) lands at exactly `packed_index(k, j)`, bit-preserved —
    /// and both orientations of the same logical matrix pack identically.
    #[test]
    fn pack_b_round_trip(
        seed in 0u64..1_000_000,
        ak in 1usize..2 * wb_tensor::kernels::KC + 4,
        bn in 1usize..2 * wb_tensor::kernels::NC + 6,
    ) {
        use wb_tensor::kernels::{pack_b, packed_index};
        let mut b = lcg_fill(seed, ak * bn);
        if ak > 1 && bn > 1 {
            lace_nonfinite(&mut b, ak, bn, seed);
        }
        // The same matrix stored transposed: bt[[j, k]] = b[[k, j]].
        let mut bt = vec![0.0f32; ak * bn];
        for k in 0..ak {
            for j in 0..bn {
                bt[j * ak + k] = b[k * bn + j];
            }
        }
        let mut straight = Vec::new();
        let mut transposed = Vec::new();
        pack_b(&b, false, ak, bn, &mut straight);
        pack_b(&bt, true, ak, bn, &mut transposed);
        prop_assert_eq!(straight.len(), ak * bn);
        prop_assert_eq!(transposed.len(), ak * bn);
        for k in 0..ak {
            for j in 0..bn {
                let idx = packed_index(k, j, ak, bn);
                prop_assert!(
                    straight[idx].to_bits() == b[k * bn + j].to_bits(),
                    "straight pack misplaced ({}, {})", k, j
                );
                prop_assert!(
                    transposed[idx].to_bits() == b[k * bn + j].to_bits(),
                    "transposed pack misplaced ({}, {})", k, j
                );
            }
        }
    }

    /// Parallel row-wise softmax agrees bit-for-bit with a row-at-a-time
    /// serial evaluation on shapes that cross the parallelism thresholds.
    #[test]
    fn parallel_softmax_matches_serial(
        seed in 0u64..1_000_000,
        extra_rows in 0usize..32,
        temperature in 0.25f32..4.0,
    ) {
        let rows = wb_tensor::PAR_MIN_ROWS + extra_rows;
        let cols = 1 + wb_tensor::PAR_MIN_ELEMS / wb_tensor::PAR_MIN_ROWS;
        let t = Tensor::from_vec(&[rows, cols], lcg_fill(seed, rows * cols));
        let par = t.softmax_rows(temperature);
        // Serial reference: softmax each row independently, one at a time.
        let mut ser = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let mut row = t.data()[r * cols..(r + 1) * cols].to_vec();
            wb_tensor::softmax_slice(&mut row, temperature);
            ser.extend_from_slice(&row);
        }
        prop_assert!(par.data() == ser.as_slice(), "parallel softmax diverged");
    }

    /// Cross-entropy is minimal when the logits put all mass on the target.
    #[test]
    fn cross_entropy_prefers_target(target in 0usize..3) {
        let params = Params::new();
        let eval = |boost: usize| {
            let mut g = Graph::new(&params, false, 0);
            let mut logits = vec![0.0f32; 3];
            logits[boost] = 8.0;
            let l = g.input(Tensor::from_vec(&[1, 3], logits));
            let loss = g.cross_entropy_rows(l, &[target]);
            g.value(loss).item()
        };
        let right = eval(target);
        for wrong in 0..3 {
            if wrong != target {
                prop_assert!(right < eval(wrong));
            }
        }
    }
}

/// GraphStats faithfully counts ops and FLOPs for a known tape.
#[test]
fn graph_stats_counts() {
    let mut params = Params::new();
    let w = params.add("w", Tensor::zeros(&[4, 8]));
    let mut g = Graph::new(&params, false, 0);
    let x = g.input(Tensor::zeros(&[2, 4]));
    let wv = g.param(w);
    let y = g.matmul(x, wv); // [2,8], inner 4 → 64 MACs
    let t = g.tanh(y);
    let _ = g.sum_all(t);
    let stats = g.stats();
    assert_eq!(stats.nodes, 5);
    assert_eq!(stats.per_op["matmul"], 1);
    assert_eq!(stats.per_op["tanh"], 1);
    assert_eq!(stats.matmul_flops, 2 * 8 * 4);
    assert!(stats.elements > 2 * 4 + 4 * 8 + 2 * 8 * 2);
}
