//! Packed, cache-blocked, SIMD-friendly matmul kernels.
//!
//! Every transpose variant of [`crate::Tensor::matmul`] funnels into the
//! same packed inner loop: the operands are first brought into plain
//! row-major layout — a transposed `A` is transposed once into an `[m, k]`
//! scratch buffer, and `B` (transposed or not) is packed once per call into
//! contiguous [`KC`]`×`[`NC`] panels — and then a register-blocked
//! [`MR`]`×`[`NR`] microkernel sweeps cache-sized tiles. The microkernel's
//! inner loop is a contiguous `f32` multiply-add over [`NR`] output
//! columns, a shape LLVM autovectorizes on any `-C target-cpu` without
//! `core::arch` intrinsics.
//!
//! # Bit-exactness contract
//!
//! Each output element accumulates its `k` terms **in ascending order on a
//! single accumulator chain** — across panel (`KC`) boundaries, across
//! tile shapes, and across any row partitioning of the output. The packed
//! path, the [`direct_rows`] fallback for small products, and the four
//! transpose variants therefore all produce bit-identical results for
//! every non-NaN output (finite values, ±Inf and -0.0 exact), and agree
//! exactly on *which* outputs are NaN: no term is ever skipped, so
//! `0 × NaN`/`0 × ∞` poison the output exactly as IEEE 754 dictates — see
//! the zero-skip regression tests in `tensor.rs`. The one thing left
//! unspecified is the *payload* of a NaN produced when two NaNs meet in an
//! add: IEEE 754 lets either operand's payload win and LLVM freely
//! commutes `fadd` operands, so payload selection differs between
//! compilations of the same chain. Tests compare NaN-canonicalized bits.
//!
//! # Counters
//!
//! * `tensor.matmul.pack.calls` / `.bytes` — packed-path calls and bytes
//!   staged into pack buffers (deterministic functions of the shape).
//! * `tensor.matmul.kernel.macs` — multiply-accumulates actually executed
//!   by the kernels, summed from loop trip counts. With the zero-skip bug
//!   removed this equals the nominal `m·k·n` of `tensor.matmul.flops / 2`
//!   (asserted by `tests/flops_accounting.rs`).
//! * `tensor.matmul.kernel.tiles` — microkernel invocations. Tile counts
//!   depend on how rows were chunked across threads, so this one is
//!   observability-only (never a hard bench metric).
//! * `tensor.matmul.kernel.direct` — calls that took the small-product
//!   direct path instead of packing.

use crate::tensor::scratch;

/// Microkernel register-block height (output rows per tile).
pub const MR: usize = 4;
/// Microkernel register-block width (output columns per tile); the inner
/// loop is a contiguous `f32` fused multiply-add over `NR` lanes.
pub const NR: usize = 16;
/// Row cache-block: rows of `A` kept hot in L1/L2 per panel sweep.
pub const MC: usize = 64;
/// Depth cache-block: `k` extent of one packed `B` panel.
pub const KC: usize = 128;
/// Column cache-block: `n` extent of one packed `B` panel (`KC·NC` floats
/// ≈ 64 KiB, sized so a panel stays L2-resident across an `MC` row sweep).
pub const NC: usize = 128;

/// Minimum multiply-accumulates (`m·k·n`) before a call pays for packing;
/// below this the direct per-variant loops win (e.g. the `[1, k] @ [k, n]ᵀ`
/// products of single-step attention decoding).
pub const PACK_MIN_MACS: usize = 1 << 13;

/// Packs `b` (logical `[k, n]`, stored `[k, n]` or transposed `[n, k]`)
/// into contiguous panels: for each `NC`-column block, each `KC`-depth
/// block is stored as a row-major `kc_len × nc_len` panel. The panel
/// holding `(k0, j0)` starts at `jc·k + pc·nc_len` where `jc`/`pc` are the
/// block origins — see [`packed_index`] for the element-level inverse.
pub fn pack_b(b: &[f32], trans_b: bool, ak: usize, bn: usize, buf: &mut Vec<f32>) {
    buf.clear();
    buf.resize(ak * bn, 0.0);
    let mut jc = 0;
    while jc < bn {
        let nc_len = NC.min(bn - jc);
        let mut pc = 0;
        while pc < ak {
            let kc_len = KC.min(ak - pc);
            let base = jc * ak + pc * nc_len;
            if trans_b {
                // b is [n, k] row-major: columns of the logical B are
                // contiguous source rows, so read j-major for locality.
                for j in 0..nc_len {
                    let src = &b[(jc + j) * ak + pc..(jc + j) * ak + pc + kc_len];
                    for (p, &v) in src.iter().enumerate() {
                        buf[base + p * nc_len + j] = v;
                    }
                }
            } else {
                for p in 0..kc_len {
                    let src = &b[(pc + p) * bn + jc..(pc + p) * bn + jc + nc_len];
                    buf[base + p * nc_len..base + (p + 1) * nc_len].copy_from_slice(src);
                }
            }
            pc += KC;
        }
        jc += NC;
    }
}

/// Index of logical element `(k, j)` inside a [`pack_b`] buffer — the
/// round-trip inverse used by the packing property tests.
pub fn packed_index(k: usize, j: usize, ak: usize, bn: usize) -> usize {
    let jc = j / NC * NC;
    let pc = k / KC * KC;
    let nc_len = NC.min(bn - jc);
    jc * ak + pc * nc_len + (k - pc) * nc_len + (j - jc)
}

/// Transposes `a` (stored `[k, m]` row-major) into a row-major `[m, k]`
/// buffer, tile-blocked so both sides stream through cache.
pub fn pack_a_transposed(a: &[f32], am: usize, ak: usize, buf: &mut Vec<f32>) {
    buf.clear();
    buf.resize(am * ak, 0.0);
    const TB: usize = 32;
    let mut i0 = 0;
    while i0 < am {
        let mut k0 = 0;
        while k0 < ak {
            for i in i0..(i0 + TB).min(am) {
                for k in k0..(k0 + TB).min(ak) {
                    buf[i * ak + k] = a[k * am + i];
                }
            }
            k0 += TB;
        }
        i0 += TB;
    }
}

/// Computes output rows `r0 .. r0 + chunk.len()/bn` of `A @ B` into
/// `chunk` (zeroed on entry) from a row-major `[m, k]` operand `a_eff` and
/// a [`pack_b`] panel buffer `bp`. Row partitioning is free: every row
/// sweeps the same global `jc`/`pc` blocks, so results do not depend on
/// which chunk a row lands in.
pub fn packed_rows(
    a_eff: &[f32],
    bp: &[f32],
    ak: usize,
    bn: usize,
    r0: usize,
    chunk: &mut [f32],
) {
    let rows = chunk.len() / bn;
    let mut tiles = 0u64;
    let mut jc = 0;
    while jc < bn {
        let nc_len = NC.min(bn - jc);
        let mut pc = 0;
        while pc < ak {
            let kc_len = KC.min(ak - pc);
            let base = jc * ak + pc * nc_len;
            let panel = &bp[base..base + kc_len * nc_len];
            let mut ic = 0;
            while ic < rows {
                let mc_len = MC.min(rows - ic);
                let mut ir = 0;
                while ir < mc_len {
                    let mr_len = MR.min(mc_len - ir);
                    let row0 = ic + ir;
                    micro(
                        &a_eff[(r0 + row0) * ak + pc..],
                        ak,
                        panel,
                        kc_len,
                        nc_len,
                        &mut chunk[row0 * bn + jc..],
                        bn,
                        mr_len,
                    );
                    tiles += 1;
                    ir += MR;
                }
                ic += MC;
            }
            pc += KC;
        }
        jc += NC;
    }
    wb_obs::counter!("tensor.matmul.kernel.tiles", tiles);
    wb_obs::counter!("tensor.matmul.kernel.macs", (rows * ak * bn) as u64);
}

/// The register-blocked microkernel: accumulates a `mr_len × nc_len` tile
/// of `C += A · panel` over `kc_len` depth steps. `a` points at the first
/// row's `k`-slice (rows `a_stride` apart), `c` at the tile's first output
/// row (rows `c_stride` apart). The full-tile fast path keeps an
/// `MR × NR` accumulator block in registers; the inner `j` loop is
/// contiguous and autovectorizes.
#[allow(clippy::too_many_arguments)]
#[inline]
fn micro(
    a: &[f32],
    a_stride: usize,
    panel: &[f32],
    kc_len: usize,
    nc_len: usize,
    c: &mut [f32],
    c_stride: usize,
    mr_len: usize,
) {
    let mut j0 = 0;
    while j0 < nc_len {
        let nr_len = NR.min(nc_len - j0);
        if mr_len == MR && nr_len == NR {
            let mut acc = [[0.0f32; NR]; MR];
            for (r, row) in acc.iter_mut().enumerate() {
                row.copy_from_slice(&c[r * c_stride + j0..r * c_stride + j0 + NR]);
            }
            for p in 0..kc_len {
                let brow = &panel[p * nc_len + j0..p * nc_len + j0 + NR];
                for (r, row) in acc.iter_mut().enumerate() {
                    let av = a[r * a_stride + p];
                    for (o, &bv) in row.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
            for (r, row) in acc.iter().enumerate() {
                c[r * c_stride + j0..r * c_stride + j0 + NR].copy_from_slice(row);
            }
        } else {
            // Edge tile: same ascending-k single-chain accumulation, just
            // without the fixed-size register block.
            for r in 0..mr_len {
                for p in 0..kc_len {
                    let av = a[r * a_stride + p];
                    let brow = &panel[p * nc_len + j0..p * nc_len + j0 + nr_len];
                    let crow = &mut c[r * c_stride + j0..r * c_stride + j0 + nr_len];
                    for (o, &bv) in crow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
        j0 += NR;
    }
}

/// Runs the packed path for one whole matmul call: packs the operands
/// once, then sweeps [`packed_rows`] either serially or split by output
/// row across the rayon pool. `out` must be zeroed, `parallel` decided by
/// the caller (it owns the dispatch counters).
#[allow(clippy::too_many_arguments)]
pub fn matmul_packed(
    a: &[f32],
    b: &[f32],
    trans_a: bool,
    trans_b: bool,
    am: usize,
    ak: usize,
    bn: usize,
    out: &mut [f32],
    parallel: bool,
    rows_per: usize,
) {
    use rayon::prelude::*;
    let mut bp = scratch::take();
    pack_b(b, trans_b, ak, bn, &mut bp);
    let mut packed_bytes = bp.len() * std::mem::size_of::<f32>();
    let mut ap = None;
    if trans_a {
        let mut buf = scratch::take();
        pack_a_transposed(a, am, ak, &mut buf);
        packed_bytes += buf.len() * std::mem::size_of::<f32>();
        ap = Some(buf);
    }
    wb_obs::counter!("tensor.matmul.pack.calls");
    wb_obs::counter!("tensor.matmul.pack.bytes", packed_bytes as u64);
    let a_eff: &[f32] = ap.as_deref().unwrap_or(a);
    if parallel {
        out.par_chunks_mut(rows_per * bn).enumerate().for_each(|(ci, chunk)| {
            packed_rows(a_eff, &bp, ak, bn, ci * rows_per, chunk);
        });
    } else {
        packed_rows(a_eff, &bp, ak, bn, 0, out);
    }
    scratch::put(bp);
    if let Some(buf) = ap {
        scratch::put(buf);
    }
}

/// Computes output rows `r0 .. r0 + chunk.len()/bn` of the product into
/// `chunk` (which must be zeroed) directly from the unpacked operands —
/// the reference path for small products and [`crate::Tensor::matmul_serial`].
/// For every transpose combination the per-element accumulation order is
/// `k` ascending on a single chain and **no term is ever skipped** (a
/// zero-skip here once converted `0 × NaN` into `0`, masking NaN poisoning
/// from the paths the NaN-rollback guard watches), so any row partitioning
/// of the output yields bit-identical results — including non-finite ones.
#[allow(clippy::too_many_arguments)]
pub fn direct_rows(
    a: &[f32],
    b: &[f32],
    trans_a: bool,
    trans_b: bool,
    am: usize,
    ak: usize,
    bn: usize,
    r0: usize,
    chunk: &mut [f32],
) {
    match (trans_a, trans_b) {
        (false, false) => {
            for (ri, orow) in chunk.chunks_mut(bn).enumerate() {
                let i = r0 + ri;
                let arow = &a[i * ak..(i + 1) * ak];
                for (k, &av) in arow.iter().enumerate() {
                    let brow = &b[k * bn..(k + 1) * bn];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
        (true, false) => {
            // a is [k, m] stored row-major: column i of a feeds output row i.
            for (ri, orow) in chunk.chunks_mut(bn).enumerate() {
                let i = r0 + ri;
                for k in 0..ak {
                    let av = a[k * am + i];
                    let brow = &b[k * bn..(k + 1) * bn];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
        (false, true) => {
            // b is [n, k] stored row-major; dot products of rows.
            for (ri, orow) in chunk.chunks_mut(bn).enumerate() {
                let i = r0 + ri;
                let arow = &a[i * ak..(i + 1) * ak];
                for (j, o) in orow.iter_mut().enumerate() {
                    let brow = &b[j * ak..(j + 1) * ak];
                    let mut acc = 0.0;
                    for (&x, &y) in arow.iter().zip(brow) {
                        acc += x * y;
                    }
                    *o = acc;
                }
            }
        }
        (true, true) => {
            // Rare at small sizes; explicit indexing.
            for (ri, orow) in chunk.chunks_mut(bn).enumerate() {
                let i = r0 + ri;
                for (j, o) in orow.iter_mut().enumerate() {
                    let mut acc = 0.0;
                    for k in 0..ak {
                        acc += a[k * am + i] * b[j * ak + k];
                    }
                    *o = acc;
                }
            }
        }
    }
    let rows = chunk.len() / bn;
    wb_obs::counter!("tensor.matmul.kernel.macs", (rows * ak * bn) as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(seed: u64, n: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                state =
                    state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn pack_b_round_trips_straight_and_transposed() {
        // Odd sizes exercise edge panels in both block dimensions.
        let (k, n) = (KC + 37, NC + 21);
        let b = fill(3, k * n);
        let mut buf = Vec::new();
        pack_b(&b, false, k, n, &mut buf);
        for kk in 0..k {
            for j in 0..n {
                assert_eq!(buf[packed_index(kk, j, k, n)], b[kk * n + j], "({kk},{j})");
            }
        }
        // Transposed source: b_t[j, k] must land at the same logical slot.
        let mut bt = vec![0.0; k * n];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        let mut buf_t = Vec::new();
        pack_b(&bt, true, k, n, &mut buf_t);
        assert_eq!(buf, buf_t, "packing B and Bᵀ must agree element-wise");
    }

    #[test]
    fn pack_a_transposed_matches_naive() {
        let (m, k) = (71, 45);
        let at = fill(9, m * k); // stored [k, m]
        let mut buf = Vec::new();
        pack_a_transposed(&at, m, k, &mut buf);
        for i in 0..m {
            for kk in 0..k {
                assert_eq!(buf[i * k + kk], at[kk * m + i]);
            }
        }
    }

    #[test]
    fn packed_rows_matches_direct_rows() {
        let (m, k, n) = (MC + MR + 1, KC + 5, NC + NR + 3);
        let a = fill(1, m * k);
        let b = fill(2, k * n);
        let mut bp = Vec::new();
        pack_b(&b, false, k, n, &mut bp);
        let mut packed = vec![0.0; m * n];
        packed_rows(&a, &bp, k, n, 0, &mut packed);
        let mut direct = vec![0.0; m * n];
        direct_rows(&a, &b, false, false, m, k, n, 0, &mut direct);
        assert_eq!(packed, direct, "packed and direct kernels diverged");
    }
}
