//! Named parameter store shared by a model and its optimizer.
//!
//! Parameters live *outside* the autograd [`Graph`](crate::graph::Graph):
//! graphs borrow the store immutably, which is what makes per-example
//! data-parallel backward passes possible (each worker builds its own tape
//! against the same frozen parameters, and the resulting
//! [`Gradients`](crate::graph::Gradients) are summed).

use crate::init::Initializer;
use crate::tensor::Tensor;
use rand::rngs::StdRng;

/// Identifier of one parameter tensor inside a [`Params`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// The raw index of this parameter.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A flat, append-only collection of named parameter tensors.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct Params {
    names: Vec<String>,
    tensors: Vec<Tensor>,
}

impl Params {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a tensor under `name` and returns its id.
    ///
    /// # Panics
    /// Panics on duplicate names — every parameter must be addressable for
    /// checkpointing.
    pub fn add(&mut self, name: &str, tensor: Tensor) -> ParamId {
        assert!(!self.names.iter().any(|n| n == name), "duplicate parameter name {name:?}");
        self.names.push(name.to_string());
        self.tensors.push(tensor);
        // Memory accounting: the byte size of the largest parameter store
        // ever assembled in this process (models are built once, so the
        // O(tensors) sum per add stays off any hot path).
        let bytes = (self.num_scalars() * std::mem::size_of::<f32>()) as f64;
        wb_obs::gauge!("tensor.params.bytes", bytes);
        wb_obs::gauge_max!("tensor.params.bytes.peak", bytes);
        ParamId(self.tensors.len() - 1)
    }

    /// Registers a freshly initialised tensor.
    pub fn add_init(
        &mut self,
        name: &str,
        shape: &[usize],
        init: Initializer,
        rng: &mut StdRng,
    ) -> ParamId {
        let t = init.build(shape, rng);
        self.add(name, t)
    }

    /// Borrows a parameter tensor.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutably borrows a parameter tensor (used by optimizers).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.tensors[id.0]
    }

    /// The registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Looks a parameter up by name.
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.names.iter().position(|n| n == name).map(ParamId)
    }

    /// Number of parameter tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(|t| t.len()).sum()
    }

    /// Iterates over `(id, name, tensor)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &str, &Tensor)> {
        self.names
            .iter()
            .zip(&self.tensors)
            .enumerate()
            .map(|(i, (n, t))| (ParamId(i), n.as_str(), t))
    }

    /// Copies values from another store with identical structure.
    ///
    /// # Panics
    /// Panics when names or shapes disagree — checkpoints must match the
    /// architecture exactly.
    pub fn copy_from(&mut self, other: &Params) {
        assert_eq!(self.names, other.names, "parameter structure mismatch");
        for (dst, src) in self.tensors.iter_mut().zip(&other.tensors) {
            assert_eq!(dst.shape(), src.shape(), "parameter shape mismatch");
            *dst = src.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn add_get_find() {
        let mut p = Params::new();
        let id = p.add("w", Tensor::zeros(&[2, 2]));
        assert_eq!(p.get(id).shape(), &[2, 2]);
        assert_eq!(p.find("w"), Some(id));
        assert_eq!(p.find("missing"), None);
        assert_eq!(p.name(id), "w");
        assert_eq!(p.num_scalars(), 4);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_name_panics() {
        let mut p = Params::new();
        p.add("w", Tensor::zeros(&[1]));
        p.add("w", Tensor::zeros(&[1]));
    }

    #[test]
    fn add_init_uses_rng_deterministically() {
        let mut r1 = StdRng::seed_from_u64(7);
        let mut r2 = StdRng::seed_from_u64(7);
        let mut p1 = Params::new();
        let mut p2 = Params::new();
        let a = p1.add_init("w", &[3, 3], Initializer::XavierUniform, &mut r1);
        let b = p2.add_init("w", &[3, 3], Initializer::XavierUniform, &mut r2);
        assert_eq!(p1.get(a).data(), p2.get(b).data());
    }

    #[test]
    fn copy_from_transfers_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut a = Params::new();
        let mut b = Params::new();
        a.add("w", Tensor::zeros(&[2]));
        b.add_init("w", &[2], Initializer::Uniform(0.5), &mut rng);
        a.copy_from(&b);
        assert_eq!(a.get(ParamId(0)).data(), b.get(ParamId(0)).data());
    }
}
