//! Dense row-major `f32` tensors.
//!
//! The tensor type is deliberately small: the models in this workspace only
//! need rank-1/2 tensors plus a handful of rank-preserving element-wise
//! operations, batched matrix multiplication and row gather/scatter.
//! In-place variants are provided where the training loop is hot
//! (`add_assign_scaled`, `scale_in_place`, `matmul_into`), and
//! allocating operations draw their buffers from the [`scratch`] pool so
//! steady-state training reuses memory instead of hitting the allocator.
//!
//! # Parallelism
//!
//! `matmul`, `softmax_rows`, `add_row_broadcast` and the `map`/`zip_map`
//! family run on the rayon pool once the operand crosses a size threshold
//! (see [`PAR_MIN_ROWS`], [`PAR_MIN_MACS`], [`PAR_MIN_ELEMS`]); smaller
//! tensors stay on the calling thread. Work is split by output row (or by
//! contiguous element chunk for rank-free element-wise ops), and every
//! output element is accumulated in the same order as the serial code, so
//! results are bit-for-bit identical for any `RAYON_NUM_THREADS`.

use rayon::prelude::*;
use std::fmt;

/// Minimum output rows before a matmul fans out over the rayon pool.
pub const PAR_MIN_ROWS: usize = 64;
/// Minimum multiply-accumulates (`m·k·n`) before a matmul goes parallel;
/// below this the thread hand-off costs more than the arithmetic.
pub const PAR_MIN_MACS: usize = 1 << 18;
/// Minimum elements before element-wise / row-wise ops go parallel.
pub const PAR_MIN_ELEMS: usize = 1 << 16;

/// A pool of reusable `f32` buffers shared by all tensor operations.
///
/// Allocating tensor ops call [`scratch::take`] instead of `Vec::new`, and
/// the autograd `Graph` returns every node buffer with [`scratch::put`]
/// when a tape is dropped — so after the first training step the forward
/// and backward passes recycle buffers instead of re-allocating. The pool
/// is global (not thread-local) because worker threads are short-lived;
/// both calls are a quick `Mutex`-guarded push/pop.
pub mod scratch {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    /// Upper bound on pooled buffers; excess buffers just deallocate.
    const MAX_POOLED: usize = 256;
    /// Buffers above this capacity (elements) are not retained.
    const MAX_BUF_CAP: usize = 1 << 22;

    static POOL: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());
    /// Bytes of capacity currently resident in the pool (mirrors the
    /// `tensor.scratch.bytes_pooled` gauge; kept as its own atomic so
    /// [`take`] can subtract without re-walking the pool).
    static POOL_BYTES: AtomicU64 = AtomicU64::new(0);

    /// Takes an empty buffer from the pool (or a fresh one). Pool
    /// effectiveness is observable as the `tensor.scratch.hit` /
    /// `tensor.scratch.miss` counters.
    pub fn take() -> Vec<f32> {
        match POOL.lock().unwrap().pop() {
            Some(buf) => {
                wb_obs::counter!("tensor.scratch.hit");
                let bytes = (buf.capacity() * std::mem::size_of::<f32>()) as u64;
                let left = POOL_BYTES.fetch_sub(bytes, Ordering::Relaxed) - bytes;
                wb_obs::gauge!("tensor.scratch.bytes_pooled", left as f64);
                buf
            }
            None => {
                wb_obs::counter!("tensor.scratch.miss");
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the pool for reuse. Recycled capacity feeds the
    /// `tensor.scratch.bytes_recycled` counter, the current pool depth the
    /// `tensor.scratch.pooled` gauge, and resident capacity the
    /// `tensor.scratch.bytes_pooled` gauge plus its `.peak` high-watermark.
    pub fn put(mut buf: Vec<f32>) {
        if buf.capacity() == 0 || buf.capacity() > MAX_BUF_CAP {
            return;
        }
        let bytes = (buf.capacity() * std::mem::size_of::<f32>()) as u64;
        wb_obs::counter!("tensor.scratch.bytes_recycled", bytes);
        buf.clear();
        let mut pool = POOL.lock().unwrap();
        if pool.len() < MAX_POOLED {
            pool.push(buf);
            let resident = POOL_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
            wb_obs::gauge!("tensor.scratch.bytes_pooled", resident as f64);
            wb_obs::gauge_max!("tensor.scratch.bytes_pooled.peak", resident as f64);
            wb_obs::trace::sample("tensor.scratch.bytes_pooled", resident as f64);
        }
        wb_obs::gauge!("tensor.scratch.pooled", pool.len() as f64);
    }

    /// Number of buffers currently pooled (diagnostics/tests).
    pub fn pooled() -> usize {
        POOL.lock().unwrap().len()
    }

    /// Copies `src` into a pooled buffer.
    pub(crate) fn copy_of(src: &[f32]) -> Vec<f32> {
        let mut buf = take();
        buf.extend_from_slice(src);
        buf
    }

    /// A pooled buffer of `n` zeros.
    pub(crate) fn zeroed(n: usize) -> Vec<f32> {
        let mut buf = take();
        buf.resize(n, 0.0);
        buf
    }
}

/// Splits `total` work items into chunks sized for the current pool width.
fn par_chunk(total: usize) -> usize {
    let target = rayon::current_num_threads() * 4;
    (total + target - 1) / target.max(1)
}

/// A dense, row-major tensor of `f32` values.
///
/// Invariant: `data.len() == shape.iter().product()`. A scalar is represented
/// by an empty shape and a single element.
#[derive(Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(f, " [{} values]", self.data.len())
        }
    }
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Panics
    /// Panics if the number of elements implied by `shape` differs from
    /// `data.len()`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {:?} does not match {} elements",
            shape,
            data.len()
        );
        Tensor { shape: shape.to_vec(), data }
    }

    /// A scalar tensor (empty shape).
    pub fn scalar(v: f32) -> Self {
        Tensor { shape: vec![], data: vec![v] }
    }

    /// A tensor of zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// A tensor filled with `v`.
    pub fn full(shape: &[usize], v: f32) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![v; shape.iter().product()] }
    }

    /// The shape slice.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows of a rank-2 tensor (or 1 for rank-0/1).
    pub fn rows(&self) -> usize {
        match self.shape.len() {
            0 | 1 => 1,
            _ => self.shape[0],
        }
    }

    /// Number of columns, i.e. the size of the final axis (1 for scalars).
    pub fn cols(&self) -> usize {
        self.shape.last().copied().unwrap_or(1)
    }

    /// Borrow the backing data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the backing data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the backing vector.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a scalar (or 1-element) tensor.
    ///
    /// # Panics
    /// Panics when the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.data.len(), 1, "item() on tensor of shape {:?}", self.shape);
        self.data[0]
    }

    /// Reinterprets the data with a new shape of equal element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(shape, self.data.clone())
    }

    /// Borrow row `r` of a rank-2 tensor.
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.cols();
        &self.data[r * c..(r + 1) * c]
    }

    /// Element-wise binary map; shapes must match exactly. Large tensors
    /// are processed in parallel chunks; `f` is applied per element either
    /// way, so the result does not depend on the thread count.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        let mut data = scratch::copy_of(&self.data);
        if data.len() >= PAR_MIN_ELEMS && rayon::current_num_threads() > 1 {
            let chunk = par_chunk(data.len());
            data.par_chunks_mut(chunk).enumerate().for_each(|(ci, c)| {
                let other = &other.data[ci * chunk..ci * chunk + c.len()];
                for (v, &b) in c.iter_mut().zip(other) {
                    *v = f(*v, b);
                }
            });
        } else {
            for (v, &b) in data.iter_mut().zip(&other.data) {
                *v = f(*v, b);
            }
        }
        Tensor { shape: self.shape.clone(), data }
    }

    /// Element-wise unary map; parallel for large tensors (see
    /// [`Tensor::zip_map`]).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut data = scratch::copy_of(&self.data);
        if data.len() >= PAR_MIN_ELEMS && rayon::current_num_threads() > 1 {
            let chunk = par_chunk(data.len());
            data.par_chunks_mut(chunk).for_each(|c| {
                for v in c.iter_mut() {
                    *v = f(*v);
                }
            });
        } else {
            for v in data.iter_mut() {
                *v = f(*v);
            }
        }
        Tensor { shape: self.shape.clone(), data }
    }

    /// `self + other` element-wise.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// `self - other` element-wise.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// `self * other` element-wise (Hadamard product).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// `self * k`.
    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|a| a * k)
    }

    /// `self += other * k`, in place. Shapes must match.
    pub fn add_assign_scaled(&mut self, other: &Tensor, k: f32) {
        assert_eq!(self.shape, other.shape, "add_assign_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * k;
        }
    }

    /// `self *= k`, in place.
    pub fn scale_in_place(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    /// Adds a rank-1 bias of length `cols` to every row, returning a new
    /// tensor. Rows are processed in parallel for large tensors.
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        let c = self.cols();
        assert_eq!(bias.len(), c, "bias length must equal column count");
        let mut data = scratch::copy_of(&self.data);
        if self.rows() >= PAR_MIN_ROWS
            && data.len() >= PAR_MIN_ELEMS
            && rayon::current_num_threads() > 1
        {
            let rows_per = par_chunk(self.rows());
            data.par_chunks_mut(rows_per * c).for_each(|block| {
                for row in block.chunks_mut(c) {
                    for (x, &b) in row.iter_mut().zip(&bias.data) {
                        *x += b;
                    }
                }
            });
        } else {
            for row in data.chunks_mut(c) {
                for (x, &b) in row.iter_mut().zip(&bias.data) {
                    *x += b;
                }
            }
        }
        Tensor { shape: self.shape.clone(), data }
    }

    /// Matrix product of rank-2 tensors, with optional transposition of
    /// either operand. `matmul(a, b, false, false)` computes `a @ b`.
    ///
    /// Products above [`crate::kernels::PACK_MIN_MACS`] multiply-accumulates
    /// take the packed, cache-blocked path (see [`crate::kernels`]): the
    /// transposed operand is repacked into row-major panels once per call,
    /// so all four transpose variants hit the same SIMD-friendly inner
    /// loop. Large products (≥ [`PAR_MIN_ROWS`] output rows and ≥
    /// [`PAR_MIN_MACS`] multiply-accumulates) are additionally split by
    /// output row across the rayon pool. Each output element accumulates
    /// in ascending-`k` order on a single chain on every path and no term
    /// is ever skipped, so the result is bit-for-bit identical for any
    /// thread count and variant on every non-NaN output, and NaN/Inf
    /// inputs poison exactly the same outputs everywhere (only the payload
    /// of a NaN-vs-NaN sum is codegen-chosen — see [`crate::kernels`]).
    pub fn matmul(&self, other: &Tensor, trans_a: bool, trans_b: bool) -> Tensor {
        let (am, ak, bn) = matmul_check(self, other, trans_a, trans_b);
        let mut out = scratch::zeroed(am * bn);
        matmul_dispatch(&self.data, &other.data, trans_a, trans_b, am, ak, bn, &mut out, true);
        Tensor { shape: vec![am, bn], data: out }
    }

    /// Matrix product into an existing tensor, reusing its allocation.
    ///
    /// Shape checks and results are identical to [`Tensor::matmul`]; only
    /// the output buffer is recycled. Hot loops that produce a matmul
    /// result every step (e.g. the trainer's tapes) use this to avoid
    /// per-step allocation.
    pub fn matmul_into(&self, other: &Tensor, trans_a: bool, trans_b: bool, out: &mut Tensor) {
        let (am, ak, bn) = matmul_check(self, other, trans_a, trans_b);
        out.data.clear();
        out.data.resize(am * bn, 0.0);
        out.shape.clear();
        out.shape.extend_from_slice(&[am, bn]);
        matmul_dispatch(
            &self.data,
            &other.data,
            trans_a,
            trans_b,
            am,
            ak,
            bn,
            &mut out.data,
            true,
        );
    }

    /// Serial reference matmul: same results as [`Tensor::matmul`]
    /// (bit-for-bit up to NaN payloads — see [`crate::kernels`]'s
    /// bit-exactness contract), but never uses the thread pool or the packed
    /// kernels — it always runs the direct per-variant loops. Kept public
    /// so tests and benchmarks can compare the packed/parallel paths
    /// against an independent implementation.
    pub fn matmul_serial(&self, other: &Tensor, trans_a: bool, trans_b: bool) -> Tensor {
        let (am, ak, bn) = matmul_check(self, other, trans_a, trans_b);
        let mut out = scratch::zeroed(am * bn);
        matmul_dispatch(&self.data, &other.data, trans_a, trans_b, am, ak, bn, &mut out, false);
        Tensor { shape: vec![am, bn], data: out }
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2, "transpose requires rank 2");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec(&[c, r], out)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Index of the maximum element (first on ties).
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Row-wise argmax of a rank-2 tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let c = self.cols();
        self.data
            .chunks(c)
            .map(|row| {
                let mut best = 0;
                let mut best_v = f32::NEG_INFINITY;
                for (i, &v) in row.iter().enumerate() {
                    if v > best_v {
                        best_v = v;
                        best = i;
                    }
                }
                best
            })
            .collect()
    }

    /// Row-wise softmax with a temperature; numerically stabilised. Rows
    /// are independent, so large tensors fan out over the rayon pool with
    /// identical per-row arithmetic (thread count never changes results).
    pub fn softmax_rows(&self, temperature: f32) -> Tensor {
        let c = self.cols();
        let mut data = scratch::copy_of(&self.data);
        if self.rows() >= PAR_MIN_ROWS
            && data.len() >= PAR_MIN_ELEMS
            && rayon::current_num_threads() > 1
        {
            let rows_per = par_chunk(self.rows());
            data.par_chunks_mut(rows_per * c).for_each(|block| {
                for row in block.chunks_mut(c) {
                    softmax_slice(row, temperature);
                }
            });
        } else {
            for row in data.chunks_mut(c) {
                softmax_slice(row, temperature);
            }
        }
        Tensor { shape: self.shape.clone(), data }
    }

    /// The Frobenius (L2) norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Concatenates rank-2 tensors along rows (axis 0). All tensors must
    /// share the same column count.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows of zero tensors");
        let c = parts[0].cols();
        let mut data = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        let mut rows = 0;
        for p in parts {
            assert_eq!(p.cols(), c, "concat_rows column mismatch");
            rows += p.rows();
            data.extend_from_slice(&p.data);
        }
        Tensor::from_vec(&[rows, c], data)
    }

    /// Concatenates rank-2 tensors along columns (axis 1). All tensors must
    /// share the same row count.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols of zero tensors");
        let r = parts[0].rows();
        let total_c: usize = parts.iter().map(|p| p.cols()).sum();
        let mut data = vec![0.0; r * total_c];
        let mut offset = 0;
        for p in parts {
            assert_eq!(p.rows(), r, "concat_cols row mismatch");
            let c = p.cols();
            for i in 0..r {
                data[i * total_c + offset..i * total_c + offset + c].copy_from_slice(p.row(i));
            }
            offset += c;
        }
        Tensor::from_vec(&[r, total_c], data)
    }

    /// Gathers rows by index from a rank-2 table: `out[i] = table[idx[i]]`.
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        let c = self.cols();
        let mut data = Vec::with_capacity(idx.len() * c);
        for &i in idx {
            assert!(i < self.rows(), "gather index {} out of {} rows", i, self.rows());
            data.extend_from_slice(self.row(i));
        }
        Tensor::from_vec(&[idx.len(), c], data)
    }

    /// Extracts rows `[start, end)` of a rank-2 tensor as a new tensor.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor {
        assert!(start <= end && end <= self.rows(), "slice_rows out of bounds");
        let c = self.cols();
        Tensor::from_vec(&[end - start, c], self.data[start * c..end * c].to_vec())
    }
}

/// In-place numerically stable softmax of a slice with temperature.
///
/// A fully masked row (every entry `-inf`) carries no information about a
/// preference; `(v - max)` would be `NaN` there, so such rows fall back to
/// the uniform distribution instead of propagating NaNs.
pub fn softmax_slice(row: &mut [f32], temperature: f32) {
    debug_assert!(temperature > 0.0);
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        if !row.is_empty() {
            let uniform = 1.0 / row.len() as f32;
            for v in row.iter_mut() {
                *v = uniform;
            }
        }
        return;
    }
    let mut sum = 0.0;
    for v in row.iter_mut() {
        *v = ((*v - max) / temperature).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

fn mat_dims(t: &Tensor, trans: bool) -> (usize, usize) {
    assert_eq!(t.shape().len(), 2, "matmul requires rank-2, got {:?}", t.shape());
    if trans {
        (t.shape()[1], t.shape()[0])
    } else {
        (t.shape()[0], t.shape()[1])
    }
}

/// Validates operand ranks/shapes and returns `(m, k, n)`.
fn matmul_check(a: &Tensor, b: &Tensor, trans_a: bool, trans_b: bool) -> (usize, usize, usize) {
    let (am, ak) = mat_dims(a, trans_a);
    let (bk, bn) = mat_dims(b, trans_b);
    assert_eq!(
        ak,
        bk,
        "matmul inner-dimension mismatch: {:?}{} @ {:?}{}",
        a.shape,
        if trans_a { "ᵀ" } else { "" },
        b.shape,
        if trans_b { "ᵀ" } else { "" }
    );
    (am, ak, bn)
}

/// Runs a matmul either serially or split by output row over the pool,
/// routing large products through the packed/tiled [`crate::kernels`] and
/// small ones through the direct per-variant loops. Both paths accumulate
/// every output element in ascending-`k` order on a single chain and
/// never skip a term, so results are bit-identical across paths, thread
/// counts, and transpose variants — non-finite inputs poison the same
/// outputs everywhere, with only NaN payloads left codegen-chosen (see
/// [`crate::kernels`]).
#[allow(clippy::too_many_arguments)]
fn matmul_dispatch(
    a: &[f32],
    b: &[f32],
    trans_a: bool,
    trans_b: bool,
    am: usize,
    ak: usize,
    bn: usize,
    out: &mut [f32],
    allow_parallel: bool,
) {
    if am == 0 || bn == 0 {
        return;
    }
    // Per-variant call and FLOP counters (see docs/OBSERVABILITY.md).
    // These are single relaxed atomic adds, amortised over `m·k·n`
    // multiply-accumulates of real work.
    match (trans_a, trans_b) {
        (false, false) => wb_obs::counter!("tensor.matmul.calls.nn"),
        (true, false) => wb_obs::counter!("tensor.matmul.calls.tn"),
        (false, true) => wb_obs::counter!("tensor.matmul.calls.nt"),
        (true, true) => wb_obs::counter!("tensor.matmul.calls.tt"),
    }
    wb_obs::counter!("tensor.matmul.flops", (2 * am * ak * bn) as u64);
    let macs = am * ak * bn;
    let parallel = allow_parallel
        && am >= PAR_MIN_ROWS
        && macs >= PAR_MIN_MACS
        && rayon::current_num_threads() > 1;
    if parallel {
        wb_obs::counter!("tensor.matmul.dispatch.parallel");
    } else {
        wb_obs::counter!("tensor.matmul.dispatch.serial");
    }
    // `matmul_serial` (allow_parallel = false) stays on the direct loops:
    // it is the independent reference the packed path is tested against.
    if allow_parallel && ak > 0 && macs >= crate::kernels::PACK_MIN_MACS {
        crate::kernels::matmul_packed(
            a,
            b,
            trans_a,
            trans_b,
            am,
            ak,
            bn,
            out,
            parallel,
            par_chunk(am),
        );
    } else {
        wb_obs::counter!("tensor.matmul.kernel.direct");
        if parallel {
            let rows_per = par_chunk(am);
            out.par_chunks_mut(rows_per * bn).enumerate().for_each(|(ci, chunk)| {
                crate::kernels::direct_rows(
                    a,
                    b,
                    trans_a,
                    trans_b,
                    am,
                    ak,
                    bn,
                    ci * rows_per,
                    chunk,
                );
            });
        } else {
            crate::kernels::direct_rows(a, b, trans_a, trans_b, am, ak, bn, 0, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.row(1), &[4., 5., 6.]);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn from_vec_bad_shape_panics() {
        let _ = Tensor::from_vec(&[2, 2], vec![1., 2., 3.]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(4.5).item(), 4.5);
    }

    #[test]
    fn matmul_plain() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b, false, false);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transpose_variants_agree() {
        let a = Tensor::from_vec(&[2, 3], vec![1., -2., 3., 0.5, 5., -6.]);
        let b = Tensor::from_vec(&[3, 4], (0..12).map(|i| i as f32 * 0.25).collect());
        let base = a.matmul(&b, false, false);
        let ta = a.transpose();
        let tb = b.transpose();
        assert_eq!(ta.matmul(&b, true, false).data(), base.data());
        assert_eq!(a.matmul(&tb, false, true).data(), base.data());
        assert_eq!(ta.matmul(&tb, true, true).data(), base.data());
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., -1., 0., 100.]);
        let s = t.softmax_rows(1.0);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Large logit dominates without overflow.
        assert!(s.row(1)[2] > 0.999);
    }

    #[test]
    fn softmax_temperature_flattens() {
        let t = Tensor::from_vec(&[1, 2], vec![0., 2.]);
        let sharp = t.softmax_rows(0.5);
        let soft = t.softmax_rows(4.0);
        assert!(sharp.row(0)[1] > soft.row(0)[1]);
    }

    #[test]
    fn concat_rows_and_cols() {
        let a = Tensor::from_vec(&[1, 2], vec![1., 2.]);
        let b = Tensor::from_vec(&[2, 2], vec![3., 4., 5., 6.]);
        let r = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), &[1., 2., 3., 4., 5., 6.]);

        let c = Tensor::from_vec(&[2, 1], vec![9., 10.]);
        let cc = Tensor::concat_cols(&[&b, &c]);
        assert_eq!(cc.shape(), &[2, 3]);
        assert_eq!(cc.data(), &[3., 4., 9., 5., 6., 10.]);
    }

    #[test]
    fn gather_and_slice() {
        let t = Tensor::from_vec(&[3, 2], vec![0., 1., 10., 11., 20., 21.]);
        let g = t.gather_rows(&[2, 0, 2]);
        assert_eq!(g.data(), &[20., 21., 0., 1., 20., 21.]);
        let s = t.slice_rows(1, 3);
        assert_eq!(s.data(), &[10., 11., 20., 21.]);
    }

    #[test]
    fn argmax_rows_picks_first_on_tie() {
        let t = Tensor::from_vec(&[2, 3], vec![5., 5., 1., 0., 2., 2.]);
        assert_eq!(t.argmax_rows(), vec![0, 1]);
    }

    #[test]
    fn broadcast_bias() {
        let t = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(&[2], vec![10., 20.]);
        assert_eq!(t.add_row_broadcast(&b).data(), &[11., 22., 13., 24.]);
    }

    #[test]
    fn norm_matches_manual() {
        let t = Tensor::from_vec(&[2], vec![3., 4.]);
        assert!((t.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_all_masked_row_is_uniform() {
        // Regression: an all -inf row used to produce NaNs; it must fall
        // back to the uniform distribution.
        let mut row = vec![f32::NEG_INFINITY; 4];
        softmax_slice(&mut row, 1.0);
        assert_eq!(row, vec![0.25; 4]);

        // The tensor-level op inherits the fallback.
        let t = Tensor::from_vec(&[1, 4], vec![f32::NEG_INFINITY; 4]);
        assert_eq!(t.softmax_rows(1.0).data(), &[0.25; 4]);
    }

    #[test]
    fn softmax_partially_masked_row_keeps_zero_mass_on_masked() {
        let mut row = vec![f32::NEG_INFINITY, 0.0, 0.0];
        softmax_slice(&mut row, 1.0);
        assert_eq!(row[0], 0.0);
        assert!((row[1] - 0.5).abs() < 1e-6);
        assert!((row[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_empty_row_is_noop() {
        let mut row: Vec<f32> = vec![];
        softmax_slice(&mut row, 1.0);
        assert!(row.is_empty());
    }

    #[test]
    fn matmul_into_reuses_buffer_and_matches_matmul() {
        let a = Tensor::from_vec(&[2, 3], vec![1., -2., 3., 0.5, 5., -6.]);
        let b = Tensor::from_vec(&[3, 4], (0..12).map(|i| i as f32 * 0.25).collect());
        let expected = a.matmul(&b, false, false);
        // Start from a differently shaped tensor with stale contents.
        let mut out = Tensor::from_vec(&[1, 2], vec![9.0, 9.0]);
        a.matmul_into(&b, false, false, &mut out);
        assert_eq!(out, expected);
        // Repeat in place: same buffer, same result.
        let ptr = out.data().as_ptr();
        a.matmul_into(&b, false, false, &mut out);
        assert_eq!(out, expected);
        assert_eq!(out.data().as_ptr(), ptr, "buffer was re-allocated");
    }

    #[test]
    fn parallel_matmul_is_bit_identical_to_serial() {
        // Big enough to cross both parallel thresholds (PAR_MIN_ROWS and
        // PAR_MIN_MACS) for every transpose combination.
        let n = 160;
        let a = Tensor::from_vec(
            &[n, n],
            (0..n * n).map(|i| ((i * 2654435761usize) % 1000) as f32 / 997.0 - 0.5).collect(),
        );
        let b = Tensor::from_vec(
            &[n, n],
            (0..n * n).map(|i| ((i * 40503usize) % 1000) as f32 / 991.0 - 0.5).collect(),
        );
        for &(ta, tb) in &[(false, false), (true, false), (false, true), (true, true)] {
            let par = a.matmul(&b, ta, tb);
            let ser = a.matmul_serial(&b, ta, tb);
            assert_eq!(par.data(), ser.data(), "variant ({ta}, {tb}) diverged");
        }
    }

    #[test]
    fn zero_times_nan_is_nan_not_zero() {
        // Regression for the zero-skip bug: `nn`/`tn` once skipped
        // `av == 0.0` terms, converting `0 × NaN` and `0 × ∞` into `0` and
        // silently masking NaN poisoning from the NaN-rollback guard.
        let a = Tensor::from_vec(&[2, 3], vec![0., 0., 0., 1., 2., 3.]);
        let mut bdata = vec![1.0f32; 6];
        bdata[1] = f32::NAN; // b[0, 1]
        bdata[4] = f32::INFINITY; // b[2, 0]
        let b = Tensor::from_vec(&[3, 2], bdata);
        let c = a.matmul(&b, false, false);
        // Row 0 is all zeros, but 0×NaN = NaN and 0×∞ = NaN must leak out.
        assert!(c.data()[0].is_nan(), "0 × ∞ must be NaN, got {}", c.data()[0]);
        assert!(c.data()[1].is_nan(), "0 × NaN must be NaN, got {}", c.data()[1]);
        // The same product through every variant agrees bit-for-bit (NaN
        // payloads canonicalized — see the kernels bit-exactness contract).
        let base_bits: Vec<u32> = c.data().iter().map(canon_bits).collect();
        let ta = a.transpose();
        let tb = b.transpose();
        for (t, ser) in [
            (ta.matmul(&b, true, false), ta.matmul_serial(&b, true, false)),
            (a.matmul(&tb, false, true), a.matmul_serial(&tb, false, true)),
            (ta.matmul(&tb, true, true), ta.matmul_serial(&tb, true, true)),
        ] {
            let bits: Vec<u32> = t.data().iter().map(canon_bits).collect();
            assert_eq!(bits, base_bits, "variant disagreed on non-finite inputs");
            let ser_bits: Vec<u32> = ser.data().iter().map(canon_bits).collect();
            assert_eq!(bits, ser_bits, "variant disagreed with matmul_serial");
        }
    }

    /// Bit pattern with NaN payloads canonicalized: NaN-ness, ±Inf, -0.0
    /// and all finite values compare exactly; which payload survives a
    /// NaN + NaN sum is codegen-chosen and deliberately not compared.
    fn canon_bits(v: &f32) -> u32 {
        if v.is_nan() {
            f32::NAN.to_bits()
        } else {
            v.to_bits()
        }
    }

    #[test]
    fn packed_path_bit_matches_serial_reference() {
        // Big enough to cross PACK_MIN_MACS (and the parallel thresholds)
        // so `matmul` takes the packed kernels while `matmul_serial` stays
        // on the direct loops — a genuine cross-implementation check, with
        // non-finite values and zero rows/columns laced in.
        let n = crate::kernels::KC + 40;
        let mut adata: Vec<f32> =
            (0..n * n).map(|i| ((i * 2654435761usize) % 1000) as f32 / 997.0 - 0.5).collect();
        let mut bdata: Vec<f32> =
            (0..n * n).map(|i| ((i * 40503usize) % 1000) as f32 / 991.0 - 0.5).collect();
        for j in 0..n {
            adata[3 * n + j] = 0.0; // zero row in a
            bdata[j * n + 5] = 0.0; // zero column in b
        }
        adata[7 * n + 11] = f32::NAN;
        adata[8 * n + 2] = f32::NEG_INFINITY;
        bdata[4 * n + 9] = f32::INFINITY;
        bdata[6 * n + 6] = -0.0;
        let a = Tensor::from_vec(&[n, n], adata);
        let b = Tensor::from_vec(&[n, n], bdata);
        for &(ta, tb) in &[(false, false), (true, false), (false, true), (true, true)] {
            let packed = a.matmul(&b, ta, tb);
            let ser = a.matmul_serial(&b, ta, tb);
            let pb: Vec<u32> = packed.data().iter().map(canon_bits).collect();
            let sb: Vec<u32> = ser.data().iter().map(canon_bits).collect();
            assert_eq!(pb, sb, "packed variant ({ta}, {tb}) diverged from serial");
        }
    }

    #[test]
    fn scratch_pool_recycles_buffers() {
        let buf = vec![1.0f32; 64];
        scratch::put(buf);
        let got = scratch::take();
        assert!(got.is_empty(), "pooled buffers come back cleared");
    }
}
